"""Tests for the BBSE / BBSEh black-box shift detection baselines."""

import numpy as np
import pytest

from repro.baselines.bbse import BBSE, BBSEh
from repro.core.blackbox import BlackBoxModel
from repro.errors.tabular_errors import Scaling
from repro.exceptions import DataValidationError, NotFittedError


class TestBBSE:
    def test_no_shift_on_clean_serving_data(self, income_blackbox, income_splits):
        detector = BBSE(income_blackbox).fit(income_splits.test)
        assert detector.shift_detected(income_splits.serving) is False
        assert detector.validate(income_splits.serving) is True

    def test_detects_output_shift_under_scaling(self, income_blackbox, income_splits, rng):
        detector = BBSE(income_blackbox).fit(income_splits.test)
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        assert detector.shift_detected(corrupted) is True

    def test_from_proba_entry_point(self, income_blackbox, income_splits):
        detector = BBSE(income_blackbox).fit(income_splits.test)
        proba = income_blackbox.predict_proba(income_splits.serving)
        assert detector.shift_detected_from_proba(proba) is False

    def test_class_mismatch_raises(self, income_blackbox, income_splits):
        detector = BBSE(income_blackbox).fit(income_splits.test)
        with pytest.raises(DataValidationError):
            detector.shift_detected_from_proba(np.random.random((10, 3)))

    def test_unfitted_raises(self, income_blackbox, income_splits):
        with pytest.raises(NotFittedError):
            BBSE(income_blackbox).shift_detected(income_splits.serving)

    def test_invalid_alpha_raises(self, income_blackbox):
        with pytest.raises(DataValidationError):
            BBSE(income_blackbox, alpha=1.5)


class TestBBSEh:
    def test_no_shift_on_clean_serving_data(self, income_blackbox, income_splits):
        detector = BBSEh(income_blackbox).fit(income_splits.test)
        assert detector.shift_detected(income_splits.serving) is False

    def test_detects_class_balance_shift(self, income_blackbox, income_splits):
        detector = BBSEh(income_blackbox).fit(income_splits.test)
        # Synthetic outputs assigning nearly everything to class 0.
        n = 800
        proba = np.column_stack([np.full(n, 0.9), np.full(n, 0.1)])
        assert detector.shift_detected_from_proba(proba) is True

    def test_blind_to_balance_preserving_confidence_shift(
        self, income_blackbox, income_splits
    ):
        # BBSEh only sees hard class counts: making every prediction more
        # confident without moving the argmax is invisible to it (but not
        # to BBSE) — the structural weakness the paper exploits.
        detector_h = BBSEh(income_blackbox).fit(income_splits.test)
        proba = income_blackbox.predict_proba(income_splits.serving)
        sharpened = np.where(proba > 0.5, 0.99, 0.01)
        sharpened = sharpened / sharpened.sum(axis=1, keepdims=True)
        assert detector_h.shift_detected_from_proba(sharpened) is False
        detector_s = BBSE(income_blackbox).fit(income_splits.test)
        assert detector_s.shift_detected_from_proba(sharpened) is True

    def test_unfitted_raises(self, income_blackbox, income_splits):
        with pytest.raises(NotFittedError):
            BBSEh(income_blackbox).shift_detected(income_splits.serving)

    def test_class_count_mismatch_raises(self, income_blackbox, income_splits):
        detector = BBSEh(income_blackbox).fit(income_splits.test)
        with pytest.raises(DataValidationError):
            detector.shift_detected_from_proba(np.random.random((10, 4)))

    def test_class_counts_helper(self):
        proba = np.array([[0.9, 0.1], [0.4, 0.6], [0.2, 0.8]])
        assert list(BBSEh._class_counts(proba)) == [1.0, 2.0]


class TestEmptyServingInput:
    # Regression: an empty serving batch used to crash BBSEh deep inside
    # np.argmax; every baseline must reject it with a clean error instead.
    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_empty_proba_is_rejected(self, detector_cls, income_blackbox, income_splits):
        detector = detector_cls(income_blackbox).fit(income_splits.test)
        with pytest.raises(DataValidationError, match="empty"):
            detector.shift_detected_from_proba(np.empty((0, 2)))

    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_empty_serving_frame_is_rejected(
        self, detector_cls, income_blackbox, income_splits
    ):
        detector = detector_cls(income_blackbox).fit(income_splits.test)
        with pytest.raises(DataValidationError):
            detector.shift_detected(income_splits.serving.head(0))

    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_non_2d_proba_is_rejected(self, detector_cls, income_blackbox, income_splits):
        detector = detector_cls(income_blackbox).fit(income_splits.test)
        with pytest.raises(DataValidationError, match="2-D"):
            detector.shift_detected_from_proba(np.array([0.4, 0.6]))


class TestFromProba:
    # The degraded-mode serving fallback builds detectors from retained
    # test-time outputs, with no black box handle attached.
    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_matches_fit_on_the_same_outputs(
        self, detector_cls, income_blackbox, income_splits
    ):
        fitted = detector_cls(income_blackbox).fit(income_splits.test)
        retained = detector_cls.from_proba(
            income_blackbox.predict_proba(income_splits.test)
        )
        serving_proba = income_blackbox.predict_proba(income_splits.serving)
        assert retained.shift_detected_from_proba(serving_proba) == (
            fitted.shift_detected_from_proba(serving_proba)
        )

    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_frame_entry_points_need_a_blackbox(self, detector_cls, income_splits):
        detector = detector_cls.from_proba(np.full((50, 2), 0.5))
        with pytest.raises(DataValidationError, match="without a black box"):
            detector.shift_detected(income_splits.serving)
        with pytest.raises(DataValidationError, match="without a black box"):
            detector.fit(income_splits.test)

    @pytest.mark.parametrize("detector_cls", [BBSE, BBSEh])
    def test_rejects_empty_reference(self, detector_cls):
        with pytest.raises(DataValidationError, match="empty"):
            detector_cls.from_proba(np.empty((0, 2)))
