"""Tests for the REL relational shift detection baseline."""

import numpy as np
import pytest

from repro.baselines.rel import RelationalShiftDetector
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import DataValidationError, NotFittedError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_pair(n: int = 400) -> tuple[DataFrame, DataFrame]:
    rng = np.random.default_rng(0)

    def build(seed):
        r = np.random.default_rng(seed)
        return DataFrame.from_dict(
            {
                "x": r.normal(size=n),
                "c": r.choice(["a", "b", "c"], size=n).astype(object),
            },
            {"x": ColumnType.NUMERIC, "c": ColumnType.CATEGORICAL},
        )

    return build(1), build(2)


class TestRelationalShiftDetector:
    def test_no_shift_on_iid_samples(self):
        reference, serving = make_pair()
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(serving) is False
        assert detector.validate(serving) is True

    def test_detects_numeric_location_shift(self):
        reference, serving = make_pair()
        shifted = serving.copy()
        shifted.set_values("x", np.arange(len(shifted)), shifted["x"] + 1.0)
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(shifted) is True

    def test_detects_categorical_frequency_shift(self):
        reference, serving = make_pair()
        skewed = serving.copy()
        rows = np.arange(len(skewed) // 2)
        skewed.set_values("c", rows, ["a"] * len(rows))
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(skewed) is True

    def test_detects_missingness_increase(self, rng):
        reference, serving = make_pair()
        corrupted = MissingValues(columns=["c"]).corrupt(
            serving, rng, columns=["c"], fraction=0.4
        )
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(corrupted) is True

    def test_detects_scaling(self, rng):
        reference, serving = make_pair()
        corrupted = Scaling().corrupt(serving, rng, columns=["x"], fraction=0.8, factor=100.0)
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(corrupted) is True

    def test_blind_to_model_irrelevant_vs_relevant(self):
        # REL fires on any distributional change, even one a model ignores —
        # the paper's core criticism. A shift in a pure-noise column
        # triggers exactly like a shift in a predictive column.
        rng = np.random.default_rng(3)
        n = 400
        reference = DataFrame.from_dict(
            {"noise": rng.normal(size=n)}, {"noise": ColumnType.NUMERIC}
        )
        serving = DataFrame.from_dict(
            {"noise": rng.normal(loc=2.0, size=n)}, {"noise": ColumnType.NUMERIC}
        )
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(serving) is True

    def test_image_only_frame_rejected(self):
        images = DataFrame.from_dict(
            {"image": np.zeros((5, 4, 4))}, {"image": ColumnType.IMAGE}
        )
        with pytest.raises(DataValidationError):
            RelationalShiftDetector().fit(images)

    def test_schema_mismatch_raises(self):
        reference, serving = make_pair()
        detector = RelationalShiftDetector().fit(reference)
        with pytest.raises(DataValidationError):
            detector.shift_detected(serving.drop_columns("c"))

    def test_unfitted_raises(self):
        _, serving = make_pair()
        with pytest.raises(NotFittedError):
            RelationalShiftDetector().shift_detected(serving)

    def test_invalid_alpha_raises(self):
        with pytest.raises(DataValidationError):
            RelationalShiftDetector(alpha=0.0)

    def test_fully_missing_numeric_column_detected(self, rng):
        reference, serving = make_pair()
        blanked = serving.copy()
        blanked.set_values("x", np.arange(len(blanked)), np.full(len(blanked), np.nan))
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(blanked) is True

    def test_empty_serving_frame_is_rejected(self):
        reference, serving = make_pair()
        detector = RelationalShiftDetector().fit(reference)
        with pytest.raises(DataValidationError, match="empty"):
            detector.shift_detected(serving.head(0))

    def test_numeric_missingness_test_always_runs(self):
        # Regression: a numeric column whose *present* values are drawn
        # from the reference distribution but with a large missing rate
        # must still fire — the missingness chi-squared test runs for
        # every numeric column, not only fully-missing ones.
        rng = np.random.default_rng(5)
        n = 600
        reference = DataFrame.from_dict(
            {"x": rng.normal(size=n)}, {"x": ColumnType.NUMERIC}
        )
        values = rng.normal(size=n)
        values[: n // 2] = np.nan  # half missing, survivors unshifted
        serving = DataFrame.from_dict({"x": values}, {"x": ColumnType.NUMERIC})
        detector = RelationalShiftDetector().fit(reference)
        assert detector.shift_detected(serving) is True

    def test_fully_missing_column_yields_missingness_and_sentinel_p_values(self):
        reference, serving = make_pair()
        blanked = serving.copy()
        blanked.set_values("x", np.arange(len(blanked)), np.full(len(blanked), np.nan))
        detector = RelationalShiftDetector().fit(reference)
        p_values = detector._column_p_values(blanked)
        # numeric "x": missingness test + 0.0 sentinel; categorical "c":
        # frequency + missingness tests.
        assert len(p_values) == 4
        assert 0.0 in p_values
