"""Tests for the percentile / moment featurization."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.stats.descriptive import (
    column_percentiles,
    matrix_moments,
    matrix_percentiles,
    percentile_grid,
    summary_moments,
)


class TestPercentileGrid:
    def test_default_grid(self):
        grid = percentile_grid()
        assert grid[0] == 0 and grid[-1] == 100
        assert len(grid) == 21

    def test_coarser_grid(self):
        assert list(percentile_grid(25)) == [0, 25, 50, 75, 100]

    def test_non_divisor_step_still_ends_at_100(self):
        # Regression: 0, 7, ..., 98 used to drop the 100th percentile,
        # so the max of the distribution never entered the features.
        grid = percentile_grid(7)
        assert grid[0] == 0 and grid[-1] == 100
        assert list(grid[:3]) == [0, 7, 14]
        assert len(grid) == 16

    @pytest.mark.parametrize("step", [1, 3, 7, 33, 50, 99, 100])
    def test_every_step_includes_both_endpoints(self, step):
        grid = percentile_grid(step)
        assert grid[0] == 0 and grid[-1] == 100
        assert np.all(np.diff(grid) > 0)

    @pytest.mark.parametrize("bad", [0, 101, -5])
    def test_invalid_step_raises(self, bad):
        with pytest.raises(DataValidationError):
            percentile_grid(bad)


class TestColumnPercentiles:
    def test_min_median_max(self):
        values = np.arange(101, dtype=float)
        result = column_percentiles(values)
        assert result[0] == 0.0
        assert result[10] == 50.0
        assert result[-1] == 100.0

    def test_monotone_nondecreasing(self, rng):
        result = column_percentiles(rng.normal(size=500))
        assert np.all(np.diff(result) >= 0)

    def test_nan_dropped(self):
        values = np.array([1.0, np.nan, 3.0])
        result = column_percentiles(values)
        assert result[0] == 1.0 and result[-1] == 3.0

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            column_percentiles(np.array([np.nan]))


class TestMatrixPercentiles:
    def test_shape_is_classes_times_grid(self, rng):
        proba = rng.random((100, 3))
        result = matrix_percentiles(proba)
        assert result.shape == (3 * 21,)

    def test_blocks_are_per_column(self):
        matrix = np.column_stack([np.zeros(50), np.ones(50)])
        result = matrix_percentiles(matrix)
        assert np.all(result[:21] == 0.0)
        assert np.all(result[21:] == 1.0)

    def test_row_count_invariance(self, rng):
        # Percentile features must be comparable across batch sizes.
        column = rng.random(10_000)
        small = matrix_percentiles(column[:1000].reshape(-1, 1))
        large = matrix_percentiles(column.reshape(-1, 1))
        assert np.allclose(small, large, atol=0.05)

    def test_rejects_1d_and_empty(self):
        with pytest.raises(DataValidationError):
            matrix_percentiles(np.array([1.0, 2.0]).reshape(-1))
        with pytest.raises(DataValidationError):
            matrix_percentiles(np.empty((0, 2)))


class TestMoments:
    def test_summary_moments_values(self):
        values = np.array([1.0, 2.0, 3.0])
        mean, std, lo, hi = summary_moments(values)
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std(values))
        assert (lo, hi) == (1.0, 3.0)

    def test_matrix_moments_shape(self, rng):
        result = matrix_moments(rng.random((30, 4)))
        assert result.shape == (16,)

    def test_matrix_moments_layout(self):
        matrix = np.column_stack([np.full(10, 2.0), np.full(10, 7.0)])
        result = matrix_moments(matrix)
        # Per column: mean, std, min, max.
        assert list(result[:4]) == [2.0, 0.0, 2.0, 2.0]
        assert list(result[4:]) == [7.0, 0.0, 7.0, 7.0]

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            summary_moments(np.array([]))
        with pytest.raises(DataValidationError):
            matrix_moments(np.empty((0, 3)))
