"""Special functions cross-checked against scipy."""

import math

import numpy as np
import pytest
import scipy.special
import scipy.stats

from repro.exceptions import DataValidationError
from repro.stats.distributions import (
    chi2_sf,
    empirical_cdf,
    kolmogorov_sf,
    log_gamma,
    normal_cdf,
    regularized_gamma_p,
)


class TestLogGamma:
    @pytest.mark.parametrize("x", [0.1, 0.5, 1.0, 1.5, 2.0, 5.0, 10.5, 100.0, 500.0])
    def test_matches_scipy(self, x):
        assert log_gamma(x) == pytest.approx(scipy.special.gammaln(x), rel=1e-10)

    def test_factorial_identity(self):
        # Gamma(n) = (n-1)!
        assert math.exp(log_gamma(6)) == pytest.approx(120.0, rel=1e-10)

    def test_nonpositive_raises(self):
        with pytest.raises(DataValidationError):
            log_gamma(0.0)
        with pytest.raises(DataValidationError):
            log_gamma(-1.5)


class TestRegularizedGammaP:
    @pytest.mark.parametrize(
        "s,x",
        [(0.5, 0.1), (0.5, 2.0), (1.0, 1.0), (2.5, 1.0), (2.5, 10.0), (10.0, 3.0), (10.0, 30.0)],
    )
    def test_matches_scipy(self, s, x):
        assert regularized_gamma_p(s, x) == pytest.approx(
            scipy.special.gammainc(s, x), rel=1e-9, abs=1e-12
        )

    def test_boundaries(self):
        assert regularized_gamma_p(3.0, 0.0) == 0.0
        assert regularized_gamma_p(1.0, 1e6) == pytest.approx(1.0)

    def test_invalid_inputs(self):
        with pytest.raises(DataValidationError):
            regularized_gamma_p(-1.0, 1.0)
        with pytest.raises(DataValidationError):
            regularized_gamma_p(1.0, -1.0)


class TestChi2Sf:
    @pytest.mark.parametrize(
        "stat,df", [(0.5, 1), (3.84, 1), (5.99, 2), (10.0, 5), (30.0, 20), (100.0, 10)]
    )
    def test_matches_scipy(self, stat, df):
        assert chi2_sf(stat, df) == pytest.approx(
            scipy.stats.chi2.sf(stat, df), rel=1e-8, abs=1e-12
        )

    def test_zero_statistic(self):
        assert chi2_sf(0.0, 3) == 1.0

    def test_critical_value_convention(self):
        # 3.841 is the classic 5% critical value for one degree of freedom.
        assert chi2_sf(3.841, 1) == pytest.approx(0.05, abs=1e-3)

    def test_invalid_inputs(self):
        with pytest.raises(DataValidationError):
            chi2_sf(1.0, 0)
        with pytest.raises(DataValidationError):
            chi2_sf(-1.0, 2)


class TestKolmogorovSf:
    @pytest.mark.parametrize("x", [0.3, 0.5, 0.8, 1.0, 1.36, 2.0, 3.0])
    def test_matches_scipy(self, x):
        assert kolmogorov_sf(x) == pytest.approx(
            scipy.special.kolmogorov(x), rel=1e-8, abs=1e-12
        )

    def test_limits(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-1.0) == 1.0
        assert kolmogorov_sf(10.0) == 0.0

    def test_classic_critical_value(self):
        # 1.358 is the 5% critical value of the Kolmogorov distribution.
        assert kolmogorov_sf(1.358) == pytest.approx(0.05, abs=2e-3)


class TestNormalCdf:
    @pytest.mark.parametrize("x", [-3.0, -1.0, 0.0, 0.5, 1.96, 4.0])
    def test_matches_scipy(self, x):
        assert normal_cdf(x) == pytest.approx(scipy.stats.norm.cdf(x), abs=1e-12)


class TestEmpiricalCdf:
    def test_step_function_values(self):
        sample = np.array([1.0, 2.0, 3.0, 4.0])
        points = np.array([0.5, 1.0, 2.5, 4.0, 9.0])
        assert list(empirical_cdf(sample, points)) == [0.0, 0.25, 0.5, 1.0, 1.0]

    def test_empty_sample_raises(self):
        with pytest.raises(DataValidationError):
            empirical_cdf(np.array([]), np.array([1.0]))
