"""Hypothesis tests cross-checked against scipy."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.stats.tests import (
    TestResult as StatTestResult,
)
from repro.stats.tests import (
    bonferroni,
    chi2_from_counts,
    chi2_two_sample,
    ks_two_sample,
)


class TestKsTwoSample:
    def test_statistic_matches_scipy(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(0.5, 1.2, size=150)
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-12)

    def test_p_value_close_to_scipy_asymptotic(self, rng):
        # Moderate effect, p-value in a well-conditioned range.
        a = rng.normal(size=300)
        b = rng.normal(0.12, 1.0, size=300)
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.15, abs=1e-4)

    def test_tail_p_value_same_order_as_scipy(self, rng):
        # scipy adds a continuity correction, so deep-tail p-values agree
        # only in order of magnitude.
        a = rng.normal(size=300)
        b = rng.normal(0.4, 1.0, size=300)
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert np.log10(ours.p_value) == pytest.approx(np.log10(theirs.pvalue), abs=0.5)

    def test_identical_samples_do_not_reject(self, rng):
        a = rng.normal(size=100)
        result = ks_two_sample(a, a)
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_disjoint_samples_reject_strongly(self):
        result = ks_two_sample(np.zeros(50), np.ones(50))
        assert result.statistic == 1.0
        assert result.p_value < 1e-6

    def test_nan_values_are_dropped(self):
        a = np.array([1.0, 2.0, np.nan, 3.0])
        b = np.array([1.0, 2.0, 3.0])
        assert ks_two_sample(a, b).statistic == pytest.approx(0.0)

    def test_empty_sample_raises(self):
        with pytest.raises(DataValidationError):
            ks_two_sample(np.array([]), np.array([1.0]))
        with pytest.raises(DataValidationError):
            ks_two_sample(np.array([np.nan]), np.array([1.0]))


class TestKsDegenerateSamples:
    """Regression: tie-heavy / constant inputs must keep p in [0, 1]."""

    def test_equal_constant_samples(self):
        result = ks_two_sample(np.full(40, 3.7), np.full(60, 3.7))
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    def test_different_constant_samples_reject(self):
        result = ks_two_sample(np.full(40, 0.0), np.full(40, 1.0))
        assert result.statistic == 1.0
        assert 0.0 <= result.p_value <= 1e-6

    def test_single_element_samples(self):
        same = ks_two_sample(np.array([2.0]), np.array([2.0]))
        assert same.statistic == 0.0 and same.p_value == 1.0
        different = ks_two_sample(np.array([0.0]), np.array([1.0]))
        assert different.statistic == 1.0
        assert 0.0 <= different.p_value <= 1.0

    @given(
        value=st.floats(-1e6, 1e6),
        n_a=st.integers(1, 50),
        n_b=st.integers(1, 50),
    )
    @settings(max_examples=50, deadline=None)
    def test_constant_samples_property(self, value, n_a, n_b):
        result = ks_two_sample(np.full(n_a, value), np.full(n_b, value))
        assert result.statistic == 0.0
        assert result.p_value == 1.0

    @given(
        levels=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=4, unique=True),
        repeats_a=st.integers(1, 20),
        repeats_b=st.integers(1, 20),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_tied_samples_p_value_in_unit_interval(
        self, levels, repeats_a, repeats_b, data
    ):
        # Samples drawn (with heavy repetition) from a handful of tied
        # levels exercise the small-argument region of the asymptotic
        # series, which used to stray outside [0, 1].
        pool = np.asarray(levels)
        idx_a = data.draw(
            st.lists(st.integers(0, len(levels) - 1), min_size=1, max_size=10)
        )
        idx_b = data.draw(
            st.lists(st.integers(0, len(levels) - 1), min_size=1, max_size=10)
        )
        a = np.repeat(pool[idx_a], repeats_a)
        b = np.repeat(pool[idx_b], repeats_b)
        result = ks_two_sample(a, b)
        assert 0.0 <= result.statistic <= 1.0
        assert 0.0 <= result.p_value <= 1.0
        if result.statistic == 0.0:
            assert result.p_value == 1.0


class TestChi2TwoSample:
    def test_matches_scipy_contingency(self):
        a = np.array(["x"] * 60 + ["y"] * 30 + ["z"] * 10, dtype=object)
        b = np.array(["x"] * 30 + ["y"] * 55 + ["z"] * 15, dtype=object)
        ours = chi2_two_sample(a, b)
        observed = np.array([[60, 30, 10], [30, 55, 15]])
        theirs = scipy.stats.chi2_contingency(observed, correction=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-10)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-8)

    def test_identical_distributions_do_not_reject(self):
        a = np.array(["x"] * 50 + ["y"] * 50, dtype=object)
        result = chi2_two_sample(a, a.copy())
        assert result.p_value > 0.99

    def test_category_present_in_only_one_sample(self):
        a = np.array(["x"] * 50, dtype=object)
        b = np.array(["x"] * 25 + ["novel"] * 25, dtype=object)
        result = chi2_two_sample(a, b)
        assert result.p_value < 0.01

    def test_missing_values_dropped(self):
        a = np.array(["x", None, "y", "x"], dtype=object)
        b = np.array(["x", "y", None, "x"], dtype=object)
        result = chi2_two_sample(a, b)
        assert result.p_value > 0.5

    def test_all_missing_raises(self):
        a = np.array([None, None], dtype=object)
        with pytest.raises(DataValidationError):
            chi2_two_sample(a, a.copy())

    def test_single_shared_category_is_trivially_equal(self):
        a = np.array(["only"] * 10, dtype=object)
        result = chi2_two_sample(a, a.copy())
        assert result.statistic == 0.0
        assert result.p_value == 1.0


class TestChi2FromCounts:
    def test_rejects_misaligned_counts(self):
        with pytest.raises(DataValidationError):
            chi2_from_counts(np.array([1.0, 2.0]), np.array([1.0]))

    def test_rejects_empty_sample(self):
        with pytest.raises(DataValidationError):
            chi2_from_counts(np.array([0.0, 0.0]), np.array([1.0, 2.0]))

    def test_pools_zero_categories(self):
        # A category absent from both samples must not contribute df.
        with_zero = chi2_from_counts(np.array([10.0, 20.0, 0.0]), np.array([20.0, 10.0, 0.0]))
        without = chi2_from_counts(np.array([10.0, 20.0]), np.array([20.0, 10.0]))
        assert with_zero.p_value == pytest.approx(without.p_value)


class TestBonferroni:
    def test_rejects_when_any_survives_correction(self):
        assert bonferroni([0.001, 0.5, 0.9], alpha=0.05)

    def test_does_not_reject_marginal_p_values(self):
        # 0.03 < 0.05 uncorrected but not after dividing by 3.
        assert not bonferroni([0.03, 0.5, 0.9], alpha=0.05)

    def test_single_test_is_plain_alpha(self):
        assert bonferroni([0.04], alpha=0.05)
        assert not bonferroni([0.06], alpha=0.05)

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            bonferroni([])


class TestTestResult:
    def test_rejects_at(self):
        result = StatTestResult(statistic=1.0, p_value=0.01)
        assert result.rejects_at(0.05)
        assert not result.rejects_at(0.001)
