"""Tests for artifact serialization (frames, datasets, models)."""

import numpy as np
import pytest

from repro import persistence
from repro.core.predictor import PerformancePredictor
from repro.datasets.base import load_dataset
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import DataValidationError
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class TestFrameRoundTrip:
    def test_mixed_frame_with_missing_values(self, small_frame, tmp_path):
        path = tmp_path / "frame.npz"
        persistence.save_frame(small_frame, path)
        loaded = persistence.load_frame(path)
        assert loaded == small_frame
        assert loaded.schema == small_frame.schema

    def test_image_frame(self, tmp_path):
        frame = DataFrame.from_dict(
            {"img": np.random.default_rng(0).random((4, 6, 6))},
            {"img": ColumnType.IMAGE},
        )
        path = tmp_path / "images.npz"
        persistence.save_frame(frame, path)
        assert persistence.load_frame(path) == frame

    def test_empty_strings_vs_missing_distinguished(self, tmp_path):
        frame = DataFrame.from_dict(
            {"c": ["", None, "x"]}, {"c": ColumnType.CATEGORICAL}
        )
        path = tmp_path / "frame.npz"
        persistence.save_frame(frame, path)
        loaded = persistence.load_frame(path)
        assert loaded["c"][0] == ""
        assert loaded["c"][1] is None

    def test_missing_schema_raises(self):
        with pytest.raises(DataValidationError):
            persistence.frame_from_arrays({}, prefix="frame")


class TestDatasetRoundTrip:
    @pytest.mark.parametrize("name", ["income", "tweets", "digits"])
    def test_every_task_type(self, name, tmp_path):
        dataset = load_dataset(name, n_rows=60, seed=0)
        path = tmp_path / f"{name}.npz"
        persistence.save_dataset(dataset, path)
        loaded = persistence.load_dataset_file(path)
        assert loaded.name == dataset.name
        assert loaded.task == dataset.task
        assert loaded.positive_label == dataset.positive_label
        assert loaded.frame == dataset.frame
        assert np.array_equal(loaded.labels, dataset.labels)


class TestModelRoundTrip:
    def test_pipeline_predictions_survive(self, income_splits, tmp_path):
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=3, random_state=0))
        pipeline.fit(income_splits.train, income_splits.y_train)
        path = tmp_path / "model.npz"
        persistence.save_model(pipeline, path)
        loaded = persistence.load_model(path, expected_class=Pipeline)
        original = pipeline.predict_proba(income_splits.test)
        reloaded = loaded.predict_proba(income_splits.test)
        assert np.array_equal(original, reloaded)

    def test_performance_predictor_survives(self, income_blackbox, income_splits, tmp_path):
        predictor = PerformancePredictor(
            income_blackbox, [MissingValues(), Scaling()], n_samples=20, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        path = tmp_path / "predictor.npz"
        persistence.save_model(predictor, path)
        loaded = persistence.load_model(path, expected_class=PerformancePredictor)
        assert loaded.test_score_ == predictor.test_score_
        assert loaded.predict(income_splits.serving) == pytest.approx(
            predictor.predict(income_splits.serving)
        )

    def test_expected_class_guard(self, tmp_path):
        path = tmp_path / "artifact.npz"
        persistence.save_model(SGDClassifier(), path)
        with pytest.raises(DataValidationError, match="expected a Pipeline"):
            persistence.load_model(path, expected_class=Pipeline)

    def test_load_is_class_consistent(self, tmp_path):
        path = tmp_path / "artifact.npz"
        persistence.save_model(SGDClassifier(), path)
        loaded = persistence.load_model(path)
        assert isinstance(loaded, SGDClassifier)


class TestPathNormalization:
    # Regression: a suffix-less path used to save to "model" but load
    # from "model.npz" (np.savez appends the suffix on write only), so a
    # save/load round trip with the same path string failed.
    def test_suffixless_path_round_trips(self, small_frame, tmp_path):
        path = tmp_path / "frame"
        persistence.save_frame(small_frame, path)
        assert persistence.load_frame(path) == small_frame
        assert (tmp_path / "frame.npz").exists()
        assert not (tmp_path / "frame").exists()

    def test_model_suffixless_path_round_trips(self, tmp_path):
        path = tmp_path / "model"
        persistence.save_model(SGDClassifier(), path)
        assert isinstance(persistence.load_model(path), SGDClassifier)

    def test_foreign_suffix_gets_npz_appended(self, small_frame, tmp_path):
        persistence.save_frame(small_frame, tmp_path / "frame.v2")
        assert (tmp_path / "frame.v2.npz").exists()
        assert persistence.load_frame(tmp_path / "frame.v2") == small_frame

    def test_normalize_is_a_no_op_on_npz_paths(self):
        from pathlib import Path

        assert persistence.normalize_npz_path(Path("a/b.npz")) == Path("a/b.npz")
        assert persistence.normalize_npz_path("a/b") == Path("a/b.npz")
