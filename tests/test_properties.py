"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
import scipy.special
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.featurize import prediction_statistics
from repro.ml.base import sigmoid, softmax
from repro.ml.metrics import accuracy_score, f1_score, roc_auc_score
from repro.ml.preprocessing import HashingVectorizer, OneHotEncoder, StandardScaler
from repro.ml.tree import DecisionTreeRegressor
from repro.stats.distributions import chi2_sf, kolmogorov_sf, regularized_gamma_p
from repro.stats.tests import ks_two_sample
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def float_matrices(min_rows=1, max_rows=30, min_cols=1, max_cols=6):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
        ),
        elements=finite_floats,
    )


class TestNumericInvariants:
    @given(float_matrices())
    def test_softmax_is_a_distribution(self, scores):
        proba = softmax(scores)
        assert np.all(proba >= 0)
        assert np.allclose(proba.sum(axis=1), 1.0)

    @given(hnp.arrays(np.float64, st.integers(1, 50), elements=finite_floats))
    def test_sigmoid_bounded_and_monotone(self, x):
        values = sigmoid(np.sort(x))
        assert np.all((values >= 0) & (values <= 1))
        assert np.all(np.diff(values) >= -1e-15)

    @given(st.floats(min_value=0.01, max_value=50.0), st.floats(min_value=0.0, max_value=200.0))
    def test_regularized_gamma_p_matches_scipy(self, s, x):
        assert regularized_gamma_p(s, x) == pytest.approx(
            scipy.special.gammainc(s, x), rel=1e-6, abs=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=300.0), st.integers(1, 60))
    def test_chi2_sf_matches_scipy(self, statistic, df):
        assert chi2_sf(statistic, df) == pytest.approx(
            scipy.stats.chi2.sf(statistic, df), rel=1e-5, abs=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=5.0))
    def test_kolmogorov_sf_is_a_survival_function(self, x):
        value = kolmogorov_sf(x)
        assert 0.0 <= value <= 1.0
        # Monotone nonincreasing.
        assert kolmogorov_sf(x + 0.1) <= value + 1e-12


class TestStatsProperties:
    @given(
        hnp.arrays(np.float64, st.integers(5, 80), elements=finite_floats),
        hnp.arrays(np.float64, st.integers(5, 80), elements=finite_floats),
    )
    def test_ks_statistic_matches_scipy(self, a, b):
        ours = ks_two_sample(a, b)
        theirs = scipy.stats.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(theirs.statistic, abs=1e-12)
        assert 0.0 <= ours.p_value <= 1.0

    @given(hnp.arrays(np.float64, st.integers(2, 60), elements=finite_floats))
    def test_ks_is_symmetric(self, a):
        b = a + 1.0
        assert ks_two_sample(a, b).statistic == pytest.approx(
            ks_two_sample(b, a).statistic
        )


class TestMetricProperties:
    @given(
        hnp.arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 3)),
        hnp.arrays(np.int64, st.integers(1, 60), elements=st.integers(0, 3)),
    )
    def test_accuracy_bounded(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        if n == 0:
            return
        value = accuracy_score(y_true[:n], y_pred[:n])
        assert 0.0 <= value <= 1.0

    @given(st.data())
    def test_f1_bounded_and_symmetric_on_perfect(self, data):
        n = data.draw(st.integers(2, 50))
        y = data.draw(hnp.arrays(np.int64, n, elements=st.integers(0, 1)))
        assert 0.0 <= f1_score(y, 1 - y) <= 1.0
        if y.sum() > 0:
            assert f1_score(y, y) == 1.0

    @given(st.data())
    def test_auc_complement_identity(self, data):
        n = data.draw(st.integers(4, 60))
        scores = data.draw(
            hnp.arrays(np.float64, n, elements=st.floats(0, 1, allow_nan=False))
        )
        y = np.zeros(n, dtype=int)
        y[: n // 2] = 1
        auc = roc_auc_score(y, scores)
        flipped = roc_auc_score(y, -scores)
        assert auc + flipped == pytest.approx(1.0)


class TestPreprocessingProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(st.integers(2, 30), st.integers(1, 6)),
            elements=st.floats(
                min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
            ),
        )
    )
    def test_scaler_output_centered(self, X):
        # Bounded magnitudes: with values near float64 cancellation limits a
        # standardizer cannot promise centering, only finiteness.
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=50))
    def test_onehot_rows_have_at_most_one_hot(self, values):
        arr = np.array(values, dtype=object)
        encoded = OneHotEncoder().fit_transform(arr)
        assert np.all(encoded.sum(axis=1) == 1.0)

    @given(st.text(min_size=0, max_size=80))
    def test_hashing_vectorizer_total_function(self, text):
        out = HashingVectorizer(n_features=32).transform(np.array([text], dtype=object))
        assert out.shape == (1, 32)
        assert np.all(np.isfinite(out))
        norm = np.linalg.norm(out)
        assert norm == pytest.approx(1.0) or norm == 0.0


class TestFeaturizationProperties:
    @given(float_matrices(min_rows=2, min_cols=2, max_cols=4))
    def test_percentile_features_monotone_within_class(self, matrix):
        features = prediction_statistics(matrix)
        per_class = features.reshape(matrix.shape[1], -1)
        for block in per_class:
            assert np.all(np.diff(block) >= -1e-9)

    @given(float_matrices(min_rows=3, min_cols=2, max_cols=3))
    def test_features_invariant_to_row_permutation(self, matrix):
        rng = np.random.default_rng(0)
        shuffled = matrix[rng.permutation(matrix.shape[0])]
        assert np.allclose(
            prediction_statistics(matrix), prediction_statistics(shuffled)
        )


class TestTreeProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_tree_predictions_within_target_range(self, data):
        n = data.draw(st.integers(5, 60))
        X = data.draw(hnp.arrays(np.float64, (n, 3), elements=finite_floats))
        y = data.draw(hnp.arrays(np.float64, n, elements=finite_floats))
        tree = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        predictions = tree.predict(X)
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9


class TestFrameProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_select_rows_roundtrip(self, data):
        n = data.draw(st.integers(1, 40))
        values = data.draw(hnp.arrays(np.float64, n, elements=finite_floats))
        frame = DataFrame.from_dict({"x": values}, {"x": ColumnType.NUMERIC})
        index = data.draw(
            st.lists(st.integers(0, n - 1), min_size=0, max_size=n)
        )
        selected = frame.select_rows(np.array(index, dtype=int))
        assert len(selected) == len(index)
        for out_row, src_row in enumerate(index):
            assert selected["x"][out_row] == values[src_row]

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.one_of(st.none(), st.text(max_size=5)), min_size=1, max_size=30))
    def test_categorical_missing_roundtrip(self, values):
        frame = DataFrame.from_dict({"c": values}, {"c": ColumnType.CATEGORICAL})
        mask = frame.missing_mask("c")
        assert mask.sum() == sum(v is None for v in values)
