"""End-to-end integration tests across the whole stack.

These walk the full paper workflow — train a black box, specify errors,
fit the predictor/validator, corrupt serving data, raise alarms — and pin
the qualitative results the reproduction must deliver.
"""

import numpy as np
import pytest

from repro.automl.cloud import CloudModelService
from repro.automl.search import AutoMLSearch
from repro.baselines.bbse import BBSE, BBSEh
from repro.baselines.rel import RelationalShiftDetector
from repro.core.alarms import check_serving_batch
from repro.core.blackbox import BlackBoxModel
from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.mixture import ErrorMixture
from repro.errors.tabular_errors import (
    GaussianOutliers,
    MissingValues,
    Scaling,
    SwappedValues,
)
from repro.errors.text_errors import LeetspeakAdversarial
from repro.evaluation.harness import prepare_splits, train_black_box


class TestTabularEndToEnd:
    def test_full_workflow_with_alarm(self, income_blackbox, income_splits, rng):
        generators = [MissingValues(), GaussianOutliers(), SwappedValues(), Scaling()]
        predictor = PerformancePredictor(
            income_blackbox, generators, n_samples=80, random_state=0
        ).fit(income_splits.test, income_splits.y_test)

        clean_report = check_serving_batch(predictor, income_splits.serving, 0.05)
        assert clean_report.alarm is False

        broken = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=0.9, factor=1000.0,
        )
        broken_report = check_serving_batch(predictor, broken, 0.05)
        assert broken_report.alarm is True
        truth = income_blackbox.score(broken, income_splits.y_serving)
        assert abs(broken_report.estimated_score - truth) < 0.15

    def test_predictor_tracks_gradual_degradation(
        self, income_blackbox, income_splits, rng
    ):
        generators = [GaussianOutliers()]
        predictor = PerformancePredictor(
            income_blackbox, generators, n_samples=60, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        estimates, truths = [], []
        for fraction in (0.0, 0.3, 0.6, 0.9):
            corrupted = GaussianOutliers().corrupt(
                income_splits.serving, rng,
                columns=income_splits.serving.numeric_columns,
                fraction=fraction, scale=4.0,
            )
            estimates.append(predictor.predict(corrupted))
            truths.append(income_blackbox.score(corrupted, income_splits.y_serving))
        # Both series must degrade together.
        assert truths[0] > truths[-1]
        assert estimates[0] > estimates[-1]
        assert np.mean(np.abs(np.array(estimates) - np.array(truths))) < 0.08


class TestValidatorBeatsBaselinesOnModelIrrelevantShift:
    def test_ppm_ignores_shift_the_model_ignores(self, income_splits, rng):
        """A shift in an ignored column must not trip PPM, but trips REL.

        This is the paper's core argument for model-aware validation.
        """
        # Train a black box on a single informative column by blanking the
        # numeric columns' signal: use the full pipeline but corrupt a
        # column REL watches and the model barely uses.
        blackbox = train_black_box("xgb", income_splits, seed=0)
        generators = [MissingValues(), GaussianOutliers(), SwappedValues(), Scaling()]
        validator = PerformanceValidator(
            blackbox, generators, threshold=0.05, n_samples=100, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        rel = RelationalShiftDetector().fit(income_splits.test)

        # Smear one low-importance numeric column slightly: a clear
        # distributional shift with negligible accuracy impact.
        serving = income_splits.serving.copy()
        column = "capital_gain"
        serving.set_values(
            column, np.arange(len(serving)), serving[column] * 1.02 + 0.01
        )
        true_score = blackbox.score(serving, income_splits.y_serving)
        test_score = blackbox.score(income_splits.test, income_splits.y_test)
        assert true_score >= 0.95 * test_score  # accuracy unharmed
        assert validator.validate(serving) is True
        assert rel.shift_detected(serving) is True  # REL false alarm


class TestTextEndToEnd:
    def test_adversarial_attack_detected(self):
        splits = prepare_splits("tweets", n_rows=1200, seed=0)
        blackbox = train_black_box("lr", splits, seed=0)
        predictor = PerformancePredictor(
            blackbox, [LeetspeakAdversarial()], n_samples=40, random_state=0
        ).fit(splits.test, splits.y_test)
        rng = np.random.default_rng(0)
        attacked = LeetspeakAdversarial().corrupt(
            splits.serving, rng, columns=["text"], fraction=0.9
        )
        estimate = predictor.predict(attacked)
        truth = blackbox.score(attacked, splits.y_serving)
        assert truth < blackbox.score(splits.test, splits.y_test)  # attack works
        assert abs(estimate - truth) < 0.1  # and is quantified


class TestAutoMLEndToEnd:
    def test_validator_tailors_to_automl_model(self, income_splits):
        search = AutoMLSearch(preset="auto-sklearn", n_candidates=3, random_state=0)
        search.fit(income_splits.train, income_splits.y_train)
        blackbox = BlackBoxModel.wrap(search)
        generators = [MissingValues(), Scaling()]
        validator = PerformanceValidator(
            blackbox, generators, threshold=0.05, n_samples=60, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        assert validator.validate(income_splits.serving) is True

    def test_cloud_model_performance_prediction(self, income_splits):
        service = CloudModelService(random_state=0)
        model_id = service.train(income_splits.train, income_splits.y_train)
        blackbox = service.as_blackbox(model_id)
        generators = [MissingValues(), GaussianOutliers(), Scaling()]
        predictor = PerformancePredictor(
            blackbox, generators, n_samples=50, mode="mixture", random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        rng = np.random.default_rng(1)
        mixture = ErrorMixture(generators, fire_prob=0.6)
        absolute_errors = []
        for _ in range(5):
            corrupted, _ = mixture.corrupt_random(income_splits.serving, rng)
            estimate = predictor.predict(corrupted)
            truth = blackbox.score(corrupted, income_splits.y_serving)
            absolute_errors.append(abs(estimate - truth))
        assert float(np.median(absolute_errors)) < 0.08


class TestBaselineComparison:
    def test_all_four_approaches_agree_on_catastrophe(
        self, income_blackbox, income_splits, rng
    ):
        generators = [MissingValues(), GaussianOutliers(), SwappedValues(), Scaling()]
        validator = PerformanceValidator(
            income_blackbox, generators, threshold=0.05, n_samples=80, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        rel = RelationalShiftDetector().fit(income_splits.test)
        bbse = BBSE(income_blackbox).fit(income_splits.test)
        bbse_h = BBSEh(income_blackbox).fit(income_splits.test)
        broken = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        assert validator.validate(broken) is False
        assert rel.shift_detected(broken) is True
        assert bbse.shift_detected(broken) is True
        assert bbse_h.shift_detected(broken) is True
