"""Smoke tests: every example script must run to completion.

The examples double as executable documentation; each is executed in-
process with a trimmed workload via monkeypatched dataset sizes where the
script exposes them. They are marked slow-ish but still run in the default
suite because a broken example is a broken deliverable.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys, monkeypatch):
    # Examples print progress; execution without an exception is the bar.
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    assert len(output) > 50  # every example narrates what it does
