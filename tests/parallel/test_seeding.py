"""Tests for deterministic seed derivation."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.parallel import rng_from_seed, spawn_seeds


class TestSpawnSeeds:
    def test_int_source_is_deterministic(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        draws_a = [np.random.default_rng(s).random() for s in a]
        draws_b = [np.random.default_rng(s).random() for s in b]
        assert draws_a == draws_b

    def test_children_are_independent_streams(self):
        seeds = spawn_seeds(0, 10)
        draws = {np.random.default_rng(s).random() for s in seeds}
        assert len(draws) == 10

    def test_generator_source_consumes_exactly_one_draw(self):
        few, many = np.random.default_rng(7), np.random.default_rng(7)
        spawn_seeds(few, 2)
        spawn_seeds(many, 200)
        # The caller's stream advanced identically despite the different
        # task counts — the whole point of spawning from one draw.
        assert few.integers(2**63) == many.integers(2**63)

    def test_task_seeds_do_not_depend_on_task_count(self):
        few = spawn_seeds(np.random.default_rng(7), 2)
        many = spawn_seeds(np.random.default_rng(7), 200)
        for a, b in zip(few, many):
            assert np.random.default_rng(a).random() == np.random.default_rng(b).random()

    def test_seed_sequence_source_spawns_directly(self):
        root = np.random.SeedSequence(5)
        seeds = spawn_seeds(root, 3)
        assert [s.spawn_key for s in seeds] == [(0,), (1,), (2,)]

    def test_zero_tasks_allowed(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_task_count_raises(self):
        with pytest.raises(DataValidationError):
            spawn_seeds(0, -1)


class TestRngFromSeed:
    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert rng_from_seed(rng) is rng

    def test_seed_sequence_materializes(self):
        seed = np.random.SeedSequence(3)
        a, b = rng_from_seed(seed), rng_from_seed(np.random.SeedSequence(3))
        assert a.random() == b.random()

    def test_int_and_none(self):
        assert rng_from_seed(9).random() == np.random.default_rng(9).random()
        assert isinstance(rng_from_seed(None), np.random.Generator)
