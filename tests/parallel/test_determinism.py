"""The engine's core guarantee: bit-identical results at every n_jobs/backend.

Covers the four wired hot paths — corruption episodes, forest fitting,
cross-validated grid search, and the full PerformancePredictor fit —
against a serial reference, for both tree engines where forests are
involved.
"""

import numpy as np
import pytest

from repro.core.corruption import CorruptionSampler
from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.model_selection import GridSearchCV, cross_val_score

SETTINGS = [(1, "serial"), (2, "thread"), (4, "thread"), (2, "process"), (4, "process")]


@pytest.fixture(scope="module")
def reference_predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=18,
        mode="single",
        regressor=RandomForestRegressor(n_trees=8, random_state=0),
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


class TestPredictorDeterminism:
    @pytest.mark.parametrize("n_jobs,backend", SETTINGS)
    def test_fitted_state_is_identical(
        self, reference_predictor, income_blackbox, income_splits, n_jobs, backend
    ):
        predictor = PerformancePredictor(
            income_blackbox,
            [MissingValues(), GaussianOutliers(), Scaling()],
            n_samples=18,
            mode="single",
            regressor=RandomForestRegressor(n_trees=8, random_state=0),
            random_state=0,
            n_jobs=n_jobs,
            backend=backend,
        ).fit(income_splits.test, income_splits.y_test)
        assert np.array_equal(
            predictor.meta_features_, reference_predictor.meta_features_
        )
        assert np.array_equal(predictor.meta_scores_, reference_predictor.meta_scores_)
        assert np.array_equal(
            predictor.calibration_residuals_,
            reference_predictor.calibration_residuals_,
        )
        assert predictor.predict(income_splits.serving) == reference_predictor.predict(
            income_splits.serving
        )


class TestForestDeterminism:
    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    @pytest.mark.parametrize("n_jobs,backend", SETTINGS)
    def test_regressor_predictions_identical(
        self, binary_matrix_problem, n_jobs, backend, tree_method
    ):
        X, y, X_test, _ = binary_matrix_problem
        reference = RandomForestRegressor(
            n_trees=12, random_state=3, tree_method=tree_method
        ).fit(X, y)
        forest = RandomForestRegressor(
            n_trees=12, random_state=3, n_jobs=n_jobs, backend=backend,
            tree_method=tree_method,
        ).fit(X, y)
        assert np.array_equal(forest.predict(X_test), reference.predict(X_test))

    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    @pytest.mark.parametrize("n_jobs,backend", [(2, "thread"), (4, "process")])
    def test_classifier_probabilities_identical(
        self, binary_matrix_problem, n_jobs, backend, tree_method
    ):
        X, y, X_test, _ = binary_matrix_problem
        reference = RandomForestClassifier(
            n_trees=10, random_state=1, tree_method=tree_method
        ).fit(X, y)
        forest = RandomForestClassifier(
            n_trees=10, random_state=1, n_jobs=n_jobs, backend=backend,
            tree_method=tree_method,
        ).fit(X, y)
        assert np.array_equal(
            forest.predict_proba(X_test), reference.predict_proba(X_test)
        )


class TestModelSelectionDeterminism:
    @pytest.mark.parametrize("n_jobs,backend", [(2, "thread"), (4, "process")])
    def test_cross_val_scores_identical(self, binary_matrix_problem, n_jobs, backend):
        X, y, _, _ = binary_matrix_problem
        estimator = RandomForestClassifier(n_trees=6, random_state=0)
        reference = cross_val_score(estimator, X, y, n_splits=3)
        scores = cross_val_score(
            estimator, X, y, n_splits=3, n_jobs=n_jobs, backend=backend
        )
        assert np.array_equal(scores, reference)

    @pytest.mark.parametrize("n_jobs,backend", [(4, "thread"), (2, "process")])
    def test_grid_search_identical(self, binary_matrix_problem, n_jobs, backend):
        X, y, _, _ = binary_matrix_problem

        def search(jobs, backend_name):
            return GridSearchCV(
                RandomForestRegressor(random_state=0),
                param_grid={"n_trees": [4, 8]},
                n_splits=3,
                n_jobs=jobs,
                backend=backend_name,
            ).fit(X, y.astype(float))

        reference = search(1, "serial")
        result = search(n_jobs, backend)
        assert result.best_params_ == reference.best_params_
        assert result.cv_results_ == reference.cv_results_


class TestSamplerDeterminism:
    @pytest.mark.parametrize("n_jobs,backend", [(2, "thread"), (4, "process")])
    def test_samples_identical(self, income_blackbox, income_splits, n_jobs, backend):
        def draw(jobs, backend_name):
            sampler = CorruptionSampler(
                income_blackbox,
                [MissingValues(), Scaling()],
                mode="mixture",
                n_jobs=jobs,
                backend=backend_name,
            )
            return sampler.sample(
                income_splits.test, income_splits.y_test, 8, np.random.default_rng(5)
            )

        reference = draw(1, "serial")
        samples = draw(n_jobs, backend)
        assert len(samples) == len(reference)
        for sample, expected in zip(samples, reference):
            assert sample.score == expected.score
            assert np.array_equal(sample.proba, expected.proba)
            assert sample.reports == expected.reports
