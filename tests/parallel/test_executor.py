"""Tests for the Executor: ordering, determinism, failure semantics."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, ParallelExecutionError, ReproError
from repro.parallel import (
    BACKENDS,
    Executor,
    available_backends,
    pmap,
    resolve_n_jobs,
    spawn_seeds,
)


def _square(x):
    return x * x


def _draw(item, rng):
    return float(rng.random()) + item


def _boom(x):
    if x == 3:
        raise ValueError("task exploded on 3")
    return x


def _add_shared(item, shared):
    return item + shared["offset"]


def _draw_shared(item, rng, shared):
    return float(rng.random()) + item + shared


def _boom_shared(item, shared):
    if item == shared["poison"]:
        raise ValueError("poisoned item")
    return item


class TestResolveNJobs:
    def test_none_means_one(self):
        assert resolve_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(4) == 4

    def test_zero_raises(self):
        with pytest.raises(DataValidationError):
            resolve_n_jobs(0)

    def test_negative_counts_back_from_cores(self):
        import os

        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)
        assert resolve_n_jobs(-10_000) == 1


class TestBackends:
    def test_serial_and_thread_always_available(self):
        assert {"serial", "thread"} <= set(available_backends())
        assert set(available_backends()) <= set(BACKENDS)

    def test_unknown_backend_raises(self):
        with pytest.raises(DataValidationError):
            Executor(backend="greenlet")

    def test_bad_chunk_size_raises(self):
        with pytest.raises(DataValidationError):
            Executor(chunk_size=0)

    def test_single_job_resolves_serial(self):
        assert Executor(n_jobs=1, backend="auto").resolved_backend() == "serial"

    def test_single_item_resolves_serial(self):
        assert Executor(n_jobs=8, backend="thread").resolved_backend(1) == "serial"


class TestMap:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_ordered_results_on_every_backend(self, backend, n_jobs):
        expected = [x * x for x in range(23)]
        assert pmap(_square, range(23), n_jobs=n_jobs, backend=backend) == expected

    def test_empty_items(self):
        assert pmap(_square, [], n_jobs=4) == []

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_seeded_results_identical_to_serial(self, backend, n_jobs):
        reference = pmap(_draw, range(11), n_jobs=1, seeds=spawn_seeds(0, 11))
        result = pmap(
            _draw, range(11), n_jobs=n_jobs, seeds=spawn_seeds(0, 11), backend=backend
        )
        assert result == reference

    def test_chunk_size_does_not_change_results(self):
        reference = pmap(_draw, range(9), n_jobs=1, seeds=spawn_seeds(1, 9))
        chunked = pmap(
            _draw, range(9), n_jobs=2, seeds=spawn_seeds(1, 9),
            backend="thread", chunk_size=1,
        )
        assert chunked == reference

    def test_seed_length_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            pmap(_draw, range(4), seeds=spawn_seeds(0, 3))


class TestFailureSemantics:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_task_error_surfaces_as_repro_error(self, backend):
        with pytest.raises(ParallelExecutionError) as excinfo:
            pmap(_boom, range(6), n_jobs=2, backend=backend)
        error = excinfo.value
        assert isinstance(error, ReproError)
        assert error.task_index == 3
        assert error.original_type == "ValueError"
        assert "task exploded on 3" in str(error)
        # The worker traceback travels with the error, not as a bare dump.
        assert "worker traceback" in str(error)
        assert isinstance(error.__cause__, ValueError)

    def test_unpicklable_fn_falls_back_to_serial_with_warning(self):
        executor = Executor(n_jobs=2, backend="process")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = executor.map(lambda x: x + 1, range(5))
        assert result == [1, 2, 3, 4, 5]

    def test_fallback_can_be_disabled(self):
        executor = Executor(n_jobs=2, backend="process", fallback_serial=False)
        with pytest.raises(ParallelExecutionError):
            executor.map(lambda x: x + 1, range(5))

    def test_first_failing_index_is_reported(self):
        with pytest.raises(ParallelExecutionError) as excinfo:
            pmap(_boom, [3, 3, 0], n_jobs=2, backend="thread")
        assert excinfo.value.task_index == 0


class TestSharedPayload:
    """The ``shared=`` broadcast: one read-only payload for every task."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_shared_reaches_every_task(self, backend):
        executor = Executor(n_jobs=1 if backend == "serial" else 2, backend=backend)
        result = executor.map(_add_shared, [1, 2, 3, 4], shared={"offset": 10})
        assert result == [11, 12, 13, 14]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_shared_with_seeds_matches_serial(self, backend):
        seeds = spawn_seeds(0, 4)
        serial = Executor(n_jobs=1).map(
            _draw_shared, range(4), seeds=seeds, shared=100.0
        )
        parallel = Executor(n_jobs=2, backend=backend).map(
            _draw_shared, range(4), seeds=seeds, shared=100.0
        )
        assert parallel == serial

    def test_pmap_accepts_shared(self):
        result = pmap(
            _add_shared, [1, 2], n_jobs=2, backend="thread", shared={"offset": 1}
        )
        assert result == [2, 3]

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_map_quarantine_passes_shared(self, backend):
        executor = Executor(n_jobs=1 if backend == "serial" else 2, backend=backend)
        results, quarantined = executor.map_quarantine(
            _boom_shared, [0, 1, 2], shared={"poison": 1}
        )
        assert results == [0, None, 2]
        assert [q.index for q in quarantined] == [1]

    def test_unpicklable_shared_falls_back_to_serial(self):
        executor = Executor(n_jobs=2, backend="process")
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            result = executor.map(
                _add_shared, [1, 2], shared={"offset": 3, "bad": lambda: None}
            )
        assert result == [4, 5]


class TestAdaptiveChunking:
    def test_adaptive_chunks_match_serial_results(self):
        items = list(range(23))
        serial = Executor(n_jobs=1).map(_square, items)
        adaptive = Executor(n_jobs=2, backend="thread").map(_square, items)
        assert adaptive == serial

    def test_explicit_chunk_size_still_honoured(self):
        items = list(range(9))
        explicit = Executor(n_jobs=2, backend="thread", chunk_size=2).map(
            _square, items
        )
        assert explicit == [x * x for x in items]


class TestEffectiveParallelism:
    def test_clamped_to_host_cores(self):
        import os

        from repro.parallel import effective_parallelism

        cores = os.cpu_count() or 1
        assert effective_parallelism(1) == 1
        assert effective_parallelism(cores + 8) == cores
        assert effective_parallelism(-1) == cores
        assert effective_parallelism(None) == 1
