"""Failure injection: corruption episodes that raise inside workers."""

import numpy as np
import pytest

from repro.core.corruption import CorruptionSampler
from repro.exceptions import ParallelExecutionError, ReproError
from repro.errors.base import ErrorGen


class ExplodingError(ErrorGen):
    """A generator whose corrupt step always blows up (module-level so the
    process backend can pickle it)."""

    name = "exploding"

    def applicable_columns(self, frame):
        return frame.numeric_columns

    def corrupt(self, frame, rng, **params):
        raise RuntimeError("corruption blew up")


@pytest.mark.parametrize("n_jobs,backend", [(1, "serial"), (2, "thread"), (2, "process")])
def test_episode_error_surfaces_as_repro_error(
    income_blackbox, income_splits, n_jobs, backend
):
    sampler = CorruptionSampler(
        income_blackbox, [ExplodingError()], mode="single",
        include_clean=False, n_jobs=n_jobs, backend=backend,
    )
    with pytest.raises(ParallelExecutionError) as excinfo:
        sampler.sample(
            income_splits.test, income_splits.y_test, 4, np.random.default_rng(0)
        )
    error = excinfo.value
    assert isinstance(error, ReproError)
    assert error.task_index == 0
    assert error.original_type == "RuntimeError"
    # The user sees the episode's own message plus the worker traceback,
    # never a bare pool dump.
    assert "corruption blew up" in str(error)
    assert "worker traceback" in str(error)
