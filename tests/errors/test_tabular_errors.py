"""Tests for the tabular error generators."""

import numpy as np
import pytest

from repro.errors.tabular_errors import (
    EncodingErrors,
    GaussianOutliers,
    MissingValues,
    Scaling,
    SignFlip,
    Smearing,
    SwappedValues,
    Typos,
)
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_frame(n: int = 200) -> DataFrame:
    rng = np.random.default_rng(0)
    return DataFrame.from_dict(
        {
            "num_a": rng.normal(10.0, 2.0, size=n),
            "num_b": rng.normal(-5.0, 1.0, size=n),
            "cat_a": rng.choice(["red", "green", "blue"], size=n).astype(object),
            "cat_b": rng.choice(["tiny", "huge"], size=n).astype(object),
        },
        {
            "num_a": ColumnType.NUMERIC,
            "num_b": ColumnType.NUMERIC,
            "cat_a": ColumnType.CATEGORICAL,
            "cat_b": ColumnType.CATEGORICAL,
        },
    )


class TestErrorGenContract:
    """Invariants every generator must satisfy."""

    GENERATORS = [
        MissingValues(),
        GaussianOutliers(),
        SwappedValues(),
        Scaling(),
        EncodingErrors(),
        Typos(),
        Smearing(),
        SignFlip(),
    ]

    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
    def test_does_not_mutate_input(self, generator, rng):
        frame = make_frame()
        snapshot = frame.copy()
        generator.corrupt_random(frame, rng)
        assert frame == snapshot

    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
    def test_preserves_row_count_and_schema(self, generator, rng):
        frame = make_frame()
        corrupted, _ = generator.corrupt_random(frame, rng)
        assert len(corrupted) == len(frame)
        assert corrupted.schema == frame.schema

    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
    def test_report_names_generator(self, generator, rng):
        _, report = generator.corrupt_random(make_frame(), rng)
        assert report.error_name == generator.name
        assert "columns" in report.params

    @pytest.mark.parametrize("generator", GENERATORS, ids=lambda g: g.name)
    def test_zero_fraction_changes_nothing(self, generator, rng):
        frame = make_frame()
        params = generator.sample_params(frame, rng)
        params["fraction"] = 0.0
        corrupted = generator.corrupt(frame, rng, **params)
        assert corrupted == frame

    def test_unknown_column_raises(self, rng):
        generator = MissingValues(columns=["nope"])
        with pytest.raises(CorruptionError):
            generator.corrupt_random(make_frame(), rng)

    def test_inapplicable_frame_raises(self, rng):
        text_only = DataFrame.from_dict({"t": ["a", "b"]}, {"t": ColumnType.TEXT})
        with pytest.raises(CorruptionError):
            GaussianOutliers().corrupt_random(text_only, rng)

    def test_invalid_fraction_raises(self, rng):
        generator = MissingValues()
        frame = make_frame()
        params = generator.sample_params(frame, rng)
        params["fraction"] = 1.5
        with pytest.raises(CorruptionError):
            generator.corrupt(frame, rng, **params)


class TestMissingValues:
    def test_introduces_requested_fraction(self, rng):
        frame = make_frame(1000)
        generator = MissingValues(columns=["cat_a"])
        corrupted = generator.corrupt(frame, rng, columns=["cat_a"], fraction=0.3)
        assert corrupted.missing_fraction("cat_a") == pytest.approx(0.3, abs=0.01)

    def test_numeric_kind_produces_nan(self, rng):
        frame = make_frame()
        generator = MissingValues(column_kind="numeric")
        corrupted = generator.corrupt(frame, rng, columns=["num_a"], fraction=0.5)
        assert corrupted.missing_fraction("num_a") == pytest.approx(0.5, abs=0.05)

    def test_default_applies_to_categorical_only(self):
        assert MissingValues().applicable_columns(make_frame()) == ["cat_a", "cat_b"]

    def test_invalid_kind_raises(self):
        with pytest.raises(CorruptionError):
            MissingValues(column_kind="bogus")


class TestGaussianOutliers:
    def test_increases_column_spread(self, rng):
        frame = make_frame(1000)
        generator = GaussianOutliers(columns=["num_a"])
        corrupted = generator.corrupt(
            frame, rng, columns=["num_a"], fraction=0.5, scale=4.0
        )
        assert corrupted["num_a"].std() > 1.5 * frame["num_a"].std()

    def test_untouched_columns_identical(self, rng):
        frame = make_frame()
        corrupted = GaussianOutliers().corrupt(
            frame, rng, columns=["num_a"], fraction=0.5, scale=3.0
        )
        assert np.array_equal(corrupted["num_b"], frame["num_b"])

    def test_scale_sampled_in_paper_range(self, rng):
        params = GaussianOutliers().sample_params(make_frame(), rng)
        assert 2.0 <= params["scale"] <= 5.0


class TestSwappedValues:
    def test_same_type_swap_exchanges_values(self, rng):
        frame = make_frame()
        generator = SwappedValues(columns=["num_a", "num_b"])
        corrupted = generator.corrupt(
            frame, rng, columns=["num_a", "num_b"], fraction=1.0
        )
        assert np.allclose(corrupted["num_a"], frame["num_b"])
        assert np.allclose(corrupted["num_b"], frame["num_a"])

    def test_cross_type_swap_nans_numeric_and_stringifies(self, rng):
        frame = make_frame()
        generator = SwappedValues(columns=["num_a", "cat_a"])
        corrupted = generator.corrupt(
            frame, rng, columns=["num_a", "cat_a"], fraction=1.0
        )
        assert corrupted.missing_fraction("num_a") == 1.0
        # Categorical side holds stringified numbers (unseen categories).
        assert all(v is None or v not in ("red", "green", "blue") for v in corrupted["cat_a"])

    def test_sample_params_picks_a_pair(self, rng):
        params = SwappedValues().sample_params(make_frame(), rng)
        assert len(params["columns"]) == 2

    def test_single_column_frame_raises(self, rng):
        frame = DataFrame.from_dict({"x": [1.0, 2.0]}, {"x": ColumnType.NUMERIC})
        with pytest.raises(CorruptionError):
            SwappedValues().sample_params(frame, rng)

    def test_wrong_column_count_raises(self, rng):
        with pytest.raises(CorruptionError):
            SwappedValues().corrupt(make_frame(), rng, columns=["num_a"], fraction=0.5)


class TestScaling:
    def test_multiplies_by_factor(self, rng):
        frame = make_frame()
        corrupted = Scaling().corrupt(
            frame, rng, columns=["num_a"], fraction=1.0, factor=100.0
        )
        assert np.allclose(corrupted["num_a"], frame["num_a"] * 100.0)

    def test_factor_sampled_from_paper_values(self, rng):
        params = Scaling().sample_params(make_frame(), rng)
        assert params["factor"] in (10.0, 100.0, 1000.0)

    def test_partial_fraction_leaves_other_rows(self, rng):
        frame = make_frame(1000)
        corrupted = Scaling().corrupt(
            frame, rng, columns=["num_a"], fraction=0.3, factor=10.0
        )
        changed = ~np.isclose(corrupted["num_a"], frame["num_a"])
        assert changed.mean() == pytest.approx(0.3, abs=0.02)


class TestEncodingErrors:
    def test_replaces_vowels_with_mojibake(self, rng):
        frame = make_frame()
        corrupted = EncodingErrors().corrupt(
            frame, rng, columns=["cat_a"], fraction=1.0
        )
        assert any("é" in v or "œ" in v for v in corrupted["cat_a"] if v is not None)

    def test_missing_values_pass_through(self, rng):
        frame = make_frame().copy()
        frame.set_values("cat_a", np.arange(len(frame)), None)
        corrupted = EncodingErrors().corrupt(frame, rng, columns=["cat_a"], fraction=1.0)
        assert all(v is None for v in corrupted["cat_a"])


class TestTypos:
    def test_corrupted_values_become_unseen_categories(self, rng):
        frame = make_frame(500)
        corrupted = Typos().corrupt(frame, rng, columns=["cat_a"], fraction=1.0)
        original = {"red", "green", "blue"}
        changed = sum(v not in original for v in corrupted["cat_a"])
        # Character edits almost always leave the original vocabulary.
        assert changed > 400

    def test_edit_operations_cover_sub_insert_delete(self, rng):
        lengths = set()
        for _ in range(100):
            lengths.add(len(Typos._edit("abcdef", rng)))
        assert lengths == {5, 6, 7}


class TestSmearing:
    def test_changes_bounded_by_ten_percent(self, rng):
        frame = make_frame()
        corrupted = Smearing().corrupt(frame, rng, columns=["num_a"], fraction=1.0)
        relative = np.abs(corrupted["num_a"] / frame["num_a"] - 1.0)
        assert relative.max() <= 0.1 + 1e-12


class TestSignFlip:
    def test_flips_selected_fraction(self, rng):
        frame = make_frame(1000)
        corrupted = SignFlip().corrupt(frame, rng, columns=["num_a"], fraction=0.4)
        flipped = np.isclose(corrupted["num_a"], -frame["num_a"]) & (frame["num_a"] != 0)
        assert flipped.mean() == pytest.approx(0.4, abs=0.02)
