"""Tests for the extended (future-work) error generators."""

import numpy as np
import pytest

from repro.errors.extended_errors import (
    CategoryShift,
    ClippedValues,
    DuplicateRows,
    ImageContrastShift,
    ImageOcclusion,
    PaddedStrings,
    ShuffledColumn,
    extended_training_pool,
)
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_frame(n: int = 300) -> DataFrame:
    rng = np.random.default_rng(0)
    return DataFrame.from_dict(
        {
            "x": rng.normal(10.0, 3.0, size=n),
            "c": rng.choice(["a", "b", "c"], size=n).astype(object),
        },
        {"x": ColumnType.NUMERIC, "c": ColumnType.CATEGORICAL},
    )


def make_images(n: int = 40) -> DataFrame:
    rng = np.random.default_rng(1)
    images = np.clip(rng.random((n, 12, 12)), 0, 1)
    return DataFrame.from_dict({"image": images}, {"image": ColumnType.IMAGE})


TABULAR_GENERATORS = [
    CategoryShift(), DuplicateRows(), ShuffledColumn(), ClippedValues(), PaddedStrings(),
]


class TestCommonContract:
    @pytest.mark.parametrize("generator", TABULAR_GENERATORS, ids=lambda g: g.name)
    def test_immutability_and_schema(self, generator, rng):
        frame = make_frame()
        snapshot = frame.copy()
        corrupted, report = generator.corrupt_random(frame, rng)
        assert frame == snapshot
        assert corrupted.schema == frame.schema
        assert len(corrupted) == len(frame)
        assert report.error_name == generator.name

    def test_pool_contains_known_and_extended(self):
        pool = extended_training_pool()
        assert {"missing_values", "outliers", "swapped_values", "scaling"} <= set(pool)
        assert {"category_shift", "duplicate_rows", "shuffled_column"} <= set(pool)


class TestCategoryShift:
    def test_shifts_toward_dominant(self, rng):
        frame = make_frame()
        corrupted = CategoryShift().corrupt(
            frame, rng, columns=["c"], fraction=1.0, dominant="a"
        )
        assert all(v == "a" for v in corrupted["c"])

    def test_dominant_sampled_from_column(self, rng):
        params = CategoryShift().sample_params(make_frame(), rng)
        assert params["dominant"] in {"a", "b", "c"}


class TestDuplicateRows:
    def test_duplicated_rows_exist_elsewhere(self, rng):
        frame = make_frame(100)
        corrupted = DuplicateRows().corrupt(
            frame, rng, columns=frame.schema.names, fraction=0.5
        )
        original_values = set(np.round(frame["x"], 9))
        assert all(round(v, 9) in original_values for v in corrupted["x"])

    def test_increases_duplicate_count(self, rng):
        frame = make_frame(200)
        corrupted = DuplicateRows().corrupt(
            frame, rng, columns=frame.schema.names, fraction=0.6
        )
        unique_before = len(np.unique(frame["x"]))
        unique_after = len(np.unique(corrupted["x"]))
        assert unique_after < unique_before


class TestShuffledColumn:
    def test_marginal_preserved_association_broken(self, rng):
        frame = make_frame(500)
        corrupted = ShuffledColumn().corrupt(frame, rng, columns=["x"], fraction=1.0)
        assert np.allclose(np.sort(corrupted["x"]), np.sort(frame["x"]))
        assert not np.allclose(corrupted["x"], frame["x"])


class TestClippedValues:
    def test_values_clamped_to_band(self, rng):
        frame = make_frame(500)
        corrupted = ClippedValues().corrupt(
            frame, rng, columns=["x"], fraction=1.0, band=25.0
        )
        low = np.percentile(frame["x"], 25)
        high = np.percentile(frame["x"], 75)
        assert corrupted["x"].min() >= low - 1e-9
        assert corrupted["x"].max() <= high + 1e-9


class TestPaddedStrings:
    def test_values_become_unseen_categories(self, rng):
        frame = make_frame()
        corrupted = PaddedStrings().corrupt(frame, rng, columns=["c"], fraction=1.0)
        assert all(v.endswith(" ") for v in corrupted["c"])
        assert all(v.strip() in {"a", "b", "c"} for v in corrupted["c"])


class TestImageGenerators:
    def test_occlusion_blanks_a_box(self, rng):
        frame = make_images()
        corrupted = ImageOcclusion().corrupt(
            frame, rng, columns=["image"], fraction=1.0, box_fraction=0.4
        )
        # Every image must contain a zero region larger than before.
        zeros_before = (frame["image"] == 0).sum()
        zeros_after = (corrupted["image"] == 0).sum()
        assert zeros_after > zeros_before

    def test_contrast_shift_preserves_range(self, rng):
        frame = make_images()
        corrupted = ImageContrastShift().corrupt(
            frame, rng, columns=["image"], fraction=1.0, gamma=2.5
        )
        assert corrupted["image"].min() >= 0.0
        assert corrupted["image"].max() <= 1.0
        assert not np.allclose(corrupted["image"], frame["image"])

    def test_gamma_below_one_brightens(self, rng):
        frame = make_images()
        corrupted = ImageContrastShift().corrupt(
            frame, rng, columns=["image"], fraction=1.0, gamma=0.5
        )
        assert corrupted["image"].mean() > frame["image"].mean()

    def test_invalid_gamma_raises(self, rng):
        with pytest.raises(CorruptionError):
            ImageContrastShift().corrupt(
                make_images(), rng, columns=["image"], fraction=0.5, gamma=-1.0
            )
