"""Property-based tests over the whole error-generator library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.tabular_errors import (
    EncodingErrors,
    GaussianOutliers,
    MissingValues,
    Scaling,
    SignFlip,
    Smearing,
    SwappedValues,
    Typos,
)
from repro.tabular.frame import DataFrame, is_missing
from repro.tabular.schema import ColumnType

GENERATOR_FACTORIES = [
    MissingValues,
    GaussianOutliers,
    SwappedValues,
    Scaling,
    EncodingErrors,
    Typos,
    Smearing,
    SignFlip,
]


def make_frame(n_rows: int, seed: int) -> DataFrame:
    rng = np.random.default_rng(seed)
    return DataFrame.from_dict(
        {
            "a": rng.normal(size=n_rows),
            "b": rng.exponential(size=n_rows),
            "c": rng.choice(["x", "y", "z"], size=n_rows).astype(object),
            "d": rng.choice(["p", "q"], size=n_rows).astype(object),
        },
        {
            "a": ColumnType.NUMERIC,
            "b": ColumnType.NUMERIC,
            "c": ColumnType.CATEGORICAL,
            "d": ColumnType.CATEGORICAL,
        },
    )


@pytest.mark.parametrize("factory", GENERATOR_FACTORIES, ids=lambda f: f.__name__)
class TestGeneratorProperties:
    @settings(max_examples=15, deadline=None)
    @given(n_rows=st.integers(5, 80), seed=st.integers(0, 100), rng_seed=st.integers(0, 100))
    def test_immutability_and_shape(self, factory, n_rows, seed, rng_seed):
        frame = make_frame(n_rows, seed)
        snapshot = frame.copy()
        rng = np.random.default_rng(rng_seed)
        corrupted, report = factory().corrupt_random(frame, rng)
        assert frame == snapshot
        assert len(corrupted) == n_rows
        assert corrupted.schema == frame.schema
        assert report.error_name == factory().name

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 100), rng_seed=st.integers(0, 100))
    def test_determinism_given_rng_seed(self, factory, seed, rng_seed):
        frame = make_frame(40, seed)
        a, _ = factory().corrupt_random(frame, np.random.default_rng(rng_seed))
        b, _ = factory().corrupt_random(frame, np.random.default_rng(rng_seed))
        assert a == b

    @settings(max_examples=10, deadline=None)
    @given(
        fraction=st.floats(0.0, 1.0, allow_nan=False),
        seed=st.integers(0, 50),
    )
    def test_fraction_bounds_cell_changes(self, factory, fraction, seed):
        frame = make_frame(60, seed)
        generator = factory()
        rng = np.random.default_rng(seed)
        params = generator.sample_params(frame, rng)
        params["fraction"] = fraction
        corrupted = generator.corrupt(frame, rng, **params)
        # At most ceil(fraction * n) rows may differ per column.
        budget = int(round(fraction * 60)) + 1
        for name in frame.schema.names:
            before, after = frame[name], corrupted[name]
            if before.dtype == object:
                changed = sum(
                    (x != y) and not (x is None and y is None)
                    for x, y in zip(before, after)
                )
            else:
                changed = int(
                    (~np.isclose(before, after) & ~(np.isnan(before) & np.isnan(after))).sum()
                )
            assert changed <= budget


class TestMissingnessMonotonicity:
    @settings(max_examples=10, deadline=None)
    @given(
        low=st.floats(0.0, 0.4, allow_nan=False),
        high=st.floats(0.6, 1.0, allow_nan=False),
        seed=st.integers(0, 50),
    )
    def test_more_fraction_more_missing(self, low, high, seed):
        frame = make_frame(200, seed)
        generator = MissingValues(columns=["c"])
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        few = generator.corrupt(frame, rng_a, columns=["c"], fraction=low)
        many = generator.corrupt(frame, rng_b, columns=["c"], fraction=high)
        assert is_missing(many["c"]).sum() >= is_missing(few["c"]).sum()
