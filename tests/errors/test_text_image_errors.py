"""Tests for the text and image error generators."""

import numpy as np
import pytest

from repro.errors.image_errors import ImageNoise, ImageRotation
from repro.errors.text_errors import LeetspeakAdversarial, to_leetspeak
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_text_frame(n: int = 50) -> DataFrame:
    texts = np.array([f"hello world number {i}" for i in range(n)], dtype=object)
    return DataFrame.from_dict({"text": texts}, {"text": ColumnType.TEXT})


def make_image_frame(n: int = 30) -> DataFrame:
    rng = np.random.default_rng(0)
    images = np.zeros((n, 16, 16))
    images[:, 4:12, 4:12] = 0.8  # a bright square
    images += rng.normal(scale=0.01, size=images.shape)
    images = np.clip(images, 0, 1)
    return DataFrame.from_dict({"image": images}, {"image": ColumnType.IMAGE})


class TestLeetspeak:
    def test_paper_example(self):
        # The paper's example: "hello world" -> leetspeak.
        assert to_leetspeak("hello world") == "h3110 w0r1d"

    def test_lowercases(self):
        assert to_leetspeak("HELLO") == to_leetspeak("hello")

    def test_corrupts_requested_fraction(self, rng):
        frame = make_text_frame(100)
        generator = LeetspeakAdversarial()
        corrupted = generator.corrupt(frame, rng, columns=["text"], fraction=0.5)
        changed = sum(a != b for a, b in zip(corrupted["text"], frame["text"]))
        assert changed == 50

    def test_preserves_missing(self, rng):
        frame = make_text_frame(10).copy()
        frame.set_values("text", np.array([0]), None)
        corrupted = LeetspeakAdversarial().corrupt(frame, rng, columns=["text"], fraction=1.0)
        assert corrupted["text"][0] is None

    def test_does_not_mutate_input(self, rng):
        frame = make_text_frame()
        snapshot = frame.copy()
        LeetspeakAdversarial().corrupt_random(frame, rng)
        assert frame == snapshot

    def test_only_applicable_to_text(self):
        numeric = DataFrame.from_dict({"x": [1.0]}, {"x": ColumnType.NUMERIC})
        assert LeetspeakAdversarial().applicable_columns(numeric) == []


class TestImageNoise:
    def test_perturbs_pixels_substantially(self, rng):
        frame = make_image_frame()
        corrupted = ImageNoise().corrupt(
            frame, rng, columns=["image"], fraction=1.0, std=0.4
        )
        assert np.abs(corrupted["image"] - frame["image"]).mean() > 0.1

    def test_pixels_stay_in_unit_range(self, rng):
        frame = make_image_frame()
        corrupted = ImageNoise().corrupt(
            frame, rng, columns=["image"], fraction=1.0, std=0.5
        )
        assert corrupted["image"].min() >= 0.0
        assert corrupted["image"].max() <= 1.0

    def test_partial_fraction(self, rng):
        frame = make_image_frame(100)
        corrupted = ImageNoise().corrupt(
            frame, rng, columns=["image"], fraction=0.3, std=0.4
        )
        changed = np.array([
            not np.allclose(a, b) for a, b in zip(corrupted["image"], frame["image"])
        ])
        assert changed.sum() == 30

    def test_std_sampled_in_range(self, rng):
        params = ImageNoise().sample_params(make_image_frame(), rng)
        assert 0.05 <= params["std"] <= 0.5

    def test_does_not_mutate_input(self, rng):
        frame = make_image_frame()
        snapshot = frame.copy()
        ImageNoise().corrupt_random(frame, rng)
        assert frame == snapshot


class TestImageRotation:
    def test_rotates_content(self, rng):
        frame = make_image_frame()
        corrupted = ImageRotation().corrupt(
            frame, rng, columns=["image"], fraction=1.0, max_angle=90.0
        )
        differences = [
            np.abs(a - b).mean() for a, b in zip(corrupted["image"], frame["image"])
        ]
        assert np.mean(differences) > 0.001

    def test_preserves_shape_and_range(self, rng):
        frame = make_image_frame()
        corrupted = ImageRotation().corrupt(
            frame, rng, columns=["image"], fraction=1.0, max_angle=45.0
        )
        assert corrupted["image"].shape == frame["image"].shape
        assert corrupted["image"].min() >= 0.0
        assert corrupted["image"].max() <= 1.0

    def test_zero_fraction_is_identity(self, rng):
        frame = make_image_frame()
        corrupted = ImageRotation().corrupt(
            frame, rng, columns=["image"], fraction=0.0, max_angle=90.0
        )
        assert corrupted == frame

    def test_max_angle_sampled_in_range(self, rng):
        params = ImageRotation().sample_params(make_image_frame(), rng)
        assert 10.0 <= params["max_angle"] <= 180.0
