"""Tests for error mixtures, blending and partial application."""

import numpy as np
import pytest

from repro.errors.mixture import ErrorMixture, PartiallyAppliedError, blend_frames
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_frame(n: int = 300) -> DataFrame:
    rng = np.random.default_rng(0)
    return DataFrame.from_dict(
        {
            "x": rng.normal(size=n),
            "c": rng.choice(["a", "b"], size=n).astype(object),
        },
        {"x": ColumnType.NUMERIC, "c": ColumnType.CATEGORICAL},
    )


class TestErrorMixture:
    def test_fire_prob_one_applies_every_generator(self, rng):
        mixture = ErrorMixture([MissingValues(), Scaling()], fire_prob=1.0)
        _, reports = mixture.corrupt_random(make_frame(), rng)
        assert [r.error_name for r in reports] == ["missing_values", "scaling"]

    def test_fire_prob_zero_passes_through_clean(self, rng):
        mixture = ErrorMixture([MissingValues(), Scaling()], fire_prob=0.0)
        corrupted, reports = mixture.corrupt_random(make_frame(), rng)
        assert reports == []
        assert corrupted == make_frame()

    def test_intermediate_fire_prob_varies(self):
        mixture = ErrorMixture([MissingValues(), Scaling(), GaussianOutliers()], fire_prob=0.5)
        rng = np.random.default_rng(0)
        counts = {len(mixture.corrupt_random(make_frame(), rng)[1]) for _ in range(30)}
        assert len(counts) > 1  # both clean-ish and multi-error episodes occur

    def test_does_not_mutate_input(self, rng):
        frame = make_frame()
        snapshot = frame.copy()
        ErrorMixture([MissingValues(), Scaling()], fire_prob=1.0).corrupt_random(frame, rng)
        assert frame == snapshot

    def test_empty_generator_list_raises(self):
        with pytest.raises(CorruptionError):
            ErrorMixture([])

    def test_invalid_fire_prob_raises(self):
        with pytest.raises(CorruptionError):
            ErrorMixture([MissingValues()], fire_prob=1.5)


class TestBlendFrames:
    def test_fraction_zero_is_clean(self, rng):
        clean = make_frame()
        corrupted, _ = Scaling().corrupt_random(clean, rng)
        blended = blend_frames(clean, corrupted, 0.0, rng)
        assert blended == clean

    def test_fraction_one_is_corrupted(self, rng):
        clean = make_frame()
        corrupted, _ = Scaling().corrupt_random(clean, rng)
        blended = blend_frames(clean, corrupted, 1.0, rng)
        assert blended == corrupted

    def test_intermediate_fraction_mixes_rows(self, rng):
        clean = make_frame(1000)
        corrupted = clean.copy()
        corrupted.set_values("x", np.arange(1000), corrupted["x"] + 100.0)
        blended = blend_frames(clean, corrupted, 0.4, rng)
        from_corrupted = (blended["x"] > 50.0).mean()
        assert from_corrupted == pytest.approx(0.4, abs=0.05)

    def test_row_count_mismatch_raises(self, rng):
        clean = make_frame(10)
        with pytest.raises(CorruptionError):
            blend_frames(clean, make_frame(20), 0.5, rng)

    def test_schema_mismatch_raises(self, rng):
        clean = make_frame()
        with pytest.raises(CorruptionError):
            blend_frames(clean, clean.drop_columns("c"), 0.5, rng)

    def test_invalid_fraction_raises(self, rng):
        clean = make_frame()
        with pytest.raises(CorruptionError):
            blend_frames(clean, clean.copy(), -0.1, rng)


class TestPartiallyAppliedError:
    def test_zero_exposure_never_corrupts(self, rng):
        generator = PartiallyAppliedError(Scaling(), exposure=0.0)
        corrupted, _ = generator.corrupt_random(make_frame(), rng)
        assert corrupted == make_frame()

    def test_full_exposure_equals_inner(self, rng):
        frame = make_frame()
        inner = Scaling()
        params = inner.sample_params(frame, np.random.default_rng(1))
        direct = inner.corrupt(frame, np.random.default_rng(2), **params)
        wrapped = PartiallyAppliedError(inner, exposure=1.0).corrupt(
            frame, np.random.default_rng(2), **params
        )
        assert wrapped == direct

    def test_partial_exposure_damps_corruption(self):
        frame = make_frame(2000)
        inner = MissingValues()
        params = {"columns": ["c"], "fraction": 1.0}
        wrapped = PartiallyAppliedError(inner, exposure=0.25)
        corrupted = wrapped.corrupt(frame, np.random.default_rng(3), **params)
        assert corrupted.missing_fraction("c") == pytest.approx(0.25, abs=0.05)

    def test_invalid_exposure_raises(self):
        with pytest.raises(CorruptionError):
            PartiallyAppliedError(Scaling(), exposure=2.0)

    def test_name_mentions_inner_and_exposure(self):
        generator = PartiallyAppliedError(Scaling(), exposure=0.5)
        assert "scaling" in generator.name and "0.50" in generator.name
