"""Tests for model-entropy based missing values."""

import numpy as np
import pytest

from repro.errors.entropy_errors import ModelEntropyMissingValues
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_frame(n: int = 100) -> DataFrame:
    rng = np.random.default_rng(0)
    return DataFrame.from_dict(
        {
            "x": rng.normal(size=n),
            "c": rng.choice(["a", "b"], size=n).astype(object),
        },
        {"x": ColumnType.NUMERIC, "c": ColumnType.CATEGORICAL},
    )


def certainty_by_row_order(frame: DataFrame) -> np.ndarray:
    """Fake model: row i is predicted with confidence growing in x."""
    x = frame["x"]
    p = 0.5 + 0.5 * (np.argsort(np.argsort(x)) / (len(x) - 1)) * 0.98
    return np.column_stack([p, 1.0 - p])


class TestModelEntropyMissingValues:
    def test_discards_from_most_certain_rows(self, rng):
        frame = make_frame()
        generator = ModelEntropyMissingValues(certainty_by_row_order)
        corrupted = generator.corrupt(frame, rng, columns=["c"], fraction=0.3)
        missing = np.array([v is None for v in corrupted["c"]])
        proba = certainty_by_row_order(frame)
        certainty = proba.max(axis=1)
        # Corrupted rows must be exactly the 30 most certain ones.
        assert missing.sum() == 30
        assert certainty[missing].min() >= certainty[~missing].max()

    def test_numeric_columns_get_nan(self, rng):
        frame = make_frame()
        generator = ModelEntropyMissingValues(certainty_by_row_order)
        corrupted = generator.corrupt(frame, rng, columns=["x"], fraction=0.2)
        assert corrupted.missing_fraction("x") == pytest.approx(0.2)

    def test_full_fraction_blanks_everything(self, rng):
        frame = make_frame()
        generator = ModelEntropyMissingValues(certainty_by_row_order)
        corrupted = generator.corrupt(frame, rng, columns=["c"], fraction=1.0)
        assert corrupted.missing_fraction("c") == 1.0

    def test_does_not_mutate_input(self, rng):
        frame = make_frame()
        snapshot = frame.copy()
        ModelEntropyMissingValues(certainty_by_row_order).corrupt_random(frame, rng)
        assert frame == snapshot

    def test_bad_predict_proba_shape_raises(self, rng):
        generator = ModelEntropyMissingValues(lambda frame: np.zeros(len(frame)))
        with pytest.raises(CorruptionError):
            generator.corrupt(make_frame(), rng, columns=["c"], fraction=0.5)

    def test_invalid_fraction_raises(self, rng):
        generator = ModelEntropyMissingValues(certainty_by_row_order)
        with pytest.raises(CorruptionError):
            generator.corrupt(make_frame(), rng, columns=["c"], fraction=-0.5)

    def test_works_against_real_blackbox(self, income_blackbox, income_splits, rng):
        generator = ModelEntropyMissingValues(income_blackbox.predict_proba)
        corrupted, report = generator.corrupt_random(income_splits.serving, rng)
        assert len(corrupted) == len(income_splits.serving)
        assert report.error_name == "entropy_missing_values"
