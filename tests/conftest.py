"""Shared fixtures: small datasets and trained pipelines.

Expensive artifacts (dataset splits, fitted black boxes) are session-scoped
so the suite stays fast while many tests can exercise realistic objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.blackbox import BlackBoxModel
from repro.evaluation.harness import ExperimentSplits, prepare_splits
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def small_frame() -> DataFrame:
    """A tiny mixed-type frame with known values, including missing cells."""
    return DataFrame.from_dict(
        {
            "age": [20.0, 30.0, 40.0, np.nan, 60.0, 25.0],
            "income": [1000.0, 2000.0, 1500.0, 3000.0, 1200.0, 2500.0],
            "city": ["berlin", "paris", None, "berlin", "rome", "paris"],
            "note": ["hello world", "lorem ipsum", "hello again", None, "more text", "hi"],
        },
        {
            "age": ColumnType.NUMERIC,
            "income": ColumnType.NUMERIC,
            "city": ColumnType.CATEGORICAL,
            "note": ColumnType.TEXT,
        },
    )


@pytest.fixture(scope="session")
def income_splits() -> ExperimentSplits:
    return prepare_splits("income", n_rows=1500, seed=0)


@pytest.fixture(scope="session")
def income_blackbox(income_splits: ExperimentSplits) -> BlackBoxModel:
    pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=10, random_state=0))
    pipeline.fit(income_splits.train, income_splits.y_train)
    return BlackBoxModel.wrap(pipeline)


@pytest.fixture(scope="session")
def binary_matrix_problem() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """A linearly separable-with-noise binary problem as raw matrices."""
    rng = np.random.default_rng(42)
    X = rng.normal(size=(500, 8))
    weights = rng.normal(size=8)
    y = (X @ weights + 0.5 * rng.normal(size=500) > 0).astype(int)
    return X[:350], y[:350], X[350:], y[350:]
