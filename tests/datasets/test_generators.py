"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.base import Dataset, dataset_names, load_dataset
from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType

TABULAR = ("income", "heart", "bank")
ALL = ("income", "heart", "bank", "tweets", "digits", "fashion")


class TestRegistry:
    def test_all_six_datasets_registered(self):
        assert set(ALL) <= set(dataset_names())

    def test_unknown_name_raises(self):
        with pytest.raises(DataValidationError):
            load_dataset("mnist-full")

    def test_too_few_rows_raises(self):
        with pytest.raises(DataValidationError):
            load_dataset("income", n_rows=5)

    def test_dataset_rejects_misaligned_labels(self):
        frame = DataFrame.from_dict({"x": [1.0, 2.0]}, {"x": ColumnType.NUMERIC})
        with pytest.raises(DataValidationError):
            Dataset(
                name="bad", frame=frame, labels=np.array(["a"]),
                task="tabular", description="",
            )


@pytest.mark.parametrize("name", ALL)
class TestEveryDataset:
    def test_row_count_and_alignment(self, name):
        dataset = load_dataset(name, n_rows=200, seed=0)
        assert dataset.n_rows == 200
        assert len(dataset.labels) == 200

    def test_binary_labels(self, name):
        dataset = load_dataset(name, n_rows=200, seed=0)
        assert len(dataset.classes) == 2

    def test_roughly_balanced(self, name):
        dataset = load_dataset(name, n_rows=1000, seed=0)
        _, counts = np.unique(dataset.labels, return_counts=True)
        assert counts.min() / counts.max() > 0.4

    def test_reproducible_given_seed(self, name):
        a = load_dataset(name, n_rows=100, seed=7)
        b = load_dataset(name, n_rows=100, seed=7)
        assert a.frame == b.frame
        assert np.array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self, name):
        a = load_dataset(name, n_rows=100, seed=1)
        b = load_dataset(name, n_rows=100, seed=2)
        assert a.frame != b.frame

    def test_positive_label_is_a_class(self, name):
        dataset = load_dataset(name, n_rows=100, seed=0)
        assert dataset.positive_label in set(dataset.classes)


@pytest.mark.parametrize("name", TABULAR)
class TestTabularDatasets:
    def test_has_numeric_and_categorical_columns(self, name):
        dataset = load_dataset(name, n_rows=200, seed=0)
        assert len(dataset.frame.numeric_columns) >= 2
        assert len(dataset.frame.categorical_columns) >= 2

    def test_no_missing_values_in_clean_data(self, name):
        dataset = load_dataset(name, n_rows=200, seed=0)
        for column in dataset.frame.schema.names:
            assert dataset.frame.missing_fraction(column) == 0.0

    def test_attributes_carry_signal(self, name):
        # A numeric column should differ between classes (t-statistic-ish).
        dataset = load_dataset(name, n_rows=2000, seed=0)
        classes = dataset.classes
        signal_found = False
        for column in dataset.frame.numeric_columns:
            values = dataset.frame[column]
            mean_a = values[dataset.labels == classes[0]].mean()
            mean_b = values[dataset.labels == classes[1]].mean()
            pooled_std = values.std() + 1e-12
            if abs(mean_a - mean_b) / pooled_std > 0.2:
                signal_found = True
        assert signal_found

    def test_income_has_negative_correlated_column(self, name):
        # Mixed-sign feature-label correlations are required for the
        # validation experiments (see DESIGN.md).
        dataset = load_dataset(name, n_rows=2000, seed=0)
        classes = sorted(dataset.classes)
        label01 = (dataset.labels == dataset.positive_label).astype(float)
        correlations = [
            np.corrcoef(dataset.frame[c], label01)[0, 1]
            for c in dataset.frame.numeric_columns
        ]
        assert min(correlations) < -0.05
        assert max(correlations) > 0.05


class TestTweets:
    def test_text_column_only(self):
        dataset = load_dataset("tweets", n_rows=100, seed=0)
        assert dataset.frame.text_columns == ["text"]
        assert dataset.task == "text"

    def test_troll_vocabulary_appears_in_troll_tweets(self):
        dataset = load_dataset("tweets", n_rows=500, seed=0)
        trolls = dataset.frame["text"][dataset.labels == "troll"]
        insults = sum("idiot" in t or "loser" in t or "stupid" in t for t in trolls)
        assert insults > 0

    def test_texts_are_nonempty_strings(self):
        dataset = load_dataset("tweets", n_rows=100, seed=0)
        assert all(isinstance(t, str) and t for t in dataset.frame["text"])


class TestImages:
    @pytest.mark.parametrize("name", ["digits", "fashion"])
    def test_image_shape_and_range(self, name):
        dataset = load_dataset(name, n_rows=50, seed=0)
        images = dataset.frame["image"]
        assert images.shape == (50, 28, 28)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert dataset.task == "image"

    @pytest.mark.parametrize("name", ["digits", "fashion"])
    def test_images_are_not_blank(self, name):
        dataset = load_dataset(name, n_rows=20, seed=0)
        for image in dataset.frame["image"]:
            assert image.std() > 0.05

    def test_classes_are_visually_distinct(self):
        # Mean images of the two classes must differ substantially.
        dataset = load_dataset("digits", n_rows=300, seed=0)
        images = dataset.frame["image"]
        classes = dataset.classes
        mean_a = images[dataset.labels == classes[0]].mean(axis=0)
        mean_b = images[dataset.labels == classes[1]].mean(axis=0)
        assert np.abs(mean_a - mean_b).max() > 0.2
