"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "income.npz"
    code = main(["generate", "--dataset", "income", "--rows", "1200", "--out", str(path)])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def artifact_dir(tmp_path_factory, dataset_file):
    out = tmp_path_factory.mktemp("cli") / "deployed"
    code = main([
        "train", "--data", str(dataset_file), "--model", "lr",
        "--meta-samples", "30", "--out", str(out),
    ])
    assert code == 0
    return out


class TestDatasetsCommand:
    def test_lists_all_generators(self, capsys):
        assert main(["datasets"]) == 0
        output = capsys.readouterr().out
        for name in ("income", "heart", "bank", "tweets", "digits", "fashion"):
            assert name in output


class TestGenerateCommand:
    def test_writes_loadable_dataset(self, dataset_file):
        from repro.persistence import load_dataset_file

        dataset = load_dataset_file(dataset_file)
        assert dataset.name == "income"
        assert dataset.n_rows == 1200


class TestTrainCommand:
    def test_writes_three_artifacts(self, artifact_dir):
        assert (artifact_dir / "model.npz").exists()
        assert (artifact_dir / "predictor.npz").exists()
        info = json.loads((artifact_dir / "info.json").read_text())
        assert info["model"] == "lr"
        assert 0.5 < info["test_score"] <= 1.0
        assert "scaling" in info["error_generators"]


class TestCheckCommand:
    def test_clean_batch_exits_zero(self, artifact_dir, dataset_file, capsys):
        code = main([
            "check", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--threshold", "0.1",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "[ok]" in output

    def test_corrupted_batch_exits_one(self, artifact_dir, dataset_file, capsys):
        code = main([
            "check", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--corrupt", "scaling", "--seed", "1",
        ])
        output = capsys.readouterr().out
        assert "applied scaling" in output
        # Random magnitudes: the alarm fires for most draws; accept either
        # exit code but require the report line to be present.
        assert code in (0, 1)
        assert "estimated=" in output

    def test_unknown_corruption_is_an_error(self, artifact_dir, dataset_file, capsys):
        code = main([
            "check", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--corrupt", "gamma-rays",
        ])
        assert code == 2
        assert "unknown corruption" in capsys.readouterr().err


class TestMonitorCommand:
    def test_healthy_stream_exits_zero(self, artifact_dir, dataset_file, capsys):
        code = main([
            "monitor", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--batches", "3", "--threshold", "0.15",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "BatchMonitor:" in output

    def test_injected_bug_exits_one(self, artifact_dir, dataset_file, capsys):
        code = main([
            "monitor", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--batches", "5", "--break-after", "1",
        ])
        output = capsys.readouterr().out
        assert code == 1
        assert "SUSTAINED" in output


@pytest.fixture(scope="module")
def serving_config(tmp_path_factory, artifact_dir):
    path = tmp_path_factory.mktemp("cli") / "serving.json"
    path.write_text(json.dumps({
        "endpoints": [{
            "name": "income", "version": "1", "artifacts": str(artifact_dir),
            "policy": {"threshold": 0.05, "patience": 2},
        }]
    }))
    return path


class TestEndpointsCommand:
    def test_lists_configured_endpoints(self, serving_config, capsys):
        assert main(["endpoints", "--config", str(serving_config)]) == 0
        output = capsys.readouterr().out
        assert "income@1" in output
        assert "expected score" in output
        assert "PerformancePredictor" in output

    def test_missing_config_is_an_error(self, tmp_path, capsys):
        code = main(["endpoints", "--config", str(tmp_path / "nope.json")])
        assert code == 2
        assert "no serving config" in capsys.readouterr().err


class TestServeBatchCommand:
    def test_clean_replay_exits_zero_with_metrics(
        self, serving_config, dataset_file, capsys
    ):
        code = main([
            "serve-batch", "--config", str(serving_config), "--endpoint", "income",
            "--data", str(dataset_file), "--batches", "3", "--metrics", "prometheus",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert 'serving_requests_total{endpoint="income@1"} 3' in output
        assert "ValidationService: 1 endpoint(s)" in output

    def test_injected_bug_alarms_and_exits_one(
        self, serving_config, dataset_file, tmp_path, capsys
    ):
        alerts = tmp_path / "alerts.jsonl"
        code = main([
            "serve-batch", "--config", str(serving_config), "--endpoint", "income",
            "--data", str(dataset_file), "--batches", "5", "--break-after", "1",
            "--metrics", "json", "--alerts-out", str(alerts),
        ])
        output = capsys.readouterr().out
        assert code == 1
        assert "SUSTAINED" in output
        events = [json.loads(line) for line in alerts.read_text().splitlines()]
        assert len(events) >= 2
        assert {event["severity"] for event in events} >= {"alarm", "sustained"}

    def test_batch_dir_replay(self, serving_config, dataset_file, tmp_path, capsys):
        from repro import persistence

        dataset = persistence.load_dataset_file(dataset_file)
        batch_dir = tmp_path / "batches"
        batch_dir.mkdir()
        for index in range(2):
            rows = range(index * 100, (index + 1) * 100)
            persistence.save_frame(
                dataset.frame.select_rows(list(rows)), batch_dir / f"b{index}.npz"
            )
        code = main([
            "serve-batch", "--config", str(serving_config), "--endpoint", "income",
            "--batch-dir", str(batch_dir), "--metrics", "none",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "b0.npz" in output and "b1.npz" in output

    def test_empty_batch_dir_is_an_error(self, serving_config, tmp_path, capsys):
        code = main([
            "serve-batch", "--config", str(serving_config), "--endpoint", "income",
            "--batch-dir", str(tmp_path / "empty"),
        ])
        assert code == 2
        assert "no .npz batch files" in capsys.readouterr().err


class TestReplayCommand:
    def _replay(self, serving_config, dataset_file, *extra):
        return main([
            "replay", "--config", str(serving_config), "--endpoint", "income",
            "--data", str(dataset_file), "--batches", "8", "--batch-size", "60",
            "--onset", "3", *extra,
        ])

    def test_builtin_families_report_detection_metrics(
        self, serving_config, dataset_file, capsys
    ):
        code = self._replay(
            serving_config, dataset_file, "--families", "gradual,sudden", "--json",
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["complete"] is True
        assert payload["n_scored"] == 16
        assert set(payload["scenarios"]) == {"gradual", "sudden"}
        for entry in payload["scenarios"].values():
            assert entry["onset"] == 3
            assert entry["pre_onset_batches"] == 3

    def test_replay_is_deterministic_per_seed(
        self, serving_config, dataset_file, capsys
    ):
        digests = []
        for _ in range(2):
            code = self._replay(
                serving_config, dataset_file, "--families", "gradual", "--json",
            )
            assert code == 0
            digests.append(json.loads(capsys.readouterr().out)["digest"])
        assert digests[0] == digests[1]

    def test_scenario_file_with_unmet_expectation_exits_three(
        self, serving_config, dataset_file, tmp_path, capsys
    ):
        # Sub-detection drift (2% missing cells) has an onset but never
        # sustains an alarm, so a detection-window expectation fails.
        scenario = {
            "name": "lowdrift", "n_batches": 6, "batch_size": 60,
            "events": [{
                "error": "missing_values",
                "schedule": {"kind": "constant", "level": 0.02},
            }],
        }
        path = tmp_path / "lowdrift.json"
        path.write_text(json.dumps(scenario))
        code = self._replay(
            serving_config, dataset_file,
            "--scenario", str(path), "--expect-detection-within", "2",
        )
        captured = capsys.readouterr()
        assert code == 3
        assert "expectation failed" in captured.err
        assert "lowdrift" in captured.err

    def test_text_report_describes_each_scenario(
        self, serving_config, dataset_file, capsys
    ):
        code = self._replay(serving_config, dataset_file, "--families", "adversarial")
        assert code == 0
        output = capsys.readouterr().out
        assert "Replay: 8 batch(es)" in output
        assert "adversarial" in output
        assert "onset @3" in output


class TestParallelArguments:
    def test_train_defaults_to_serial(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["train", "--data", "d.npz", "--out", "out"]
        )
        assert args.n_jobs == 1
        assert args.parallel_backend == "auto"

    def test_train_accepts_n_jobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "train", "--data", "d.npz", "--out", "out",
            "--n-jobs", "4", "--parallel-backend", "thread",
        ])
        assert args.n_jobs == 4
        assert args.parallel_backend == "thread"

    def test_train_accepts_tree_method(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "train", "--data", "d.npz", "--out", "out", "--tree-method", "hist",
        ])
        assert args.tree_method == "hist"

    def test_train_rejects_unknown_tree_method(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args([
                "train", "--data", "d.npz", "--out", "out",
                "--tree-method", "approx",
            ])


class TestTraceCommand:
    def test_train_and_bench_accept_trace_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "train", "--data", "d.npz", "--out", "out",
            "--trace", "--trace-out", "spans.json",
        ])
        assert args.trace is True
        assert args.trace_out == "spans.json"
        args = build_parser().parse_args(["bench", "--smoke", "--trace"])
        assert args.trace is True
        assert args.trace_out is None

    def test_trace_without_command_is_an_error(self, capsys):
        assert main(["trace"]) == 2
        assert "trace needs a command" in capsys.readouterr().err

    def test_trace_cannot_nest(self, capsys):
        assert main(["trace", "trace", "datasets"]) == 2
        assert "cannot nest" in capsys.readouterr().err

    def test_trace_wraps_check_and_exports_json(
        self, artifact_dir, dataset_file, tmp_path, capsys
    ):
        from repro.obs import check_well_nested, spans_from_json

        trace_out = tmp_path / "spans.json"
        code = main([
            "trace", "--trace-out", str(trace_out),
            "check", "--artifacts", str(artifact_dir), "--data", str(dataset_file),
            "--threshold", "0.1",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "trace:" in output
        assert "predictor.estimate" in output
        spans = spans_from_json(trace_out.read_text())
        assert spans
        assert check_well_nested(spans) == []

    def test_train_trace_flag_prints_span_tree(
        self, dataset_file, tmp_path, capsys
    ):
        code = main([
            "train", "--data", str(dataset_file), "--model", "lr",
            "--meta-samples", "10", "--out", str(tmp_path / "deployed"),
            "--trace",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "trace:" in output
        assert "corruption.sample" in output
        assert "predictor.fit" in output


class TestBenchCommand:
    def test_bench_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--smoke"])
        assert args.n_jobs == 4
        assert args.smoke is True
        assert args.out == "BENCH_PR10.json"
        assert args.baseline is None

    def test_smoke_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--smoke", "--out", str(out),
            "--n-jobs", "2", "--parallel-backend", "thread",
        ])
        output = capsys.readouterr().out
        assert code == 0
        assert "report written to" in output
        report = json.loads(out.read_text())
        assert report["all_identical"] is True
        assert report["quality_parity"] is True
        assert report["profile"] == "smoke"
        assert len(report["benchmarks"]) == 11
        assert report["fused_kernel_identical"] is True
        assert report["fused_kernel_not_slower"] is True
        assert report["registry_fleet_identical"] is True
        assert report["registry_fleet_memory_ok"] is True
        assert report["drift_replay_identical"] is True
        assert report["drift_replay_diversity_ok"] is True
        names = [bench["name"] for bench in report["benchmarks"]]
        assert "serving_score_fused_vs_reference" in names
        assert "daemon_throughput" in names
        assert "registry_fleet" in names
        assert "drift_replay" in names
