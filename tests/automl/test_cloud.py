"""Tests for the emulated cloud model service."""

import numpy as np
import pytest

from repro.automl.cloud import CloudModelService
from repro.exceptions import ServiceError
from repro.ml.metrics import accuracy_score


@pytest.fixture(scope="module")
def service_and_model(income_splits):
    service = CloudModelService(random_state=0)
    model_id = service.train(income_splits.train, income_splits.y_train)
    return service, model_id


class TestTraining:
    def test_returns_opaque_model_id(self, service_and_model):
        _, model_id = service_and_model
        assert model_id.startswith("automl-tables-")

    def test_too_few_rows_rejected(self, income_splits):
        service = CloudModelService()
        tiny = income_splits.train.select_rows(np.arange(5))
        with pytest.raises(ServiceError):
            service.train(tiny, income_splits.y_train[:5])

    def test_misaligned_labels_rejected(self, income_splits):
        service = CloudModelService()
        with pytest.raises(ServiceError):
            service.train(income_splits.train, income_splits.y_train[:-1])


class TestPrediction:
    def test_predictions_are_probabilities(self, service_and_model, income_splits):
        service, model_id = service_and_model
        proba = service.predict(model_id, income_splits.test)
        assert proba.shape == (len(income_splits.test), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_model_is_accurate(self, service_and_model, income_splits):
        service, model_id = service_and_model
        classes = service.classes(model_id)
        proba = service.predict(model_id, income_splits.test)
        predictions = classes[np.argmax(proba, axis=1)]
        assert accuracy_score(income_splits.y_test, predictions) > 0.7

    def test_unknown_model_id_rejected(self, service_and_model, income_splits):
        service, _ = service_and_model
        with pytest.raises(ServiceError):
            service.predict("automl-tables-bogus", income_splits.test)

    def test_schema_mismatch_rejected(self, service_and_model, income_splits):
        service, model_id = service_and_model
        wrong = income_splits.test.drop_columns(income_splits.test.categorical_columns[0])
        with pytest.raises(ServiceError):
            service.predict(model_id, wrong)

    def test_usage_metering(self, income_splits):
        service = CloudModelService(random_state=0)
        model_id = service.train(income_splits.train, income_splits.y_train)
        service.predict(model_id, income_splits.test)
        service.predict(model_id, income_splits.test)
        assert service.usage.train_requests == 1
        assert service.usage.predict_requests == 2
        assert service.usage.rows_predicted == 2 * len(income_splits.test)


class TestBlackBoxAdapter:
    def test_as_blackbox_round_trip(self, service_and_model, income_splits):
        service, model_id = service_and_model
        blackbox = service.as_blackbox(model_id)
        score = blackbox.score(income_splits.test, income_splits.y_test)
        assert 0.6 < score <= 1.0

    def test_internals_not_exposed_via_public_api(self, service_and_model):
        service, _ = service_and_model
        public = [name for name in dir(service) if not name.startswith("_")]
        assert set(public) <= {
            "train", "predict", "classes", "as_blackbox", "usage", "random_state"
        }
