"""Tests for the AutoML search."""

import numpy as np
import pytest

from repro.automl.search import PRESETS, AutoMLSearch
from repro.core.blackbox import BlackBoxModel
from repro.exceptions import DataValidationError
from repro.ml.metrics import accuracy_score


class TestAutoMLSearchTabular:
    @pytest.fixture(scope="class")
    def search(self, income_splits):
        return AutoMLSearch(preset="auto-sklearn", n_candidates=4, random_state=0).fit(
            income_splits.train, income_splits.y_train
        )

    def test_produces_working_model(self, search, income_splits):
        accuracy = accuracy_score(income_splits.y_test, search.predict(income_splits.test))
        assert accuracy > 0.65

    def test_evaluates_requested_candidates(self, search):
        assert len(search.candidates_) == 4
        assert all(0.0 <= c.score <= 1.0 for c in search.candidates_)

    def test_best_score_is_max_candidate_score(self, search):
        assert search.best_score_ == max(c.score for c in search.candidates_)

    def test_wrappable_as_blackbox(self, search, income_splits):
        blackbox = BlackBoxModel.wrap(search)
        proba = blackbox.predict_proba(income_splits.test)
        assert proba.shape == (len(income_splits.test), 2)

    def test_predict_proba_rows_sum_to_one(self, search, income_splits):
        proba = search.predict_proba(income_splits.test)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestPresets:
    def test_all_presets_listed(self):
        assert set(PRESETS) == {"auto-sklearn", "tpot", "auto-keras", "large-convnet"}

    def test_unknown_preset_raises(self):
        with pytest.raises(DataValidationError):
            AutoMLSearch(preset="h2o")

    def test_zero_candidates_raises(self):
        with pytest.raises(DataValidationError):
            AutoMLSearch(n_candidates=0)

    def test_tpot_mutation_path(self, income_splits):
        search = AutoMLSearch(preset="tpot", n_candidates=4, random_state=1).fit(
            income_splits.train, income_splits.y_train
        )
        assert len(search.candidates_) == 4
        assert accuracy_score(
            income_splits.y_test, search.predict(income_splits.test)
        ) > 0.6

    def test_search_is_deterministic_given_seed(self, income_splits):
        a = AutoMLSearch(n_candidates=2, random_state=5).fit(
            income_splits.train, income_splits.y_train
        )
        b = AutoMLSearch(n_candidates=2, random_state=5).fit(
            income_splits.train, income_splits.y_train
        )
        assert a.best_description_ == b.best_description_
        assert a.best_score_ == b.best_score_
