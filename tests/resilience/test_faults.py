"""The fault-injection harness itself must be deterministic."""

import pytest

from repro.exceptions import DataValidationError, ReproError
from repro.resilience import (
    ALL_CALLS,
    FakeClock,
    FaultyCallable,
    InjectedFault,
    WorkerCrash,
    failing,
    wrap_method,
)


class TestFakeClock:
    def test_sleep_advances_time_and_records(self):
        clock = FakeClock(start=100.0)
        clock.sleep(2.5)
        clock.sleep(0.5)
        assert clock() == 103.0
        assert clock.sleeps == [2.5, 0.5]

    def test_cannot_rewind(self):
        with pytest.raises(DataValidationError):
            FakeClock().advance(-1.0)


class TestFaultyCallable:
    def test_int_schedule_fails_first_n_calls(self):
        faulty = FaultyCallable(lambda: "ok", fail_on=2)
        with pytest.raises(InjectedFault):
            faulty()
        with pytest.raises(InjectedFault):
            faulty()
        assert faulty() == "ok"
        assert (faulty.calls, faulty.faults_raised) == (3, 2)

    def test_index_schedule_fails_exact_calls(self):
        faulty = FaultyCallable(lambda x: x, fail_on=[1])
        assert faulty(10) == 10
        with pytest.raises(InjectedFault, match="call 1"):
            faulty(11)
        assert faulty(12) == 12

    def test_all_calls_sentinel(self):
        faulty = failing(lambda: "never", times=-1)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                faulty()

    def test_custom_error_factory(self):
        faulty = FaultyCallable(lambda: 1, fail_on=1, error=lambda: KeyError("custom"))
        with pytest.raises(KeyError):
            faulty()

    def test_injected_fault_is_not_a_repro_error(self):
        # The resilience layer must survive arbitrary third-party
        # exceptions, so the injected one must not be special-cased.
        assert not issubclass(InjectedFault, ReproError)
        assert issubclass(WorkerCrash, BaseException)
        assert not issubclass(WorkerCrash, Exception)

    def test_scheduled_delay_uses_injected_sleep(self):
        clock = FakeClock()
        faulty = FaultyCallable(
            lambda: "slow", delay_on=[0], delay_seconds=9.0, sleep=clock.sleep
        )
        assert faulty() == "slow"
        assert faulty() == "slow"
        assert clock.sleeps == [9.0]

    def test_delay_without_sleep_is_rejected(self):
        with pytest.raises(DataValidationError):
            FaultyCallable(lambda: 1, delay_on=[0], delay_seconds=1.0)


class TestWrapMethod:
    def test_patches_bound_method_in_place(self):
        class Scorer:
            def score(self, x):
                return x * 2

        scorer = Scorer()
        faulty = wrap_method(scorer, "score", fail_on=1)
        with pytest.raises(InjectedFault):
            scorer.score(5)
        assert scorer.score(5) == 10
        assert faulty.calls == 2

    def test_rejects_non_callable_attribute(self):
        class Holder:
            value = 3

        with pytest.raises(DataValidationError):
            wrap_method(Holder(), "value", fail_on=ALL_CALLS)
