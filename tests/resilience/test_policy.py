"""Retry / deadline / breaker primitives: deterministic, no real sleeps."""

import pytest

from repro.exceptions import (
    CircuitOpenError,
    DataValidationError,
    DeadlineExceededError,
    ReproError,
    ResilienceError,
    RetryExhaustedError,
)
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FakeClock,
    RetryPolicy,
    Timeout,
)


class TestRetryPolicy:
    def test_success_on_first_attempt_never_sleeps(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=3, backoff=0.5, sleep=clock.sleep)
        assert policy.call(lambda: 42) == 42
        assert clock.sleeps == []

    def test_retries_until_success(self):
        clock = FakeClock()
        policy = RetryPolicy(max_retries=3, backoff=0.1, sleep=clock.sleep)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ValueError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(calls) == 3
        assert clock.sleeps == [0.1, 0.2]  # backoff * 2**(k-1)

    def test_exhaustion_raises_with_attempt_count_and_cause(self):
        policy = RetryPolicy(max_retries=2, backoff=0.0, sleep=lambda _: None)

        def always_fails():
            raise ValueError("permanent")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always_fails)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, ValueError)
        assert isinstance(excinfo.value, ReproError)

    def test_non_retryable_error_propagates_immediately(self):
        calls = []
        policy = RetryPolicy(
            max_retries=5, backoff=0.0, retry_on=(ValueError,),
            sleep=lambda _: None,
        )

        def wrong_kind():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            policy.call(wrong_kind)
        assert len(calls) == 1

    def test_on_retry_hook_fires_per_failed_attempt(self):
        seen = []
        policy = RetryPolicy(max_retries=2, backoff=0.0, sleep=lambda _: None)

        def always_fails():
            raise ValueError("x")

        with pytest.raises(RetryExhaustedError):
            policy.call(always_fails, on_retry=lambda k, e: seen.append(k))
        assert seen == [1, 2]  # no hook after the final attempt

    def test_max_backoff_caps_delay(self):
        policy = RetryPolicy(
            max_retries=5, backoff=1.0, max_backoff=2.0, sleep=lambda _: None
        )
        assert [policy.delay(k) for k in range(1, 5)] == [1.0, 2.0, 2.0, 2.0]

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(backoff=1.0, jitter=0.5, seed=7, sleep=lambda _: None)
        b = RetryPolicy(backoff=1.0, jitter=0.5, seed=7, sleep=lambda _: None)
        delays_a = [a.delay(k) for k in range(1, 4)]
        delays_b = [b.delay(k) for k in range(1, 4)]
        assert delays_a == delays_b
        assert delays_a != [1.0, 2.0, 4.0]  # jitter actually perturbs

    def test_rejects_bad_parameters(self):
        with pytest.raises(DataValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(DataValidationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(DataValidationError):
            RetryPolicy(multiplier=0.5)


class TestDeadline:
    def test_no_deadline_never_expires(self):
        deadline = Deadline(None, clock=FakeClock())
        assert deadline.remaining() == float("inf")
        deadline.check()  # never raises

    def test_expires_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        assert not deadline.expired()
        clock.advance(5.0)
        assert deadline.expired()
        with pytest.raises(DeadlineExceededError, match="5.0s deadline"):
            deadline.check()

    def test_timeout_discards_overdue_result(self):
        clock = FakeClock()

        def slow():
            clock.advance(10.0)
            return "too late"

        with pytest.raises(DeadlineExceededError):
            Timeout(1.0, clock=clock).run(slow)

    def test_timeout_returns_punctual_result(self):
        assert Timeout(1.0, clock=FakeClock()).run(lambda: "fine") == "fine"


class TestCircuitBreaker:
    def make(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("window", 5)
        kwargs.setdefault("cooldown_seconds", 30.0)
        return CircuitBreaker(clock=clock, **kwargs)

    def test_opens_at_failure_threshold(self):
        breaker = self.make(FakeClock())
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_successes_age_failures_out_of_the_window(self):
        breaker = self.make(FakeClock())
        # 2 failures then 5 successes push the failures out of the window.
        breaker.record_failure()
        breaker.record_failure()
        for _ in range(5):
            breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_half_open_close_cycle(self):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=2, window=4, cooldown_seconds=10.0, clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)
        assert breaker.state == "open"
        clock.advance(1.0)
        assert breaker.state == "half_open"
        assert breaker.allow()  # reserves the probe slot
        assert not breaker.allow()  # only one probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert transitions == [
            ("closed", "open"), ("open", "half_open"), ("half_open", "closed"),
        ]

    def test_half_open_failure_reopens_and_restarts_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=1, cooldown_seconds=10.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half_open"
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.0)
        assert breaker.state == "open"  # cooldown restarted
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_call_sheds_load_while_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=1, cooldown_seconds=5.0, clock=clock
        )
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.call(lambda: "never runs")
        assert isinstance(excinfo.value, ResilienceError)

    def test_closing_clears_the_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, window=4, cooldown_seconds=1.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(1.0)
        breaker.allow()
        breaker.record_success()  # closes; old failures must not linger
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_success_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=3, cooldown_seconds=5.0, clock=clock
        )
        breaker.record_failure()
        breaker.record_success()  # straggler from a racing retry loop
        assert breaker.state == "open"

    def test_rejects_bad_parameters(self):
        with pytest.raises(DataValidationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(DataValidationError):
            CircuitBreaker(failure_threshold=5, window=3)
        with pytest.raises(DataValidationError):
            CircuitBreaker(cooldown_seconds=0.0)
        with pytest.raises(DataValidationError):
            CircuitBreaker(half_open_successes=2, half_open_max_calls=1)
