"""Checkpoint store: atomic, fingerprinted, resumable."""

import numpy as np
import pytest

from repro.exceptions import CheckpointError, DataValidationError
from repro.resilience import CheckpointStore


FINGERPRINT = {"kind": "test", "n": 4, "seed": 123}


class TestRoundTrip:
    def test_load_without_file_returns_empty(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        assert store.load(FINGERPRINT) == {}
        assert not store.exists()

    def test_save_load_round_trip_preserves_objects(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt.npz")
        results = {
            0: {"score": 0.9, "proba": np.arange(6.0).reshape(3, 2)},
            2: ("tuple", 7),
        }
        store.save(FINGERPRINT, results)
        loaded = store.load(FINGERPRINT)
        assert set(loaded) == {0, 2}
        assert loaded[2] == ("tuple", 7)
        np.testing.assert_array_equal(
            loaded[0]["proba"], results[0]["proba"]
        )

    def test_suffixless_path_is_normalized(self, tmp_path):
        store = CheckpointStore(tmp_path / "meta-run")
        store.save(FINGERPRINT, {0: "x"})
        assert store.path.suffix == ".npz"
        assert CheckpointStore(tmp_path / "meta-run.npz").load(FINGERPRINT) == {0: "x"}

    def test_clear_removes_the_file(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save(FINGERPRINT, {0: 1})
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent


class TestSafety:
    def test_fingerprint_mismatch_fails_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save(FINGERPRINT, {0: 1})
        with pytest.raises(CheckpointError, match="different run"):
            store.load({**FINGERPRINT, "seed": 999})

    def test_corrupt_file_fails_loudly(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_bytes(b"not an npz file")
        with pytest.raises(CheckpointError, match="not a readable checkpoint"):
            store.load(FINGERPRINT)

    def test_empty_results_are_rejected(self, tmp_path):
        with pytest.raises(DataValidationError):
            CheckpointStore(tmp_path / "ckpt").save(FINGERPRINT, {})

    def test_unserializable_fingerprint_is_rejected(self, tmp_path):
        with pytest.raises(DataValidationError, match="JSON-serializable"):
            CheckpointStore(tmp_path / "ckpt").save({"fn": object()}, {0: 1})

    def test_save_leaves_no_temp_file_behind(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save(FINGERPRINT, {0: 1})
        store.save(FINGERPRINT, {0: 1, 1: 2})  # overwrite via os.replace
        leftovers = [p.name for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []
        assert set(store.load(FINGERPRINT)) == {0, 1}
