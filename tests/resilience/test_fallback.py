"""Degraded-mode scoring chain, tested with stub layers and a fake clock."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, ResilienceError
from repro.resilience import (
    CircuitBreaker,
    FakeClock,
    ResilientScorer,
    RetryPolicy,
    ScoreOutcome,
    baseline_fallback,
    build_fallback_chain,
    failing,
    static_fallback,
)


def primary_ok(frame, deadline):
    return ScoreOutcome(estimate=0.9, trusted=True)


def primary_boom(frame, deadline):
    raise RuntimeError("scorer exploded")


class TestResilientScorer:
    def test_primary_success_is_not_degraded(self):
        scorer = ResilientScorer(primary_ok, fallbacks=[("static", static_fallback(0.5))])
        outcome = scorer.score("frame")
        assert outcome.estimate == 0.9
        assert not outcome.degraded
        assert outcome.fallback is None

    def test_primary_failure_degrades_to_fallback(self):
        events = []
        scorer = ResilientScorer(
            primary_boom,
            fallbacks=[("static", static_fallback(0.7))],
            on_event=lambda kind, **info: events.append((kind, info)),
        )
        outcome = scorer.score("frame")
        assert outcome.degraded
        assert outcome.fallback == "static"
        assert outcome.estimate == 0.7
        assert outcome.trusted is None
        assert any("scorer exploded" in f for f in outcome.failures)
        assert ("primary_failure", {"reason": "exception"}) in events
        assert ("fallback", {"name": "static"}) in events

    def test_retry_recovers_transient_primary_fault(self):
        flaky = failing(primary_ok, times=2)
        clock = FakeClock()
        scorer = ResilientScorer(
            lambda frame, deadline: flaky(frame, deadline),
            fallbacks=[("static", static_fallback(0.5))],
            retry=RetryPolicy(max_retries=2, backoff=0.01, sleep=clock.sleep),
        )
        outcome = scorer.score("frame")
        assert not outcome.degraded
        assert outcome.estimate == 0.9
        assert flaky.calls == 3

    def test_no_fallbacks_reraises_primary_error(self):
        scorer = ResilientScorer(primary_boom)
        with pytest.raises(RuntimeError, match="scorer exploded"):
            scorer.score("frame")

    def test_all_layers_failing_raises_resilience_error(self):
        scorer = ResilientScorer(
            primary_boom,
            fallbacks=[("bad", lambda frame: (_ for _ in ()).throw(ValueError("also broken")))],
        )
        with pytest.raises(ResilienceError, match="every scoring layer failed"):
            scorer.score("frame")

    def test_open_breaker_sheds_straight_to_fallback(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=1, cooldown_seconds=60.0, clock=clock
        )
        calls = []
        events = []

        def counting_primary(frame, deadline):
            calls.append(1)
            raise RuntimeError("down")

        scorer = ResilientScorer(
            counting_primary,
            fallbacks=[("static", static_fallback(0.5))],
            breaker=breaker,
            clock=clock,
            on_event=lambda kind, **info: events.append((kind, info)),
        )
        assert scorer.score("frame").degraded  # trips the breaker
        assert breaker.state == "open"
        assert scorer.score("frame").degraded  # shed: primary not called
        assert len(calls) == 1
        assert ("primary_failure", {"reason": "breaker_open"}) in events

    def test_breaker_recovers_after_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, window=1, cooldown_seconds=10.0, clock=clock
        )
        healthy = {"now": False}

        def recovering(frame, deadline):
            if not healthy["now"]:
                raise RuntimeError("down")
            return ScoreOutcome(estimate=0.8)

        scorer = ResilientScorer(
            recovering,
            fallbacks=[("static", static_fallback(0.5))],
            breaker=breaker,
            clock=clock,
        )
        assert scorer.score("f").degraded
        healthy["now"] = True
        assert scorer.score("f").degraded  # still open, shed
        clock.advance(10.0)  # half-open probe allowed
        outcome = scorer.score("f")
        assert not outcome.degraded
        assert breaker.state == "closed"

    def test_timeout_turns_slow_primary_into_degraded_answer(self):
        clock = FakeClock()

        def slow(frame, deadline):
            clock.advance(5.0)
            return ScoreOutcome(estimate=0.9)

        events = []
        scorer = ResilientScorer(
            slow,
            fallbacks=[("static", static_fallback(0.5))],
            timeout_seconds=1.0,
            clock=clock,
            on_event=lambda kind, **info: events.append((kind, info)),
        )
        outcome = scorer.score("frame")
        assert outcome.degraded
        assert ("primary_failure", {"reason": "timeout"}) in events


class TestFallbackFactories:
    def test_static_fallback_never_fails(self):
        outcome = static_fallback(0.42)(None)
        assert outcome == ScoreOutcome(
            estimate=0.42, interval=None, trusted=None, degraded=True
        )

    def test_baseline_fallback_detects_shift(self):
        rng = np.random.default_rng(0)
        reference = rng.dirichlet((5.0, 5.0), size=400)
        scorer = baseline_fallback(
            "bbseh", reference, predict_proba=lambda frame: frame, expected_score=0.8
        )
        same = scorer(rng.dirichlet((5.0, 5.0), size=400))
        assert same.trusted is True and same.degraded
        skewed = np.column_stack([np.full(400, 0.99), np.full(400, 0.01)])
        shifted = scorer(skewed)
        assert shifted.trusted is False
        assert shifted.estimate == 0.8  # estimate stays the held-out expectation

    def test_baseline_fallback_rejects_unknown_kind(self):
        with pytest.raises(DataValidationError):
            baseline_fallback("nope", np.ones((3, 2)) / 2, lambda f: f, 0.5)

    def test_build_chain_orders_baseline_before_static(self):
        chain = build_fallback_chain(
            "bbse", 0.8,
            predict_proba=lambda f: f,
            reference_proba=np.ones((10, 2)) / 2,
        )
        assert [name for name, _ in chain] == ["bbse", "static"]

    def test_build_chain_without_reference_is_static_only(self):
        chain = build_fallback_chain("bbseh", 0.8)
        assert [name for name, _ in chain] == ["static"]

    def test_build_chain_none_disables_degradation(self):
        assert build_fallback_chain("none", 0.8) == []
