"""Tests for the span → MetricsRegistry bridge."""

import pytest

from repro.obs import SPAN_BUCKETS, Span, Tracer, bridge_spans
from repro.serving.metrics import MetricsRegistry


def make_span(span_id, name, wall, outcome="ok", cpu=None):
    return Span(
        span_id=span_id,
        parent_id=None,
        name=name,
        started_at=0.0,
        wall_seconds=wall,
        cpu_seconds=wall if cpu is None else cpu,
        counters={},
        outcome=outcome,
        error="RuntimeError: x" if outcome == "error" else None,
        thread_id=1,
    )


class TestBridgeSpans:
    def test_histogram_and_counters_populated(self):
        registry = MetricsRegistry()
        spans = [
            make_span(1, "forest.fit", 0.2),
            make_span(2, "forest.fit", 0.4),
            make_span(3, "serving.score", 0.001, outcome="error"),
        ]
        result = bridge_spans(spans, registry)
        assert result is registry
        wall = registry.histogram(
            "trace_span_wall_seconds", "", ("span",), buckets=SPAN_BUCKETS
        )
        assert wall.count(span="forest.fit") == 2
        assert wall.sum(span="forest.fit") == pytest.approx(0.6)
        outcomes = registry.counter("trace_spans_total", "", ("span", "outcome"))
        assert outcomes.value(span="forest.fit", outcome="ok") == 2
        assert outcomes.value(span="serving.score", outcome="error") == 1

    def test_negative_cpu_clamped(self):
        registry = MetricsRegistry()
        bridge_spans([make_span(1, "odd", 0.1, cpu=-0.5)], registry)
        cpu = registry.counter("trace_span_cpu_seconds_total", "", ("span",))
        assert cpu.value(span="odd") == 0.0

    def test_prometheus_export_carries_span_series(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        with tracer.span("grid_search.fit"):
            pass
        bridge_spans(tracer.store.spans(), registry)
        text = registry.to_prometheus()
        assert 'trace_span_wall_seconds_bucket{span="grid_search.fit"' in text
        assert 'trace_spans_total{span="grid_search.fit",outcome="ok"} 1' in text

    def test_empty_span_list_registers_but_observes_nothing(self):
        registry = MetricsRegistry()
        bridge_spans([], registry)
        outcomes = registry.counter("trace_spans_total", "", ("span", "outcome"))
        assert outcomes.to_json()["series"] == []
