"""Tests for the span model, tracer, store, and JSON round-trip."""

import threading
import time

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.obs import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanStore,
    Tracer,
    current_tracer,
    set_tracer,
    spans_from_json,
    spans_to_json,
    use_tracer,
)


def make_span(span_id=1, parent_id=None, name="work", **overrides):
    payload = dict(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        started_at=100.0,
        wall_seconds=0.5,
        cpu_seconds=0.4,
        counters={"rows": 10},
    )
    payload.update(overrides)
    return Span(**payload)


class TestSpan:
    def test_ended_at(self):
        assert make_span(started_at=10.0, wall_seconds=2.5).ended_at == 12.5

    def test_invalid_outcome_raises(self):
        with pytest.raises(DataValidationError):
            make_span(outcome="maybe")

    def test_dict_round_trip(self):
        span = make_span(outcome="error", error="ValueError: boom", thread_id=7)
        assert Span.from_dict(span.to_dict()) == span

    def test_from_dict_missing_fields_raises(self):
        with pytest.raises(DataValidationError):
            Span.from_dict({"span_id": 1, "name": "x"})


class TestTracer:
    def test_records_nested_spans(self):
        tracer = Tracer()
        with tracer.span("outer", rows=3):
            with tracer.span("inner"):
                pass
        outer = [s for s in tracer.store.spans() if s.name == "outer"][0]
        inner = [s for s in tracer.store.spans() if s.name == "inner"][0]
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.counters == {"rows": 3}

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        spans = {s.name: s for s in tracer.store.spans()}
        assert spans["first"].parent_id == spans["parent"].span_id
        assert spans["second"].parent_id == spans["parent"].span_id

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("step"):
                pass
        ids = [s.span_id for s in tracer.store.spans()]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_wall_time_measured(self):
        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.02)
        (span,) = tracer.store.spans()
        assert span.wall_seconds >= 0.015

    def test_error_outcome_captured_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (span,) = tracer.store.spans()
        assert span.outcome == "error"
        assert span.error == "ValueError: boom"

    def test_add_updates_counters_mid_span(self):
        tracer = Tracer()
        with tracer.span("work") as active:
            active.add(items=12, phase="scan")
        (span,) = tracer.store.spans()
        assert span.counters == {"items": 12, "phase": "scan"}

    def test_counter_coercion(self):
        tracer = Tracer()
        with tracer.span(
            "typed",
            flag=True,
            count=np.int64(5),
            ratio=np.float64(0.5),
            method="hist",
        ):
            pass
        (span,) = tracer.store.spans()
        assert span.counters == {"flag": 1, "count": 5, "ratio": 0.5, "method": "hist"}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        ready = threading.Barrier(2)

        def worker():
            ready.wait()
            with tracer.span("worker"):
                pass

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            ready.wait()
            thread.join()
        spans = {s.name: s for s in tracer.store.spans()}
        # The worker span must not claim the main-thread span as parent.
        assert spans["worker"].parent_id is None
        assert spans["worker"].thread_id != spans["main"].thread_id


class TestSpanStore:
    def test_capacity_drops_oldest(self):
        store = SpanStore(capacity=2)
        for i in range(1, 5):
            store.add(make_span(span_id=i))
        assert [s.span_id for s in store.spans()] == [3, 4]
        assert store.dropped == 2
        assert len(store) == 2

    def test_invalid_capacity_raises(self):
        with pytest.raises(DataValidationError):
            SpanStore(capacity=0)

    def test_clear_resets(self):
        store = SpanStore(capacity=1)
        store.add(make_span(span_id=1))
        store.add(make_span(span_id=2))
        store.clear()
        assert len(store) == 0 and store.dropped == 0

    def test_concurrent_adds_lose_nothing(self):
        store = SpanStore()
        n_threads, per_thread = 4, 250

        def add_many(base):
            for i in range(per_thread):
                store.add(make_span(span_id=base + i))

        threads = [
            threading.Thread(target=add_many, args=(t * per_thread,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == n_threads * per_thread


class TestCurrentTracer:
    def test_default_is_noop(self):
        assert current_tracer() is NOOP_TRACER
        assert current_tracer().enabled is False

    def test_set_and_restore(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            set_tracer(previous)
        assert current_tracer() is previous

    def test_set_none_restores_noop(self):
        previous = set_tracer(Tracer())
        set_tracer(None)
        assert current_tracer() is NOOP_TRACER
        set_tracer(previous)

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with use_tracer(tracer) as installed:
            assert installed is tracer
            assert current_tracer() is tracer
        assert current_tracer() is NOOP_TRACER

    def test_use_tracer_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_tracer(Tracer()):
                raise RuntimeError("bail")
        assert current_tracer() is NOOP_TRACER


class TestNoopTracer:
    def test_span_returns_shared_singleton(self):
        tracer = NoopTracer()
        first = tracer.span("a", rows=1)
        second = tracer.span("b")
        assert first is second  # no allocation on the disabled path

    def test_noop_span_is_a_context_manager(self):
        with NOOP_TRACER.span("anything") as span:
            assert span.add(rows=5) is span

    def test_noop_span_propagates_exceptions(self):
        with pytest.raises(KeyError):
            with NOOP_TRACER.span("x"):
                raise KeyError("escape")

    def test_disabled_overhead_is_negligible(self):
        # The disabled hot path is one method call returning a cached
        # singleton; a generous wall bound keeps this robust under CI
        # noise while still catching accidental allocation/locking.
        iterations = 50_000
        start = time.perf_counter()
        for _ in range(iterations):
            with current_tracer().span("hot", rows=1):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert elapsed / iterations < 4e-5


class TestJsonRoundTrip:
    def test_round_trip_preserves_spans(self):
        tracer = Tracer()
        with tracer.span("outer", rows=5):
            with tracer.span("inner", method="hist"):
                pass
        spans = tracer.store.spans()
        restored = spans_from_json(spans_to_json(spans, indent=2))
        assert restored == spans

    def test_schema_version_present(self):
        import json

        payload = json.loads(spans_to_json([make_span()]))
        assert payload["schema_version"] == 1
        assert len(payload["spans"]) == 1

    def test_invalid_json_raises(self):
        with pytest.raises(DataValidationError):
            spans_from_json("{not json")
        with pytest.raises(DataValidationError):
            spans_from_json('{"no_spans": []}')
        with pytest.raises(DataValidationError):
            spans_from_json('{"spans": 42}')
