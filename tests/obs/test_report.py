"""Tests for span-tree construction, nesting checks, and the text report."""

import pytest

from repro.exceptions import DataValidationError
from repro.obs import (
    Span,
    Tracer,
    aggregate_spans,
    check_well_nested,
    format_span_tree,
    span_tree,
)


def make_span(span_id, parent_id=None, name="work", started_at=0.0,
              wall=1.0, thread_id=1, outcome="ok", counters=None):
    return Span(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        started_at=started_at,
        wall_seconds=wall,
        cpu_seconds=wall,
        counters=counters or {},
        outcome=outcome,
        error="RuntimeError: x" if outcome == "error" else None,
        thread_id=thread_id,
    )


class TestSpanTree:
    def test_forest_structure(self):
        spans = [
            make_span(1, name="root", started_at=0.0, wall=3.0),
            make_span(2, parent_id=1, name="child-b", started_at=2.0, wall=0.5),
            make_span(3, parent_id=1, name="child-a", started_at=0.5, wall=1.0),
            make_span(4, name="other-root", started_at=5.0),
        ]
        roots = span_tree(spans)
        assert [r.span.name for r in roots] == ["root", "other-root"]
        # Children ordered by start time, not insertion order.
        assert [c.span.name for c in roots[0].children] == ["child-a", "child-b"]

    def test_missing_parent_becomes_root(self):
        spans = [make_span(7, parent_id=99, name="orphan")]
        roots = span_tree(spans)
        assert [r.span.name for r in roots] == ["orphan"]

    def test_duplicate_ids_raise(self):
        with pytest.raises(DataValidationError):
            span_tree([make_span(1), make_span(1)])

    def test_self_seconds_subtracts_direct_children(self):
        spans = [
            make_span(1, name="root", wall=3.0),
            make_span(2, parent_id=1, wall=1.0),
            make_span(3, parent_id=1, wall=0.5),
        ]
        (root,) = span_tree(spans)
        assert root.self_seconds == pytest.approx(1.5)

    def test_self_seconds_floors_at_zero(self):
        spans = [
            make_span(1, name="root", wall=1.0),
            make_span(2, parent_id=1, wall=2.0),
        ]
        (root,) = span_tree(spans)
        assert root.self_seconds == 0.0


class TestCheckWellNested:
    def test_clean_trace_has_no_violations(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert check_well_nested(tracer.store.spans()) == []

    def test_thread_crossing_flagged(self):
        spans = [
            make_span(1, thread_id=1),
            make_span(2, parent_id=1, thread_id=2),
        ]
        violations = check_well_nested(spans)
        assert any("crosses threads" in v for v in violations)

    def test_child_outside_parent_window_flagged(self):
        spans = [
            make_span(1, started_at=10.0, wall=1.0),
            make_span(2, parent_id=1, started_at=9.0, wall=0.1),
            make_span(3, parent_id=1, started_at=10.5, wall=5.0),
        ]
        violations = check_well_nested(spans)
        assert any("starts before" in v for v in violations)
        assert any("ends after" in v for v in violations)

    def test_small_clock_slack_tolerated(self):
        spans = [
            make_span(1, started_at=10.0, wall=1.0),
            make_span(2, parent_id=1, started_at=9.999, wall=1.002),
        ]
        assert check_well_nested(spans) == []

    def test_parent_cycle_flagged(self):
        spans = [
            make_span(1, parent_id=2),
            make_span(2, parent_id=1),
        ]
        violations = check_well_nested(spans)
        assert any("parent cycle" in v for v in violations)


class TestAggregateSpans:
    def test_totals_by_name(self):
        spans = [
            make_span(1, name="fit", wall=1.0),
            make_span(2, name="fit", wall=3.0),
            make_span(3, name="score", wall=0.5, outcome="error"),
        ]
        totals = aggregate_spans(spans)
        assert totals["fit"]["count"] == 2
        assert totals["fit"]["wall_seconds"] == pytest.approx(4.0)
        assert totals["fit"]["max_wall_seconds"] == pytest.approx(3.0)
        assert totals["fit"]["errors"] == 0
        assert totals["score"]["errors"] == 1


class TestFormatSpanTree:
    def test_empty_message(self):
        assert format_span_tree([]) == "trace: no spans recorded"

    def test_report_contains_tree_and_totals(self):
        spans = [
            make_span(1, name="outer", wall=2.0, counters={"rows": 10}),
            make_span(2, parent_id=1, name="inner", started_at=0.5, wall=1.0),
        ]
        report = format_span_tree(spans)
        assert report.startswith("trace: 2 span(s)")
        assert "outer" in report and "  inner" in report
        assert "rows=10" in report
        assert "by span name (cumulative):" in report

    def test_error_marker_rendered(self):
        report = format_span_tree([make_span(1, name="broken", outcome="error")])
        assert "!ERROR" in report
        assert "errors 1" in report
