"""End-to-end wiring tests: spans cover the traced hot paths.

The four paths the tracer instruments (see docs/ARCHITECTURE.md):

1. meta-dataset generation (``corruption.*`` under ``validator.fit`` /
   ``predictor.fit``),
2. tree-ensemble training (``forest.*`` / ``boosting.*``, exact and hist),
3. hyperparameter search (``grid_search.*``),
4. the serving layer (``serving.score`` / ``serving.flush``).

Each test runs real code under an installed tracer and asserts on the
recorded span names, nesting, and counters — not on mocks — so a dropped
``with tracer.span(...)`` in any layer fails here.
"""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import SGDClassifier
from repro.ml.model_selection import GridSearchCV
from repro.obs import (
    NOOP_TRACER,
    Tracer,
    check_well_nested,
    current_tracer,
    span_tree,
    spans_from_json,
    spans_to_json,
    use_tracer,
)
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry
from repro.serving.service import ValidationService


@pytest.fixture
def tracer():
    installed = Tracer()
    with use_tracer(installed):
        yield installed


def names(tracer) -> set[str]:
    return {span.name for span in tracer.store.spans()}


def by_name(tracer, name: str):
    return [span for span in tracer.store.spans() if span.name == name]


@pytest.fixture(scope="module")
def regression_problem():
    rng = np.random.default_rng(7)
    X = rng.random((80, 4))
    return X, X @ np.array([2.0, -1.0, 0.5, 0.0])


@pytest.fixture(scope="module")
def wiring_predictor(income_blackbox, income_splits):
    """A cheap fitted predictor for the serving-path tests (fit untraced)."""
    return PerformancePredictor(
        income_blackbox, [Scaling()], n_samples=12, random_state=0
    ).fit(income_splits.test, income_splits.y_test)


class TestTreeEnsemblePath:
    def test_forest_exact_fit_emits_fit_and_grow(self, tracer, regression_problem):
        X, y = regression_problem
        RandomForestRegressor(n_trees=3, random_state=0, n_jobs=1).fit(X, y)
        assert {"forest.fit", "forest.grow"} <= names(tracer)
        assert "forest.bin" not in names(tracer)
        (fit,) = by_name(tracer, "forest.fit")
        assert fit.counters["tree_method"] == "exact"
        assert fit.counters["rows"] == 80

    def test_forest_hist_fit_adds_binning_span(self, tracer, regression_problem):
        X, y = regression_problem
        RandomForestRegressor(
            n_trees=3, random_state=0, n_jobs=1, tree_method="hist"
        ).fit(X, y)
        assert {"forest.fit", "forest.bin", "forest.grow"} <= names(tracer)
        (fit,) = by_name(tracer, "forest.fit")
        (binned,) = by_name(tracer, "forest.bin")
        assert binned.parent_id == fit.span_id

    def test_boosting_hist_fit_emits_per_stage_spans(self, tracer, regression_problem):
        X, y = regression_problem
        labels = (y > np.median(y)).astype(int)
        GradientBoostingClassifier(
            n_stages=3, random_state=0, tree_method="hist"
        ).fit(X, labels)
        assert {"boosting.fit", "boosting.bin", "boosting.stage"} <= names(tracer)
        stages = by_name(tracer, "boosting.stage")
        assert [span.counters["stage"] for span in stages] == [0, 1, 2]
        (fit,) = by_name(tracer, "boosting.fit")
        assert all(span.parent_id == fit.span_id for span in stages)


class TestGridSearchPath:
    def test_scan_and_refit_nested_under_fit(self, tracer, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        GridSearchCV(
            SGDClassifier(epochs=2, random_state=0),
            param_grid={"alpha": [1e-4, 1e-3]},
            n_splits=2,
        ).fit(X_train, y_train)
        assert {"grid_search.fit", "grid_search.scan", "grid_search.refit"} <= names(
            tracer
        )
        (fit,) = by_name(tracer, "grid_search.fit")
        (scan,) = by_name(tracer, "grid_search.scan")
        (refit,) = by_name(tracer, "grid_search.refit")
        assert scan.parent_id == fit.span_id
        assert refit.parent_id == fit.span_id
        assert scan.counters["cells"] == 4  # 2 params x 2 folds


class TestMetaDatasetPath:
    def test_validator_fit_covers_corruption_sampling(
        self, tracer, income_blackbox, income_splits
    ):
        PerformanceValidator(
            income_blackbox,
            [Scaling(), MissingValues()],
            threshold=0.05,
            n_samples=12,
            random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert {
            "validator.fit",
            "corruption.sample",
            "corruption.clean_baseline",
            "corruption.episodes",
        } <= names(tracer)
        (sample,) = by_name(tracer, "corruption.sample")
        assert sample.counters["corruptions"] == 12
        assert check_well_nested(tracer.store.spans()) == []

    def test_validate_from_proba_emits_validator_span(
        self, tracer, income_blackbox, income_splits
    ):
        validator = PerformanceValidator(
            income_blackbox, [Scaling()], n_samples=12, random_state=0
        )
        with use_tracer(None):  # keep the fit out of the trace under test
            validator.fit(income_splits.test, income_splits.y_test)
        proba = income_blackbox.predict_proba(income_splits.serving.head(50))
        validator.validate_from_proba(proba)
        (span,) = by_name(tracer, "validator.validate")
        assert span.counters["rows"] == 50


class TestServingPath:
    def test_micro_batch_flush_and_score_spans(
        self, tracer, wiring_predictor, income_splits
    ):
        registry = ModelRegistry()
        registry.register(
            Endpoint(
                name="income",
                version="1",
                predictor=wiring_predictor,
                policy=EndpointPolicy(micro_batch_size=100),
            )
        )
        service = ValidationService(registry)
        assert service.submit("income", income_splits.serving.head(40)) == []
        results = service.submit("income", income_splits.serving.head(60))
        assert len(results) == 1  # size-triggered flush scored the buffer
        (flush,) = by_name(tracer, "serving.flush")
        assert flush.counters["reason"] == "size"
        assert flush.counters["rows"] == 100
        (score,) = by_name(tracer, "serving.score")
        assert score.parent_id == flush.span_id
        # predictor.estimate runs inside the scoring span.
        (estimate,) = by_name(tracer, "predictor.estimate")
        roots = {node.span.name for node in span_tree(tracer.store.spans())}
        assert roots == {"serving.flush"}
        assert estimate.counters["rows"] == 100


class TestTraceLifecycle:
    def test_real_trace_round_trips_json_and_is_well_nested(
        self, tracer, regression_problem
    ):
        X, y = regression_problem
        RandomForestRegressor(
            n_trees=2, random_state=0, n_jobs=1, tree_method="hist"
        ).fit(X, y)
        spans = tracer.store.spans()
        assert spans
        assert check_well_nested(spans) == []
        assert spans_from_json(spans_to_json(spans, indent=2)) == spans

    def test_disabled_tracing_records_nothing(self, regression_problem):
        X, y = regression_problem
        bystander = Tracer()  # constructed but never installed
        assert current_tracer() is NOOP_TRACER
        RandomForestRegressor(n_trees=2, random_state=0, n_jobs=1).fit(X, y)
        assert len(bystander.store) == 0
        assert current_tracer() is NOOP_TRACER
