"""Unit tests for schemas and column specs."""

import pytest

from repro.exceptions import SchemaError
from repro.tabular.schema import ColumnSpec, ColumnType, Schema


class TestColumnSpec:
    def test_holds_name_and_type(self):
        spec = ColumnSpec("age", ColumnType.NUMERIC)
        assert spec.name == "age"
        assert spec.ctype is ColumnType.NUMERIC

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", ColumnType.NUMERIC)

    def test_is_hashable_and_frozen(self):
        spec = ColumnSpec("age", ColumnType.NUMERIC)
        assert hash(spec) == hash(ColumnSpec("age", ColumnType.NUMERIC))
        with pytest.raises(AttributeError):
            spec.name = "other"


class TestSchema:
    def make(self) -> Schema:
        return Schema.of(
            age=ColumnType.NUMERIC,
            city=ColumnType.CATEGORICAL,
            note=ColumnType.TEXT,
        )

    def test_preserves_declaration_order(self):
        assert self.make().names == ["age", "city", "note"]

    def test_len_and_iteration(self):
        schema = self.make()
        assert len(schema) == 3
        assert [spec.name for spec in schema] == schema.names

    def test_contains_and_getitem(self):
        schema = self.make()
        assert "age" in schema
        assert "salary" not in schema
        assert schema["city"].ctype is ColumnType.CATEGORICAL

    def test_getitem_unknown_raises_with_candidates(self):
        with pytest.raises(SchemaError, match="unknown column"):
            self.make()["salary"]

    def test_rejects_duplicate_names(self):
        specs = [ColumnSpec("a", ColumnType.NUMERIC), ColumnSpec("a", ColumnType.TEXT)]
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(specs)

    def test_names_of_type(self):
        schema = self.make()
        assert schema.names_of_type(ColumnType.NUMERIC) == ["age"]
        assert schema.names_of_type(ColumnType.IMAGE) == []

    def test_type_of(self):
        assert self.make().type_of("note") is ColumnType.TEXT

    def test_require_passes_on_match(self):
        self.make().require("age", ColumnType.NUMERIC)

    def test_require_raises_on_mismatch(self):
        with pytest.raises(SchemaError, match="expected"):
            self.make().require("age", ColumnType.TEXT)

    def test_equality_and_hash(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        other = Schema.of(age=ColumnType.NUMERIC)
        assert self.make() != other

    def test_equality_is_order_sensitive(self):
        a = Schema.of(x=ColumnType.NUMERIC, y=ColumnType.NUMERIC)
        b = Schema.of(y=ColumnType.NUMERIC, x=ColumnType.NUMERIC)
        assert a != b

    def test_without_removes_columns(self):
        reduced = self.make().without("city")
        assert reduced.names == ["age", "note"]

    def test_without_unknown_raises(self):
        with pytest.raises(SchemaError):
            self.make().without("salary")

    def test_repr_mentions_types(self):
        assert "age:numeric" in repr(self.make())
