"""Unit tests for dataset-level split / balance operations."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame
from repro.tabular.ops import balance_classes, split_frame, subsample, train_test_split
from repro.tabular.schema import ColumnType


def make_data(n: int = 100) -> tuple[DataFrame, np.ndarray]:
    rng = np.random.default_rng(1)
    frame = DataFrame.from_dict(
        {"x": rng.normal(size=n), "row_id": np.arange(n, dtype=float)},
        {"x": ColumnType.NUMERIC, "row_id": ColumnType.NUMERIC},
    )
    labels = np.where(rng.random(n) < 0.3, "pos", "neg").astype(object)
    return frame, labels


class TestSplitFrame:
    def test_partitions_are_disjoint(self, rng):
        frame, labels = make_data()
        (a, _), (b, _) = split_frame(frame, labels, (0.6, 0.4), rng)
        ids_a = set(a["row_id"])
        ids_b = set(b["row_id"])
        assert not ids_a & ids_b
        assert len(ids_a | ids_b) == 100

    def test_respects_fractions(self, rng):
        frame, labels = make_data()
        parts = split_frame(frame, labels, (0.5, 0.3, 0.2), rng)
        assert [len(p[0]) for p in parts] == [50, 30, 20]

    def test_labels_stay_aligned(self, rng):
        frame, labels = make_data()
        (a, y_a), _ = split_frame(frame, labels, (0.7, 0.3), rng)
        # row_id indexes the original arrays, so alignment is checkable.
        for row_id, label in zip(a["row_id"], y_a):
            assert labels[int(row_id)] == label

    def test_fractions_leq_one_allows_subsampling(self, rng):
        frame, labels = make_data()
        parts = split_frame(frame, labels, (0.2, 0.2), rng)
        assert sum(len(p[0]) for p in parts) == 40

    def test_oversized_fractions_raise(self, rng):
        frame, labels = make_data()
        with pytest.raises(DataValidationError):
            split_frame(frame, labels, (0.8, 0.4), rng)

    def test_nonpositive_fraction_raises(self, rng):
        frame, labels = make_data()
        with pytest.raises(DataValidationError):
            split_frame(frame, labels, (0.5, -0.1), rng)

    def test_misaligned_labels_raise(self, rng):
        frame, labels = make_data()
        with pytest.raises(DataValidationError):
            split_frame(frame, labels[:-1], (0.5, 0.5), rng)


class TestTrainTestSplit:
    def test_sizes(self, rng):
        frame, labels = make_data()
        train, y_train, test, y_test = train_test_split(frame, labels, 0.25, rng)
        assert len(train) == 75 and len(test) == 25
        assert len(y_train) == 75 and len(y_test) == 25

    def test_invalid_fraction_raises(self, rng):
        frame, labels = make_data()
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(DataValidationError):
                train_test_split(frame, labels, bad, rng)


class TestBalanceClasses:
    def test_equal_class_counts(self, rng):
        frame, labels = make_data(200)
        balanced, y = balance_classes(frame, labels, rng)
        _, counts = np.unique(y, return_counts=True)
        assert counts[0] == counts[1]
        assert len(balanced) == len(y)

    def test_downsamples_to_minority(self, rng):
        frame, labels = make_data(200)
        minority = min(np.unique(labels, return_counts=True)[1])
        _, y = balance_classes(frame, labels, rng)
        assert len(y) == 2 * minority

    def test_single_class_raises(self, rng):
        frame, _ = make_data(10)
        labels = np.array(["same"] * 10, dtype=object)
        with pytest.raises(DataValidationError):
            balance_classes(frame, labels, rng)

    def test_rows_are_shuffled(self, rng):
        frame, labels = make_data(200)
        balanced, y = balance_classes(frame, labels, rng)
        # Balanced output should not be grouped by class.
        first_half_classes = set(y[: len(y) // 2])
        assert len(first_half_classes) == 2


class TestSubsample:
    def test_size_and_alignment(self, rng):
        frame, labels = make_data()
        sampled, y = subsample(frame, labels, 30, rng)
        assert len(sampled) == 30 and len(y) == 30
        for row_id, label in zip(sampled["row_id"], y):
            assert labels[int(row_id)] == label

    def test_without_replacement(self, rng):
        frame, labels = make_data()
        sampled, _ = subsample(frame, labels, 100, rng)
        assert len(set(sampled["row_id"])) == 100

    def test_oversample_raises(self, rng):
        frame, labels = make_data(10)
        with pytest.raises(DataValidationError):
            subsample(frame, labels, 11, rng)
