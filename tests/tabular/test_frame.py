"""Unit tests for the typed dataframe."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, SchemaError
from repro.tabular.frame import DataFrame, concat, is_missing
from repro.tabular.schema import ColumnType


def make_frame() -> DataFrame:
    return DataFrame.from_dict(
        {
            "x": [1.0, 2.0, np.nan, 4.0],
            "c": ["a", None, "b", "a"],
        },
        {"x": ColumnType.NUMERIC, "c": ColumnType.CATEGORICAL},
    )


class TestConstruction:
    def test_from_dict_sets_length(self):
        assert len(make_frame()) == 4

    def test_numeric_stored_as_float64(self):
        assert make_frame()["x"].dtype == np.float64

    def test_categorical_stored_as_object_strings(self):
        values = make_frame()["c"]
        assert values.dtype == object
        assert values[0] == "a"
        assert values[1] is None

    def test_nan_in_categorical_becomes_none(self):
        frame = DataFrame.from_dict(
            {"c": ["a", float("nan"), "b"]}, {"c": ColumnType.CATEGORICAL}
        )
        assert frame["c"][1] is None

    def test_non_string_categorical_coerced_to_string(self):
        frame = DataFrame.from_dict({"c": [1, 2.5, "x"]}, {"c": ColumnType.CATEGORICAL})
        assert list(frame["c"]) == ["1", "2.5", "x"]

    def test_mismatched_types_dict_raises(self):
        with pytest.raises(SchemaError):
            DataFrame.from_dict({"x": [1.0]}, {"y": ColumnType.NUMERIC})

    def test_ragged_columns_raise(self):
        with pytest.raises(DataValidationError, match="ragged"):
            DataFrame.from_dict(
                {"x": [1.0, 2.0], "y": [1.0]},
                {"x": ColumnType.NUMERIC, "y": ColumnType.NUMERIC},
            )

    def test_image_column_requires_3d(self):
        with pytest.raises(DataValidationError):
            DataFrame.from_dict({"img": np.zeros((3, 4))}, {"img": ColumnType.IMAGE})
        frame = DataFrame.from_dict({"img": np.zeros((3, 4, 4))}, {"img": ColumnType.IMAGE})
        assert frame["img"].shape == (3, 4, 4)

    def test_numeric_column_requires_1d(self):
        with pytest.raises(DataValidationError):
            DataFrame.from_dict({"x": np.zeros((3, 2))}, {"x": ColumnType.NUMERIC})


class TestIntrospection:
    def test_column_type_lists(self):
        frame = make_frame()
        assert frame.numeric_columns == ["x"]
        assert frame.categorical_columns == ["c"]
        assert frame.text_columns == []
        assert frame.image_columns == []

    def test_contains(self):
        assert "x" in make_frame()
        assert "z" not in make_frame()

    def test_getitem_unknown_raises(self):
        with pytest.raises(SchemaError):
            make_frame()["z"]

    def test_missing_mask_numeric(self):
        assert list(make_frame().missing_mask("x")) == [False, False, True, False]

    def test_missing_mask_categorical(self):
        assert list(make_frame().missing_mask("c")) == [False, True, False, False]

    def test_missing_fraction(self):
        assert make_frame().missing_fraction("x") == pytest.approx(0.25)

    def test_equality(self):
        assert make_frame() == make_frame()
        other = make_frame().with_column("x", ColumnType.NUMERIC, [9.0, 2.0, np.nan, 4.0])
        assert make_frame() != other

    def test_equality_respects_nan(self):
        # Frames with NaN in the same place are equal.
        assert make_frame() == make_frame()


class TestTransformation:
    def test_copy_is_deep(self):
        original = make_frame()
        copy = original.copy()
        copy.set_values("x", np.array([0]), [99.0])
        assert original["x"][0] == 1.0
        assert copy["x"][0] == 99.0

    def test_select_rows_by_index(self):
        selected = make_frame().select_rows([0, 3])
        assert len(selected) == 2
        assert list(selected["c"]) == ["a", "a"]

    def test_select_rows_by_boolean_mask(self):
        mask = np.array([True, False, True, False])
        assert len(make_frame().select_rows(mask)) == 2

    def test_select_rows_bad_mask_length_raises(self):
        with pytest.raises(DataValidationError):
            make_frame().select_rows(np.array([True, False]))

    def test_head(self):
        assert len(make_frame().head(2)) == 2
        assert len(make_frame().head(100)) == 4

    def test_with_column_adds(self):
        frame = make_frame().with_column("y", ColumnType.NUMERIC, [1.0, 2.0, 3.0, 4.0])
        assert frame.schema.names == ["x", "c", "y"]

    def test_with_column_replaces_in_place(self):
        frame = make_frame().with_column("x", ColumnType.NUMERIC, [0.0, 0.0, 0.0, 0.0])
        assert frame.schema.names == ["x", "c"]
        assert frame["x"].sum() == 0.0

    def test_with_column_wrong_length_raises(self):
        with pytest.raises(DataValidationError):
            make_frame().with_column("y", ColumnType.NUMERIC, [1.0])

    def test_drop_columns(self):
        frame = make_frame().drop_columns("c")
        assert frame.schema.names == ["x"]

    def test_set_values_categorical_none(self):
        frame = make_frame().copy()
        frame.set_values("c", np.array([0, 2]), [None, None])
        assert frame["c"][0] is None and frame["c"][2] is None

    def test_set_values_categorical_scalar_broadcast(self):
        frame = make_frame().copy()
        frame.set_values("c", np.array([0, 2]), None)
        assert frame["c"][0] is None and frame["c"][2] is None

    def test_column_values_drop_missing(self):
        values = make_frame().column_values("x", drop_missing=True)
        assert list(values) == [1.0, 2.0, 4.0]

    def test_to_dict_roundtrip_names(self):
        dumped = make_frame().to_dict()
        assert set(dumped) == {"x", "c"}
        assert len(dumped["x"]) == 4


class TestConcat:
    def test_stacks_rows(self):
        combined = concat([make_frame(), make_frame()])
        assert len(combined) == 8
        assert combined.schema == make_frame().schema

    def test_empty_list_raises(self):
        with pytest.raises(DataValidationError):
            concat([])

    def test_schema_mismatch_raises(self):
        other = make_frame().drop_columns("c")
        with pytest.raises(SchemaError):
            concat([make_frame(), other])


class TestIsMissing:
    def test_object_array(self):
        arr = np.array(["a", None, "b"], dtype=object)
        assert list(is_missing(arr)) == [False, True, False]

    def test_float_array(self):
        arr = np.array([1.0, np.nan])
        assert list(is_missing(arr)) == [False, True]

    def test_image_array_any_nan_pixel(self):
        arr = np.zeros((2, 2, 2))
        arr[1, 0, 0] = np.nan
        assert list(is_missing(arr)) == [False, True]
