"""Tests for the finite-sample conformal quantile and normal quantile."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.uncertainty import (
    INTERVAL_METHODS,
    conformal_quantile,
    conformal_rank,
    normal_quantile,
)

coverages = st.floats(min_value=0.01, max_value=0.99, allow_nan=False)


class TestConformalRank:
    def test_pins_the_paper_cases(self):
        # n=9, coverage=0.9: ceil(10 * 0.9) = 9 — the maximum residual,
        # where np.quantile would interpolate to the 8.2th statistic.
        assert conformal_rank(9, 0.9) == 9
        assert conformal_rank(99, 0.9) == 90
        assert conformal_rank(19, 0.95) == 19

    def test_clips_to_n_when_coverage_outruns_the_sample(self):
        assert conformal_rank(5, 0.99) == 5

    @pytest.mark.parametrize("n", [0, -3])
    def test_rejects_empty_samples(self, n):
        with pytest.raises(DataValidationError):
            conformal_rank(n, 0.9)

    @pytest.mark.parametrize("coverage", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_degenerate_coverage(self, coverage):
        with pytest.raises(DataValidationError):
            conformal_rank(10, coverage)

    @given(st.integers(min_value=1, max_value=500), coverages, coverages)
    def test_monotone_in_coverage(self, n, c1, c2):
        lo, hi = sorted((c1, c2))
        assert conformal_rank(n, lo) <= conformal_rank(n, hi)

    @given(st.integers(min_value=1, max_value=500), coverages)
    def test_rank_dominates_the_plug_in_rank(self, n, coverage):
        # The corrected rank is never below the plug-in ceil(n*c) rank:
        # correction only widens intervals.
        assert conformal_rank(n, coverage) >= int(np.ceil(n * coverage))
        assert 1 <= conformal_rank(n, coverage) <= n


class TestConformalQuantile:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        coverages,
        coverages,
    )
    def test_monotone_in_coverage(self, values, c1, c2):
        lo, hi = sorted((c1, c2))
        assert conformal_quantile(values, lo) <= conformal_quantile(values, hi)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=200,
        ),
        coverages,
    )
    def test_returns_an_order_statistic_at_least_the_plug_in(self, values, coverage):
        result = conformal_quantile(values, coverage)
        assert result in values
        assert result >= float(np.quantile(values, coverage, method="lower"))

    @settings(max_examples=25, deadline=None)
    @given(coverages)
    def test_exact_in_the_large_sample_limit(self, coverage):
        # As n -> inf the corrected rank converges to the empirical
        # quantile: on a dense grid of [0, 1] both land within O(1/n).
        n = 20_000
        values = np.linspace(0.0, 1.0, n)
        assert conformal_quantile(values, coverage) == pytest.approx(
            float(np.quantile(values, coverage)), abs=2.0 / n
        )

    def test_order_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(size=40)
        shuffled = values[rng.permutation(40)]
        assert conformal_quantile(values, 0.8) == conformal_quantile(shuffled, 0.8)

    def test_marginal_coverage_holds_on_exchangeable_data(self):
        # The guarantee the rank correction buys: with n=9 calibration
        # residuals at 90% nominal the corrected rank is the maximum, so
        # a fresh exchangeable draw is covered with probability exactly
        # 9/10 — while np.quantile's interpolated cut covers ~0.83. The
        # conformal assertion allows three standard errors of simulation
        # noise below nominal; the plug-in sits far outside that band.
        rng = np.random.default_rng(3)
        hits_conformal = hits_plugin = 0
        trials = 4000
        for _ in range(trials):
            residuals = rng.exponential(size=9)
            fresh = rng.exponential()
            hits_conformal += fresh <= conformal_quantile(residuals, 0.9)
            hits_plugin += fresh <= float(np.quantile(residuals, 0.9))
        three_se = 3.0 * np.sqrt(0.9 * 0.1 / trials)
        assert hits_conformal / trials >= 0.9 - three_se
        assert hits_plugin / trials < 0.9 - three_se


class TestNormalQuantile:
    @given(st.floats(min_value=1e-6, max_value=1.0 - 1e-6))
    def test_matches_scipy(self, q):
        assert normal_quantile(q) == pytest.approx(
            float(scipy.stats.norm.ppf(q)), abs=1e-9
        )

    @pytest.mark.parametrize("q", [0.0, 1.0, -0.2, 2.0])
    def test_rejects_degenerate_levels(self, q):
        with pytest.raises(DataValidationError):
            normal_quantile(q)

    def test_symmetry(self):
        assert normal_quantile(0.975) == pytest.approx(-normal_quantile(0.025))
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)


def test_interval_methods_registry():
    assert INTERVAL_METHODS == ("conformal", "cqr")
