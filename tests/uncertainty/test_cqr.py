"""Tests for the conformalized quantile regression interval model."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, NotFittedError
from repro.uncertainty import MIN_CALIBRATION_SAMPLES, CQRIntervalModel


def _heteroscedastic_meta(n=400, seed=0):
    """Synthetic meta-dataset: score noise scales with the first feature."""
    rng = np.random.default_rng(seed)
    features = rng.uniform(0.0, 1.0, size=(n, 3))
    noise = rng.normal(scale=0.02 + 0.15 * features[:, 0])
    scores = np.clip(0.85 - 0.3 * features[:, 0] + noise, 0.0, 1.0)
    return features, scores


@pytest.fixture(scope="module")
def fitted():
    features, scores = _heteroscedastic_meta()
    model = CQRIntervalModel(coverage=0.9, n_stages=40, random_state=0)
    return model.fit(features, scores), features, scores


class TestFit:
    def test_requires_aligned_2d_features(self):
        with pytest.raises(DataValidationError):
            CQRIntervalModel().fit(np.zeros(20), np.zeros(20))
        with pytest.raises(DataValidationError):
            CQRIntervalModel().fit(np.zeros((20, 2)), np.zeros(19))

    def test_requires_minimum_calibration_samples(self):
        n = MIN_CALIBRATION_SAMPLES - 1
        with pytest.raises(DataValidationError):
            CQRIntervalModel().fit(np.zeros((n, 2)), np.zeros(n))

    def test_rejects_degenerate_coverage(self):
        with pytest.raises(DataValidationError):
            CQRIntervalModel(coverage=1.0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            CQRIntervalModel().predict_interval(np.zeros((1, 2)))

    def test_fit_is_deterministic_for_a_seed(self):
        features, scores = _heteroscedastic_meta(n=80)
        first = CQRIntervalModel(n_stages=20, random_state=3).fit(features, scores)
        again = CQRIntervalModel(n_stages=20, random_state=3).fit(features, scores)
        assert first.correction_ == again.correction_
        lo1, hi1 = first.predict_interval(features)
        lo2, hi2 = again.predict_interval(features)
        np.testing.assert_array_equal(lo1, lo2)
        np.testing.assert_array_equal(hi1, hi2)

    def test_baseline_halfwidth_is_a_clean_traffic_width(self, fitted):
        model, features, _ = fitted
        assert model.baseline_halfwidth_ >= 0.0
        lower, upper = model.predict_interval(features)
        mean_halfwidth = float(np.mean((upper - lower) / 2.0))
        # Same quantity up to the [0, 1] clipping in predict_interval.
        assert model.baseline_halfwidth_ == pytest.approx(mean_halfwidth, abs=0.05)


class TestPredictInterval:
    def test_bounds_are_ordered_and_clipped(self, fitted):
        model, features, _ = fitted
        lower, upper = model.predict_interval(features)
        assert np.all(lower <= upper)
        assert np.all(lower >= 0.0) and np.all(upper <= 1.0)

    def test_single_row_features_are_accepted(self, fitted):
        model, features, _ = fitted
        lower, upper = model.predict_interval(features[0])
        assert lower.shape == upper.shape == (1,)

    def test_intervals_adapt_to_the_noise_regime(self, fitted):
        # The heads should learn that score noise grows with feature 0:
        # the noisy regime's intervals must be wider on average.
        model, features, _ = fitted
        lower, upper = model.predict_interval(features)
        width = upper - lower
        quiet = width[features[:, 0] < 0.3].mean()
        noisy = width[features[:, 0] > 0.7].mean()
        assert noisy > quiet

    def test_empirical_coverage_on_held_out_draws(self):
        train_x, train_y = _heteroscedastic_meta(n=400, seed=0)
        test_x, test_y = _heteroscedastic_meta(n=400, seed=1)
        model = CQRIntervalModel(coverage=0.9, n_stages=40, random_state=0)
        model.fit(train_x, train_y)
        lower, upper = model.predict_interval(test_x)
        covered = np.mean((lower <= test_y) & (test_y <= upper))
        assert covered >= 0.85  # nominal − 5pp, the repo-wide floor
