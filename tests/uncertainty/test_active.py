"""Tests for active Bayesian assessment (Beta machinery + assessor)."""

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.uncertainty import (
    ActiveAssessor,
    BetaPosterior,
    beta_quantile,
    regularized_incomplete_beta,
)

shapes = st.floats(min_value=0.05, max_value=200.0, allow_nan=False)
probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBetaNumerics:
    @given(shapes, shapes, probs)
    def test_cdf_matches_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            float(scipy.stats.beta.cdf(x, a, b)), abs=1e-9
        )

    @given(shapes, shapes, st.floats(min_value=0.001, max_value=0.999))
    def test_quantile_matches_scipy(self, a, b, q):
        assert beta_quantile(q, a, b) == pytest.approx(
            float(scipy.stats.beta.ppf(q, a, b)), abs=1e-7
        )

    def test_cdf_rejects_bad_shapes(self):
        with pytest.raises(DataValidationError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)
        with pytest.raises(DataValidationError):
            beta_quantile(1.5, 1.0, 1.0)


class TestBetaPosterior:
    @given(probs, st.floats(min_value=0.5, max_value=50.0))
    def test_prior_mean_tracks_the_estimate(self, estimate, strength):
        prior = BetaPosterior.from_estimate(estimate, strength)
        # The uniform Beta(1,1) component pulls toward 1/2; the mean must
        # sit between the estimate and 1/2 and stay in [0, 1].
        assert 0.0 <= prior.mean <= 1.0
        assert min(estimate, 0.5) - 1e-12 <= prior.mean <= max(estimate, 0.5) + 1e-12

    @given(
        probs,
        st.floats(min_value=0.5, max_value=50.0),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=40),
    )
    def test_estimate_stays_in_unit_interval(self, estimate, strength, s, f):
        posterior = BetaPosterior.from_estimate(estimate, strength).update(s, f)
        lower, upper = posterior.interval(0.9)
        assert 0.0 <= lower <= posterior.mean <= upper <= 1.0

    @given(shapes, shapes)
    def test_expected_posterior_variance_shrinks_with_each_label(self, a, b):
        # The honest law-of-total-variance property: a *single* surprising
        # label can raise the variance, but averaged over the prior
        # predictive the posterior variance strictly shrinks.
        prior = BetaPosterior(a, b)
        p = prior.mean
        expected = (
            p * prior.update(1, 0).variance + (1.0 - p) * prior.update(0, 1).variance
        )
        assert expected < prior.variance

    @given(shapes, shapes, st.integers(min_value=1, max_value=200))
    def test_variance_bound_shrinks_with_labels(self, a, b, n):
        # Whatever the outcomes, Var(Beta) <= 1 / (4 (a+b+1)): the bound
        # after n more labels is strictly below the bound before them.
        before = 1.0 / (4.0 * (a + b + 1.0))
        after = 1.0 / (4.0 * (a + b + n + 1.0))
        assert after < before
        posterior = BetaPosterior(a, b).update(n // 2, n - n // 2)
        assert posterior.variance <= after + 1e-12

    def test_a_surprising_label_can_raise_pointwise_variance(self):
        # Documents why the property above is about *expected* variance.
        prior = BetaPosterior(1.0, 9.0)
        assert prior.update(1, 0).variance > prior.variance

    @given(shapes, shapes, st.integers(min_value=0, max_value=30))
    def test_interval_widens_with_coverage(self, a, b, n):
        posterior = BetaPosterior(a, b).update(n, n)
        narrow = posterior.interval(0.5)
        wide = posterior.interval(0.99)
        assert wide[0] <= narrow[0] and narrow[1] <= wide[1]

    def test_update_rejects_negative_counts(self):
        with pytest.raises(DataValidationError):
            BetaPosterior(1.0, 1.0).update(-1, 0)


@pytest.fixture
def binary_proba():
    rng = np.random.default_rng(0)
    confident = rng.uniform(0.9, 1.0, size=30)
    uncertain = rng.uniform(0.5, 0.6, size=10)
    p1 = np.concatenate([confident, uncertain])
    return np.column_stack([p1, 1.0 - p1])


class TestActiveAssessor:
    def test_margin_selection_prefers_uncertain_rows(self, binary_proba):
        assessor = ActiveAssessor(label_budget=10, selection="margin")
        selected = assessor.select(binary_proba)
        # The 10 uncertain rows live at indices 30..39.
        assert sorted(selected) == list(range(30, 40))

    def test_budget_caps_at_batch_size(self, binary_proba):
        assessor = ActiveAssessor(label_budget=100)
        assert assessor.select(binary_proba).size == len(binary_proba)

    def test_thompson_is_deterministic_per_seed(self, binary_proba):
        assessor = ActiveAssessor(label_budget=5, selection="thompson")
        first = assessor.select(binary_proba, seed=7)
        again = assessor.select(binary_proba, seed=7)
        other = assessor.select(binary_proba, seed=8)
        assert np.array_equal(first, again)
        assert not np.array_equal(first, other)

    def test_thompson_still_favors_uncertain_rows(self, binary_proba):
        assessor = ActiveAssessor(label_budget=10, selection="thompson")
        hits = 0
        for seed in range(20):
            selected = assessor.select(binary_proba, seed=seed)
            hits += sum(1 for i in selected if i >= 30)
        # Uncertain rows are 25% of the batch but should win well over
        # half the Thompson budget across seeds.
        assert hits / (20 * 10) > 0.5

    def test_assess_spends_budget_and_updates(self, binary_proba):
        assessor = ActiveAssessor(label_budget=8, prior_strength=10.0)
        correct = np.ones(len(binary_proba), dtype=bool)
        correct[30:] = False  # the uncertain rows are wrong
        result = assessor.assess(
            binary_proba, lambda idx: correct[idx], prior_estimate=0.9, seed=0
        )
        assert result.labels_spent == 8
        assert result.successes == 0
        assert result.estimate < 0.9  # labels contradicted the estimate
        assert result.lower <= result.estimate <= result.upper
        assert result.interval == (result.lower, result.estimate, result.upper)
        assert all(i >= 30 for i in result.selected)

    def test_confirming_labels_tighten_the_interval(self, binary_proba):
        assessor = ActiveAssessor(label_budget=10, prior_strength=10.0, coverage=0.9)
        correct = np.ones(len(binary_proba), dtype=bool)
        prior = BetaPosterior.from_estimate(0.9, 10.0)
        prior_width = np.subtract(*reversed(prior.interval(0.9)))
        result = assessor.assess(
            binary_proba, lambda idx: correct[idx], prior_estimate=0.9, seed=0
        )
        assert result.upper - result.lower < prior_width

    def test_oracle_must_answer_every_selected_row(self, binary_proba):
        assessor = ActiveAssessor(label_budget=5)
        with pytest.raises(DataValidationError):
            assessor.assess(
                binary_proba, lambda idx: [True], prior_estimate=0.9, seed=0
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(label_budget=0),
            dict(selection="random"),
            dict(prior_strength=0.0),
            dict(coverage=1.0),
        ],
    )
    def test_constructor_validation(self, kwargs):
        with pytest.raises(DataValidationError):
            ActiveAssessor(**kwargs)
