"""Tests for the SGD logistic regression classifier."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.linear import SGDClassifier
from repro.ml.metrics import accuracy_score


class TestSGDClassifier:
    def test_learns_linear_problem(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = SGDClassifier(epochs=15, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_proba_rows_sum_to_one(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = SGDClassifier(epochs=5, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [4.0, 0.0], [0.0, 4.0]])
        X = np.concatenate([rng.normal(c, 0.5, size=(60, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 60)
        model = SGDClassifier(epochs=20, random_state=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_l1_penalty_sparsifies_more_than_l2(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        # Add pure-noise features; L1 should push their weights closer to 0.
        rng = np.random.default_rng(1)
        noise = rng.normal(size=(X_train.shape[0], 20))
        X_noise = np.hstack([X_train, noise])
        l1 = SGDClassifier(penalty="l1", alpha=1e-2, epochs=20, random_state=0).fit(X_noise, y_train)
        l2 = SGDClassifier(penalty="l2", alpha=1e-2, epochs=20, random_state=0).fit(X_noise, y_train)
        l1_noise_mass = np.abs(l1.coef_[8:]).mean()
        l2_noise_mass = np.abs(l2.coef_[8:]).mean()
        assert l1_noise_mass < l2_noise_mass

    def test_unknown_penalty_raises(self):
        with pytest.raises(DataValidationError):
            SGDClassifier(penalty="elastic")

    def test_decision_function_feature_mismatch_raises(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        model = SGDClassifier(epochs=2, random_state=0).fit(X_train, y_train)
        with pytest.raises(DataValidationError):
            model.decision_function(np.zeros((2, 3)))

    def test_saturates_on_wildly_scaled_inputs(self, binary_matrix_problem):
        # Footnote-9 behaviour: hugely scaled serving inputs produce
        # saturated (but finite) probabilities.
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = SGDClassifier(epochs=5, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test * 1e6)
        assert np.all(np.isfinite(proba))
        assert np.all(proba.max(axis=1) > 0.999)

    def test_single_class_raises(self):
        with pytest.raises(DataValidationError):
            SGDClassifier().fit(np.zeros((5, 2)), np.zeros(5))

    def test_deterministic_given_seed(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        a = SGDClassifier(epochs=3, random_state=1).fit(X_train, y_train).predict_proba(X_test)
        b = SGDClassifier(epochs=3, random_state=1).fit(X_train, y_train).predict_proba(X_test)
        assert np.array_equal(a, b)
