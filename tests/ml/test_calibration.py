"""Tests for probability calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError, NotFittedError
from repro.ml.base import sigmoid
from repro.ml.calibration import CalibratedClassifier, IsotonicCalibrator, PlattCalibrator
from repro.ml.linear import SGDClassifier
from repro.ml.metrics import log_loss


def make_miscalibrated(n=2000, seed=0):
    """Scores whose true P(y=1|score) = sigmoid(2*score - 1)."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=n)
    probabilities = sigmoid(2.0 * scores - 1.0)
    y = (rng.random(n) < probabilities).astype(float)
    return scores, y


class TestPlattCalibrator:
    def test_recovers_sigmoid_parameters(self):
        scores, y = make_miscalibrated()
        calibrator = PlattCalibrator().fit(scores, y)
        assert calibrator.a_ == pytest.approx(2.0, abs=0.3)
        assert calibrator.b_ == pytest.approx(-1.0, abs=0.3)

    def test_improves_log_loss_of_raw_scores(self):
        scores, y = make_miscalibrated()
        # Treat raw scores pushed through identity-sigmoid as probabilities.
        raw_p = sigmoid(scores)
        calibrated_p = PlattCalibrator().fit(scores, y).transform(scores)
        y_idx = y.astype(int)
        raw_ll = log_loss(y_idx, np.column_stack([1 - raw_p, raw_p]))
        cal_ll = log_loss(y_idx, np.column_stack([1 - calibrated_p, calibrated_p]))
        assert cal_ll < raw_ll

    def test_outputs_are_probabilities(self):
        scores, y = make_miscalibrated(300)
        out = PlattCalibrator().fit(scores, y).transform(scores)
        assert np.all((out > 0) & (out < 1))

    def test_rejects_non_binary_targets(self):
        with pytest.raises(DataValidationError):
            PlattCalibrator().fit(np.array([0.1, 0.2]), np.array([0, 2]))

    def test_rejects_misaligned(self):
        with pytest.raises(DataValidationError):
            PlattCalibrator().fit(np.array([0.1]), np.array([0, 1]))


class TestIsotonicCalibrator:
    def test_output_is_monotone(self):
        scores, y = make_miscalibrated(500, seed=1)
        calibrator = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(scores.min(), scores.max(), 100)
        values = calibrator.transform(grid)
        assert np.all(np.diff(values) >= -1e-12)

    def test_perfectly_sorted_input_is_preserved(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        assert np.allclose(calibrator.transform(scores), y)

    def test_violator_pooling(self):
        # Decreasing targets must pool to their mean.
        scores = np.array([1.0, 2.0])
        y = np.array([1.0, 0.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        assert np.allclose(calibrator.transform(scores), [0.5, 0.5])

    def test_transform_extrapolates_flat(self):
        scores = np.array([0.0, 1.0])
        y = np.array([0.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        assert calibrator.transform(np.array([-5.0]))[0] == 0.0
        assert calibrator.transform(np.array([5.0]))[0] == 1.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IsotonicCalibrator().transform(np.array([0.5]))

    def test_tied_scores_pool_to_their_mean(self):
        # Regression: ties used to be fed to PAVA as separate points in
        # stable-sort order, so transform(0.5) returned whichever label
        # happened to sort last (1.0) instead of the tie-block mean.
        scores = np.array([0.2, 0.5, 0.5, 0.8])
        y = np.array([0.0, 0.0, 1.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        assert np.allclose(
            calibrator.transform(np.array([0.2, 0.5, 0.8])), [0.0, 0.5, 1.0]
        )

    def test_tie_block_weight_matters_in_pooling(self):
        # Two 0-labels against one 1-label at the same score: the pooled
        # value must be the weighted mean 1/3, not 1/2.
        scores = np.array([0.5, 0.5, 0.5])
        y = np.array([0.0, 0.0, 1.0])
        calibrator = IsotonicCalibrator().fit(scores, y)
        assert np.allclose(calibrator.transform(np.array([0.5])), [1.0 / 3.0])


def _make_isotonic_problem(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 40))
    # Draw from a small grid so ties are common.
    scores = rng.choice(np.linspace(0.0, 1.0, 6), size=n)
    y = rng.integers(0, 2, size=n).astype(float)
    return scores, y


isotonic_problems = st.integers(min_value=0, max_value=2**32 - 1).map(
    _make_isotonic_problem
)


class TestIsotonicProperties:
    @given(isotonic_problems)
    @settings(max_examples=50, deadline=None)
    def test_transform_is_monotone_even_with_ties(self, problem):
        scores, y = problem
        calibrator = IsotonicCalibrator().fit(scores, y)
        grid = np.linspace(-0.5, 1.5, 101)
        values = calibrator.transform(grid)
        assert np.all(np.diff(values) >= -1e-12)
        assert np.all((values >= 0.0) & (values <= 1.0))

    @given(isotonic_problems, st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_fit_is_invariant_to_input_order(self, problem, pyrandom):
        # Tie handling must not depend on how tied rows happen to be
        # ordered in the training data (the stable-sort bug above).
        scores, y = problem
        order = list(range(len(scores)))
        pyrandom.shuffle(order)
        order = np.array(order)
        original = IsotonicCalibrator().fit(scores, y)
        shuffled = IsotonicCalibrator().fit(scores[order], y[order])
        grid = np.linspace(-0.5, 1.5, 101)
        np.testing.assert_allclose(
            original.transform(grid), shuffled.transform(grid), atol=1e-12
        )


class TestCalibratedClassifier:
    @pytest.mark.parametrize("method", ["platt", "isotonic"])
    def test_wraps_fitted_model(self, binary_matrix_problem, method):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = SGDClassifier(epochs=10, random_state=0).fit(X_train, y_train)
        calibrated = CalibratedClassifier(model, method=method).fit(X_train, y_train)
        proba = calibrated.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        accuracy = (calibrated.predict(X_test) == y_test).mean()
        assert accuracy > 0.8

    def test_unknown_method_raises(self):
        with pytest.raises(DataValidationError):
            CalibratedClassifier(object(), method="beta")
