"""Tests for scaling, one-hot encoding, hashing and label encoding."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.preprocessing import (
    HashingVectorizer,
    LabelEncoder,
    OneHotEncoder,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 2))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_transform_uses_fit_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[5.0]]))[0, 0] == 0.0
        assert scaler.transform(np.array([[10.0]]))[0, 0] == 1.0

    def test_nan_imputed_to_fit_mean(self):
        scaler = StandardScaler().fit(np.array([[0.0], [10.0]]))
        assert scaler.transform(np.array([[np.nan]]))[0, 0] == 0.0

    def test_all_nan_column_at_fit_is_neutral(self):
        scaler = StandardScaler().fit(np.array([[np.nan], [np.nan]]))
        out = scaler.transform(np.array([[3.0]]))
        assert np.isfinite(out).all()

    def test_constant_column_maps_to_zero(self):
        scaler = StandardScaler().fit(np.array([[7.0], [7.0]]))
        assert scaler.transform(np.array([[7.0]]))[0, 0] == 0.0

    def test_clip_bounds_output(self):
        scaler = StandardScaler(clip=2.0).fit(np.array([[0.0], [1.0]]))
        out = scaler.transform(np.array([[1000.0]]))
        assert out[0, 0] == 2.0

    def test_1d_input_raises(self):
        with pytest.raises(DataValidationError):
            StandardScaler().fit(np.array([1.0, 2.0]))


class TestOneHotEncoder:
    def test_basic_encoding(self):
        values = np.array(["b", "a", "b"], dtype=object)
        encoded = OneHotEncoder().fit_transform(values)
        assert encoded.shape == (3, 2)
        # Categories are stored sorted: a then b.
        assert list(encoded[0]) == [0.0, 1.0]
        assert list(encoded[1]) == [1.0, 0.0]

    def test_unseen_category_is_zero_vector(self):
        encoder = OneHotEncoder().fit(np.array(["a", "b"], dtype=object))
        out = encoder.transform(np.array(["zzz"], dtype=object))
        assert out.sum() == 0.0

    def test_missing_value_is_zero_vector(self):
        encoder = OneHotEncoder().fit(np.array(["a", "b"], dtype=object))
        out = encoder.transform(np.array([None], dtype=object))
        assert out.sum() == 0.0

    def test_missing_values_ignored_at_fit(self):
        encoder = OneHotEncoder().fit(np.array(["a", None, "b"], dtype=object))
        assert encoder.categories_ == ["a", "b"]

    def test_max_categories_keeps_most_frequent(self):
        values = np.array(["a"] * 5 + ["b"] * 3 + ["c"], dtype=object)
        encoder = OneHotEncoder(max_categories=2).fit(values)
        assert encoder.categories_ == ["a", "b"]
        assert encoder.transform(np.array(["c"], dtype=object)).sum() == 0.0

    def test_deterministic_category_order(self):
        values = np.array(["x", "y", "z"], dtype=object)
        a = OneHotEncoder().fit(values).categories_
        b = OneHotEncoder().fit(values[::-1].copy()).categories_
        assert a == b


class TestHashingVectorizer:
    def test_deterministic_across_instances(self):
        texts = np.array(["hello world", "foo bar baz"], dtype=object)
        a = HashingVectorizer(n_features=64).transform(texts)
        b = HashingVectorizer(n_features=64).transform(texts)
        assert np.array_equal(a, b)

    def test_same_text_same_vector(self):
        texts = np.array(["repeat me", "repeat me"], dtype=object)
        out = HashingVectorizer().transform(texts)
        assert np.array_equal(out[0], out[1])

    def test_different_text_different_vector(self):
        texts = np.array(["alpha beta", "gamma delta"], dtype=object)
        out = HashingVectorizer().transform(texts)
        assert not np.array_equal(out[0], out[1])

    def test_rows_are_l2_normalized(self):
        out = HashingVectorizer().transform(np.array(["some words here"], dtype=object))
        assert np.linalg.norm(out[0]) == pytest.approx(1.0)

    def test_missing_text_is_zero_vector(self):
        out = HashingVectorizer().transform(np.array([None], dtype=object))
        assert out.sum() == 0.0

    def test_empty_text_is_zero_vector(self):
        out = HashingVectorizer().transform(np.array([""], dtype=object))
        assert np.all(out == 0.0)

    def test_tokenizer_lowercases_and_splits(self):
        assert HashingVectorizer.tokenize("Hello, World! 123") == ["hello", "world", "123"]

    def test_bigrams_included(self):
        vectorizer = HashingVectorizer(n_features=1024, ngram_range=(1, 2))
        grams = vectorizer._ngrams(["a", "b", "c"])
        assert "a b" in grams and "b c" in grams and "a" in grams

    def test_leetspeak_changes_vector(self):
        # The adversarial attack works precisely because hashed n-grams of
        # rewritten words differ.
        clean = HashingVectorizer().transform(np.array(["you are a loser"], dtype=object))
        leet = HashingVectorizer().transform(np.array(["y0u 4r3 4 1053r"], dtype=object))
        assert not np.allclose(clean, leet)

    def test_invalid_params_raise(self):
        with pytest.raises(DataValidationError):
            HashingVectorizer(n_features=0)
        with pytest.raises(DataValidationError):
            HashingVectorizer(ngram_range=(2, 1))


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["no", "yes", "no"], dtype=object)
        encoder = LabelEncoder().fit(y)
        indices = encoder.transform(y)
        assert list(indices) == [0, 1, 0]
        assert list(encoder.inverse_transform(indices)) == list(y)

    def test_unseen_label_raises(self):
        encoder = LabelEncoder().fit(np.array(["a", "b"], dtype=object))
        with pytest.raises(DataValidationError, match="unseen"):
            encoder.transform(np.array(["c"], dtype=object))
