"""Tests for gradient boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.metrics import accuracy_score, mean_absolute_error


class TestGradientBoostingClassifier:
    def test_learns_binary_problem(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=40, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_proba_rows_sum_to_one(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba > 0) & (proba < 1))

    def test_more_stages_improve_training_fit(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        weak = GradientBoostingClassifier(n_stages=1, random_state=0).fit(X_train, y_train)
        strong = GradientBoostingClassifier(n_stages=60, random_state=0).fit(X_train, y_train)
        acc_weak = accuracy_score(y_train, weak.predict(X_train))
        acc_strong = accuracy_score(y_train, strong.predict(X_train))
        assert acc_strong >= acc_weak

    def test_base_score_is_log_odds_of_prior(self):
        X = np.random.default_rng(0).random((100, 2))
        y = np.array([1] * 80 + [0] * 20)
        model = GradientBoostingClassifier(n_stages=1).fit(X, y)
        assert model.base_score_ == pytest.approx(np.log(0.8 / 0.2), abs=1e-6)

    def test_multiclass_softmax_boosting(self):
        rng = np.random.default_rng(1)
        X = rng.random((300, 2))
        y = (X[:, 0] * 3).astype(int)
        model = GradientBoostingClassifier(n_stages=20, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (300, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (model.predict(X) == y).mean() > 0.9

    def test_string_labels(self):
        rng = np.random.default_rng(2)
        X = rng.random((80, 2))
        y = np.where(X[:, 1] > 0.5, "up", "down").astype(object)
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X, y)
        assert set(model.predict(X)) <= {"up", "down"}

    def test_feature_subsampling(self, binary_matrix_problem):
        # colsample decorrelates stages; the model must still learn.
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(
            n_stages=40, max_features=3, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8

    def test_subsample_under_one(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(
            n_stages=30, subsample=0.7, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8

    def test_decision_function_monotone_with_proba(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X_train, y_train)
        raw = model.decision_function(X_test)
        proba = model.predict_proba(X_test)[:, 1]
        order_raw = np.argsort(raw)
        order_proba = np.argsort(proba)
        assert np.array_equal(order_raw, order_proba)


class TestGradientBoostingRegressor:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 1))
        y = np.sin(X.ravel() * 2)
        model = GradientBoostingRegressor(n_stages=80, random_state=0).fit(X[:300], y[:300])
        assert mean_absolute_error(y[300:], model.predict(X[300:])) < 0.15

    def test_zero_stage_limit_predicts_mean(self):
        rng = np.random.default_rng(1)
        X = rng.random((50, 2))
        y = rng.random(50)
        model = GradientBoostingRegressor(n_stages=1, learning_rate=0.0).fit(X, y)
        assert np.allclose(model.predict(X), y.mean())

    def test_shrinkage_slows_fitting(self):
        rng = np.random.default_rng(2)
        X = rng.random((100, 2))
        y = rng.random(100)
        fast = GradientBoostingRegressor(n_stages=10, learning_rate=0.5, random_state=0).fit(X, y)
        slow = GradientBoostingRegressor(n_stages=10, learning_rate=0.01, random_state=0).fit(X, y)
        err_fast = mean_absolute_error(y, fast.predict(X))
        err_slow = mean_absolute_error(y, slow.predict(X))
        assert err_fast < err_slow


class TestPinballBoosting:
    @staticmethod
    def _heteroscedastic(n=600, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.uniform(0.0, 1.0, size=(n, 2))
        y = 2.0 * X[:, 0] + rng.normal(scale=0.1 + 0.4 * X[:, 1])
        return X, y

    def test_loss_and_tau_validation(self):
        from repro.exceptions import DataValidationError

        X = np.random.default_rng(0).random((30, 2))
        y = X[:, 0]
        with pytest.raises(DataValidationError):
            GradientBoostingRegressor(loss="huber").fit(X, y)
        with pytest.raises(DataValidationError):
            GradientBoostingRegressor(loss="pinball", tau=1.0).fit(X, y)
        with pytest.raises(DataValidationError):
            GradientBoostingRegressor(loss="pinball", tau=0.0).fit(X, y)

    def test_zero_stage_pinball_predicts_the_quantile(self):
        X, y = self._heteroscedastic(200)
        model = GradientBoostingRegressor(
            n_stages=0, loss="pinball", tau=0.25
        ).fit(X, y)
        assert model.base_score_ == pytest.approx(float(np.quantile(y, 0.25)))

    @pytest.mark.parametrize("tau", [0.1, 0.5, 0.9])
    def test_quantile_heads_are_calibrated(self, tau):
        # A tau-head's predictions should leave about tau of the targets
        # below them.
        X, y = self._heteroscedastic()
        model = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=tau, random_state=0
        ).fit(X, y)
        below = float(np.mean(y <= model.predict(X)))
        assert below == pytest.approx(tau, abs=0.08)

    def test_upper_head_sits_above_lower_head_on_average(self):
        X, y = self._heteroscedastic()
        lower = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=0.1, random_state=0
        ).fit(X, y)
        upper = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=0.9, random_state=0
        ).fit(X, y)
        gap = upper.predict(X) - lower.predict(X)
        assert float(np.mean(gap)) > 0.0
        assert float(np.mean(gap > 0.0)) > 0.9

    def test_heads_learn_heteroscedastic_width(self):
        # Noise scales with feature 1: the learned 10-90 band must be
        # wider where the noise is.
        X, y = self._heteroscedastic()
        lower = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=0.1, random_state=0
        ).fit(X, y)
        upper = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=0.9, random_state=0
        ).fit(X, y)
        width = upper.predict(X) - lower.predict(X)
        quiet = width[X[:, 1] < 0.3].mean()
        noisy = width[X[:, 1] > 0.7].mean()
        assert noisy > quiet

    def test_pinball_beats_squared_loss_on_its_own_objective(self):
        from repro.ml.metrics import pinball_loss

        X, y = self._heteroscedastic()
        quantile_model = GradientBoostingRegressor(
            n_stages=60, loss="pinball", tau=0.9, random_state=0
        ).fit(X, y)
        mean_model = GradientBoostingRegressor(n_stages=60, random_state=0).fit(X, y)
        assert pinball_loss(y, quantile_model.predict(X), tau=0.9) < pinball_loss(
            y, mean_model.predict(X), tau=0.9
        )
