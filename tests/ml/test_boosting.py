"""Tests for gradient boosting."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.ml.metrics import accuracy_score, mean_absolute_error


class TestGradientBoostingClassifier:
    def test_learns_binary_problem(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=40, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_proba_rows_sum_to_one(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba > 0) & (proba < 1))

    def test_more_stages_improve_training_fit(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        weak = GradientBoostingClassifier(n_stages=1, random_state=0).fit(X_train, y_train)
        strong = GradientBoostingClassifier(n_stages=60, random_state=0).fit(X_train, y_train)
        acc_weak = accuracy_score(y_train, weak.predict(X_train))
        acc_strong = accuracy_score(y_train, strong.predict(X_train))
        assert acc_strong >= acc_weak

    def test_base_score_is_log_odds_of_prior(self):
        X = np.random.default_rng(0).random((100, 2))
        y = np.array([1] * 80 + [0] * 20)
        model = GradientBoostingClassifier(n_stages=1).fit(X, y)
        assert model.base_score_ == pytest.approx(np.log(0.8 / 0.2), abs=1e-6)

    def test_multiclass_softmax_boosting(self):
        rng = np.random.default_rng(1)
        X = rng.random((300, 2))
        y = (X[:, 0] * 3).astype(int)
        model = GradientBoostingClassifier(n_stages=20, random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (300, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (model.predict(X) == y).mean() > 0.9

    def test_string_labels(self):
        rng = np.random.default_rng(2)
        X = rng.random((80, 2))
        y = np.where(X[:, 1] > 0.5, "up", "down").astype(object)
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X, y)
        assert set(model.predict(X)) <= {"up", "down"}

    def test_feature_subsampling(self, binary_matrix_problem):
        # colsample decorrelates stages; the model must still learn.
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(
            n_stages=40, max_features=3, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8

    def test_subsample_under_one(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = GradientBoostingClassifier(
            n_stages=30, subsample=0.7, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8

    def test_decision_function_monotone_with_proba(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = GradientBoostingClassifier(n_stages=10, random_state=0).fit(X_train, y_train)
        raw = model.decision_function(X_test)
        proba = model.predict_proba(X_test)[:, 1]
        order_raw = np.argsort(raw)
        order_proba = np.argsort(proba)
        assert np.array_equal(order_raw, order_proba)


class TestGradientBoostingRegressor:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 1))
        y = np.sin(X.ravel() * 2)
        model = GradientBoostingRegressor(n_stages=80, random_state=0).fit(X[:300], y[:300])
        assert mean_absolute_error(y[300:], model.predict(X[300:])) < 0.15

    def test_zero_stage_limit_predicts_mean(self):
        rng = np.random.default_rng(1)
        X = rng.random((50, 2))
        y = rng.random(50)
        model = GradientBoostingRegressor(n_stages=1, learning_rate=0.0).fit(X, y)
        assert np.allclose(model.predict(X), y.mean())

    def test_shrinkage_slows_fitting(self):
        rng = np.random.default_rng(2)
        X = rng.random((100, 2))
        y = rng.random(100)
        fast = GradientBoostingRegressor(n_stages=10, learning_rate=0.5, random_state=0).fit(X, y)
        slow = GradientBoostingRegressor(n_stages=10, learning_rate=0.01, random_state=0).fit(X, y)
        err_fast = mean_absolute_error(y, fast.predict(X))
        err_slow = mean_absolute_error(y, slow.predict(X))
        assert err_fast < err_slow
