"""Tests for the tabular encoder (feature map) and pipeline."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class TestTabularEncoder:
    def test_encodes_all_column_types(self, small_frame):
        encoder = TabularEncoder(text_features=32)
        matrix = encoder.fit_transform(small_frame)
        # 2 numeric + 3 city categories + 32 hashed text dims.
        assert matrix.shape == (6, 2 + 3 + 32)
        assert np.all(np.isfinite(matrix))

    def test_fit_on_train_apply_on_serve(self, small_frame):
        encoder = TabularEncoder(text_features=8).fit(small_frame)
        serving = small_frame.select_rows([0, 1])
        out = encoder.transform(serving)
        assert out.shape[0] == 2

    def test_unseen_category_encodes_to_zero_block(self, small_frame):
        encoder = TabularEncoder(text_features=8).fit(small_frame)
        serving = small_frame.copy()
        serving.set_values("city", np.arange(6), ["atlantis"] * 6)
        out = encoder.transform(serving)
        categorical_block = out[:, 2:5]
        assert categorical_block.sum() == 0.0

    def test_missing_numeric_maps_to_zero(self, small_frame):
        encoder = TabularEncoder(text_features=8).fit(small_frame)
        out = encoder.transform(small_frame)
        # Row 3 has a missing age; standardized missing -> imputed mean -> 0.
        assert out[3, 0] == 0.0

    def test_schema_mismatch_raises(self, small_frame):
        encoder = TabularEncoder(text_features=8).fit(small_frame)
        with pytest.raises(DataValidationError, match="schema"):
            encoder.transform(small_frame.drop_columns("city"))

    def test_image_columns_flatten(self):
        frame = DataFrame.from_dict(
            {"img": np.random.default_rng(0).random((4, 5, 5))}, {"img": ColumnType.IMAGE}
        )
        out = TabularEncoder().fit_transform(frame)
        assert out.shape == (4, 25)

    def test_empty_schema_raises(self):
        frame = DataFrame.from_dict({}, {})
        with pytest.raises(DataValidationError):
            TabularEncoder().fit_transform(frame)

    def test_n_features_property(self, small_frame):
        encoder = TabularEncoder(text_features=16).fit(small_frame)
        assert encoder.n_features_ == 2 + 3 + 16

    def test_clip_numeric_bounds_scaled_inputs(self, small_frame):
        encoder = TabularEncoder(text_features=8, clip_numeric=3.0).fit(small_frame)
        scaled = small_frame.copy()
        scaled.set_values("income", np.arange(6), scaled["income"] * 1e6)
        out = encoder.transform(scaled)
        assert np.abs(out[:, :2]).max() <= 3.0


class TestPipeline:
    def make_labeled_frame(self):
        rng = np.random.default_rng(0)
        n = 300
        x = rng.normal(size=n)
        color = np.where(x + 0.5 * rng.normal(size=n) > 0, "red", "blue").astype(object)
        frame = DataFrame.from_dict(
            {"x": x, "color": color},
            {"x": ColumnType.NUMERIC, "color": ColumnType.CATEGORICAL},
        )
        labels = np.where(x > 0, "pos", "neg").astype(object)
        return frame, labels

    def test_fit_predict_roundtrip(self):
        frame, labels = self.make_labeled_frame()
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=10, random_state=0))
        pipeline.fit(frame, labels)
        accuracy = float(np.mean(pipeline.predict(frame) == labels))
        assert accuracy > 0.85

    def test_predict_proba_shape_and_simplex(self):
        frame, labels = self.make_labeled_frame()
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=3, random_state=0))
        pipeline.fit(frame, labels)
        proba = pipeline.predict_proba(frame)
        assert proba.shape == (300, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_classes_exposed(self):
        frame, labels = self.make_labeled_frame()
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=1, random_state=0))
        pipeline.fit(frame, labels)
        assert list(pipeline.classes_) == ["neg", "pos"]

    def test_fit_does_not_mutate_prototypes(self):
        frame, labels = self.make_labeled_frame()
        encoder = TabularEncoder()
        model = SGDClassifier(epochs=1, random_state=0)
        Pipeline(encoder, model).fit(frame, labels)
        assert not hasattr(encoder, "schema_")
        assert not hasattr(model, "coef_")

    def test_unfitted_predict_raises(self):
        frame, _ = self.make_labeled_frame()
        pipeline = Pipeline(TabularEncoder(), SGDClassifier())
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            pipeline.predict(frame)
