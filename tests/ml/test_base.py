"""Tests for the estimator protocol and numeric helpers."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError, NotFittedError
from repro.ml.base import (
    Estimator,
    as_rng,
    check_labels,
    check_matrix,
    clone,
    sigmoid,
    softmax,
)


class Toy(Estimator):
    def __init__(self, alpha: float = 1.0, depth: int = 3):
        self.alpha = alpha
        self.depth = depth

    def fit(self, X, y):
        self.fitted_ = True
        return self


class TestEstimatorParams:
    def test_get_params_reads_init_args(self):
        assert Toy(alpha=2.0).get_params() == {"alpha": 2.0, "depth": 3}

    def test_set_params_roundtrip(self):
        toy = Toy().set_params(alpha=5.0, depth=7)
        assert toy.alpha == 5.0 and toy.depth == 7

    def test_set_params_unknown_raises(self):
        with pytest.raises(DataValidationError, match="no parameter"):
            Toy().set_params(gamma=1.0)

    def test_require_fitted(self):
        toy = Toy()
        with pytest.raises(NotFittedError):
            toy._require_fitted("fitted_")
        toy.fit(None, None)
        toy._require_fitted("fitted_")

    def test_repr_contains_params(self):
        assert "alpha=1.0" in repr(Toy())


class TestClone:
    def test_clone_copies_params_not_state(self):
        toy = Toy(alpha=9.0).fit(None, None)
        fresh = clone(toy)
        assert fresh.alpha == 9.0
        assert not hasattr(fresh, "fitted_")

    def test_clone_deep_copies_mutable_params(self):
        class WithList(Estimator):
            def __init__(self, items=None):
                self.items = items if items is not None else []

        original = WithList([1, 2])
        cloned = clone(original)
        cloned.items.append(3)
        assert original.items == [1, 2]


class TestCheckers:
    def test_check_matrix_promotes_1d(self):
        assert check_matrix(np.array([1.0, 2.0])).shape == (2, 1)

    def test_check_matrix_rejects_3d_and_empty(self):
        with pytest.raises(DataValidationError):
            check_matrix(np.zeros((2, 2, 2)))
        with pytest.raises(DataValidationError):
            check_matrix(np.empty((0, 3)))

    def test_check_labels_alignment(self):
        y = check_labels([1, 0, 1], 3)
        assert len(y) == 3
        with pytest.raises(DataValidationError):
            check_labels([1, 0], 3)
        with pytest.raises(DataValidationError):
            check_labels(np.zeros((3, 1)), 3)

    def test_as_rng_accepts_seed_generator_none(self):
        assert isinstance(as_rng(0), np.random.Generator)
        generator = np.random.default_rng(1)
        assert as_rng(generator) is generator
        assert isinstance(as_rng(None), np.random.Generator)

    def test_as_rng_seed_reproducible(self):
        assert as_rng(5).random() == as_rng(5).random()


class TestNumerics:
    def test_softmax_rows_sum_to_one(self, rng):
        result = softmax(rng.normal(size=(10, 4)))
        assert np.allclose(result.sum(axis=1), 1.0)
        assert np.all(result >= 0)

    def test_softmax_stable_for_huge_scores(self):
        result = softmax(np.array([[1e10, 0.0], [-1e10, 0.0]]))
        assert np.all(np.isfinite(result))
        assert result[0, 0] == pytest.approx(1.0)
        assert result[1, 0] == pytest.approx(0.0)

    def test_softmax_shift_invariance(self, rng):
        scores = rng.normal(size=(5, 3))
        assert np.allclose(softmax(scores), softmax(scores + 100.0))

    def test_sigmoid_matches_definition(self):
        x = np.array([-2.0, 0.0, 3.0])
        assert np.allclose(sigmoid(x), 1.0 / (1.0 + np.exp(-x)))

    def test_sigmoid_stable_at_extremes(self):
        result = sigmoid(np.array([-1e10, 1e10]))
        assert result[0] == 0.0
        assert result[1] == 1.0

    def test_sigmoid_symmetry(self, rng):
        x = rng.normal(size=100)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0)
