"""Tests for the CART decision trees."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _best_split


class TestBestSplit:
    def test_obvious_split(self):
        x = np.array([1.0, 2.0, 10.0, 11.0])
        targets = np.array([[0.0], [0.0], [1.0], [1.0]])
        threshold, gain = _best_split(x, targets, min_samples_leaf=1)
        assert 2.0 < threshold < 10.0
        assert gain > 0

    def test_constant_feature_returns_none(self):
        x = np.ones(5)
        targets = np.arange(5, dtype=float).reshape(-1, 1)
        assert _best_split(x, targets, 1) is None

    def test_constant_target_returns_none(self):
        x = np.arange(5, dtype=float)
        targets = np.ones((5, 1))
        assert _best_split(x, targets, 1) is None

    def test_min_samples_leaf_respected(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        targets = np.array([[0.0], [0.0], [0.0], [10.0]])
        # With min_samples_leaf=2 the best cut (between 3 and 4) is illegal.
        threshold, _ = _best_split(x, targets, min_samples_leaf=2)
        assert threshold == pytest.approx(2.5)

    def test_ulp_adjacent_values_still_partition(self):
        # Regression test: midpoint of two floats one ULP apart rounds up to
        # the larger value; the split must not send every row left.
        a = 0.5
        b = np.nextafter(a, 1.0)
        x = np.array([a, a, b, b])
        targets = np.array([[0.0], [0.0], [1.0], [1.0]])
        threshold, _ = _best_split(x, targets, 1)
        go_left = x <= threshold
        assert 0 < go_left.sum() < len(x)


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        prediction = tree.predict(X)
        assert np.allclose(prediction, y)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 3))
        y = rng.random(200)
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        # A depth-1 tree yields at most two distinct predictions.
        assert len(np.unique(stump.predict(X))) <= 2

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(0)
        X = rng.random((50, 2))
        y = rng.random(50)
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=10).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_single_row(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([5.0]))
        assert tree.predict(np.array([[42.0]]))[0] == 5.0

    def test_prediction_is_leaf_mean(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 2))
        y = rng.random(100)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        leaves = tree.apply(X)
        predictions = tree.predict(X)
        for leaf in np.unique(leaves):
            rows = leaves == leaf
            assert predictions[rows][0] == pytest.approx(y[rows].mean())

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        X = rng.random((80, 5))
        y = rng.random(80)
        a = DecisionTreeRegressor(max_features=2, random_state=7).fit(X, y).predict(X)
        b = DecisionTreeRegressor(max_features=2, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestDecisionTreeClassifier:
    def test_learns_simple_rule(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array(["lo", "lo", "hi", "hi"], dtype=object)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert list(tree.predict(X)) == ["lo", "lo", "hi", "hi"]

    def test_predict_proba_rows_sum_to_one(self, rng):
        X = rng.random((100, 3))
        y = rng.integers(0, 3, size=100)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (100, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_proba_are_leaf_class_frequencies(self):
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        stump = DecisionTreeClassifier(max_depth=1, min_samples_leaf=1).fit(X, y)
        proba = stump.predict_proba(np.array([[0.0]]))
        assert proba[0, 0] == pytest.approx(2 / 3)

    def test_classes_sorted(self):
        X = np.zeros((4, 1))
        X[:2] = 1.0
        tree = DecisionTreeClassifier().fit(X, np.array(["z", "z", "a", "a"], dtype=object))
        assert list(tree.classes_) == ["a", "z"]

    def test_overfits_training_data_at_depth(self, rng):
        X = rng.random((60, 4))
        y = rng.integers(0, 2, size=60)
        tree = DecisionTreeClassifier(max_depth=30).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95
