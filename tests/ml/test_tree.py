"""Tests for the CART decision trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError, NotFittedError
from repro.ml.binning import bin_matrix
from repro.ml.metrics import r2_score
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor, _best_split


class TestBestSplit:
    def test_obvious_split(self):
        x = np.array([1.0, 2.0, 10.0, 11.0])
        targets = np.array([[0.0], [0.0], [1.0], [1.0]])
        threshold, gain = _best_split(x, targets, min_samples_leaf=1)
        assert 2.0 < threshold < 10.0
        assert gain > 0

    def test_constant_feature_returns_none(self):
        x = np.ones(5)
        targets = np.arange(5, dtype=float).reshape(-1, 1)
        assert _best_split(x, targets, 1) is None

    def test_constant_target_returns_none(self):
        x = np.arange(5, dtype=float)
        targets = np.ones((5, 1))
        assert _best_split(x, targets, 1) is None

    def test_min_samples_leaf_respected(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        targets = np.array([[0.0], [0.0], [0.0], [10.0]])
        # With min_samples_leaf=2 the best cut (between 3 and 4) is illegal.
        threshold, _ = _best_split(x, targets, min_samples_leaf=2)
        assert threshold == pytest.approx(2.5)

    def test_ulp_adjacent_values_still_partition(self):
        # Regression test: midpoint of two floats one ULP apart rounds up to
        # the larger value; the split must not send every row left.
        a = 0.5
        b = np.nextafter(a, 1.0)
        x = np.array([a, a, b, b])
        targets = np.array([[0.0], [0.0], [1.0], [1.0]])
        threshold, _ = _best_split(x, targets, 1)
        go_left = x <= threshold
        assert 0 < go_left.sum() < len(x)


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        prediction = tree.predict(X)
        assert np.allclose(prediction, y)

    def test_respects_max_depth(self):
        rng = np.random.default_rng(0)
        X = rng.random((200, 3))
        y = rng.random(200)
        stump = DecisionTreeRegressor(max_depth=1).fit(X, y)
        # A depth-1 tree yields at most two distinct predictions.
        assert len(np.unique(stump.predict(X))) <= 2

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(0)
        X = rng.random((50, 2))
        y = rng.random(50)
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=10).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_single_row(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0]]), np.array([5.0]))
        assert tree.predict(np.array([[42.0]]))[0] == 5.0

    def test_prediction_is_leaf_mean(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 2))
        y = rng.random(100)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        leaves = tree.apply(X)
        predictions = tree.predict(X)
        for leaf in np.unique(leaves):
            rows = leaves == leaf
            assert predictions[rows][0] == pytest.approx(y[rows].mean())

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        X = rng.random((80, 5))
        y = rng.random(80)
        a = DecisionTreeRegressor(max_features=2, random_state=7).fit(X, y).predict(X)
        b = DecisionTreeRegressor(max_features=2, random_state=7).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestDecisionTreeClassifier:
    def test_learns_simple_rule(self):
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array(["lo", "lo", "hi", "hi"], dtype=object)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert list(tree.predict(X)) == ["lo", "lo", "hi", "hi"]

    def test_predict_proba_rows_sum_to_one(self, rng):
        X = rng.random((100, 3))
        y = rng.integers(0, 3, size=100)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (100, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_proba_are_leaf_class_frequencies(self):
        X = np.array([[0.0], [0.0], [0.0], [1.0]])
        y = np.array([0, 0, 1, 1])
        stump = DecisionTreeClassifier(max_depth=1, min_samples_leaf=1).fit(X, y)
        proba = stump.predict_proba(np.array([[0.0]]))
        assert proba[0, 0] == pytest.approx(2 / 3)

    def test_classes_sorted(self):
        X = np.zeros((4, 1))
        X[:2] = 1.0
        tree = DecisionTreeClassifier().fit(X, np.array(["z", "z", "a", "a"], dtype=object))
        assert list(tree.classes_) == ["a", "z"]

    def test_overfits_training_data_at_depth(self, rng):
        X = rng.random((60, 4))
        y = rng.integers(0, 2, size=60)
        tree = DecisionTreeClassifier(max_depth=30).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95


class TestBestSplitProperty:
    """``_best_split`` against a brute-force O(n²) reference."""

    @staticmethod
    def _brute_force_best_gain(x, targets, min_samples_leaf):
        parent_sse = ((targets - targets.mean(axis=0)) ** 2).sum()
        best = None
        for cut in np.unique(x)[:-1]:
            go_left = x <= cut
            n_left, n_right = int(go_left.sum()), int((~go_left).sum())
            if n_left < min_samples_leaf or n_right < min_samples_leaf:
                continue
            left, right = targets[go_left], targets[~go_left]
            child_sse = ((left - left.mean(axis=0)) ** 2).sum()
            child_sse += ((right - right.mean(axis=0)) ** 2).sum()
            gain = parent_sse - child_sse
            if best is None or gain > best:
                best = float(gain)
        return best

    @given(
        values=st.lists(
            st.floats(-10, 10, allow_nan=False, width=32), min_size=2, max_size=25
        ),
        target_seed=st.integers(0, 2**31 - 1),
        min_samples_leaf=st.integers(1, 3),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, values, target_seed, min_samples_leaf):
        x = np.asarray(values, dtype=np.float64)
        targets = np.random.default_rng(target_seed).normal(size=(len(x), 1))
        found = _best_split(x, targets, min_samples_leaf)
        reference = self._brute_force_best_gain(x, targets, min_samples_leaf)
        if found is None:
            # The vectorized pass may only decline splits whose brute-force
            # gain is (numerically) zero.
            assert reference is None or reference <= 1e-7
            return
        threshold, gain = found
        assert reference is not None
        assert gain == pytest.approx(reference, rel=1e-6, abs=1e-8)
        go_left = x <= threshold
        assert go_left.sum() >= min_samples_leaf
        assert (~go_left).sum() >= min_samples_leaf


class TestHistEngine:
    """The histogram (binned) tree engine vs. the exact engine."""

    def test_invalid_tree_method_raises(self):
        X = np.zeros((4, 1))
        y = np.zeros(4)
        with pytest.raises(DataValidationError):
            DecisionTreeRegressor(tree_method="approx").fit(X, y)

    def test_identical_predictions_on_separated_data(self):
        # Well-separated plateaus: both engines must recover the exact
        # piecewise-constant function, down to identical predictions.
        X = np.linspace(0, 1, 120).reshape(-1, 1)
        y = np.select(
            [X.ravel() < 0.3, X.ravel() < 0.7], [0.0, 5.0], default=10.0
        )
        exact = DecisionTreeRegressor(max_depth=3, tree_method="exact").fit(X, y)
        hist = DecisionTreeRegressor(max_depth=3, tree_method="hist").fit(X, y)
        assert np.array_equal(exact.predict(X), hist.predict(X))
        assert np.allclose(hist.predict(X), y)

    def test_parity_on_noisy_regression(self, rng):
        X = rng.normal(size=(500, 6))
        y = X @ rng.normal(size=6) + 0.2 * rng.normal(size=500)
        holdout = rng.normal(size=(200, 6))
        truth = holdout @ np.zeros(6)  # placeholder; compare on train fit
        exact = DecisionTreeRegressor(max_depth=6, tree_method="exact").fit(X, y)
        hist = DecisionTreeRegressor(max_depth=6, tree_method="hist").fit(X, y)
        r2_exact = r2_score(y, exact.predict(X))
        r2_hist = r2_score(y, hist.predict(X))
        assert abs(r2_exact - r2_hist) < 0.05
        assert r2_hist > 0.7

    def test_fit_binned_equals_fit(self, rng):
        X = rng.normal(size=(150, 4))
        y = rng.normal(size=150)
        direct = DecisionTreeRegressor(max_depth=5, tree_method="hist").fit(X, y)
        shared = DecisionTreeRegressor(max_depth=5, tree_method="hist").fit_binned(
            bin_matrix(X, 256), y
        )
        assert np.array_equal(direct.predict(X), shared.predict(X))

    def test_fit_binned_requires_hist(self, rng):
        X = rng.normal(size=(20, 2))
        y = rng.normal(size=20)
        with pytest.raises(DataValidationError):
            DecisionTreeRegressor(tree_method="exact").fit_binned(bin_matrix(X), y)

    def test_deterministic_given_seed(self, rng):
        X = rng.random((80, 5))
        y = rng.random(80)
        kwargs = dict(max_features=2, random_state=7, tree_method="hist")
        a = DecisionTreeRegressor(**kwargs).fit(X, y).predict(X)
        b = DecisionTreeRegressor(**kwargs).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_min_samples_leaf(self, rng):
        X = rng.random((60, 3))
        y = rng.random(60)
        tree = DecisionTreeRegressor(
            max_depth=20, min_samples_leaf=10, tree_method="hist"
        ).fit(X, y)
        _, counts = np.unique(tree.apply(X), return_counts=True)
        assert counts.min() >= 10

    def test_max_depth(self, rng):
        X = rng.random((200, 3))
        y = rng.random(200)
        stump = DecisionTreeRegressor(max_depth=1, tree_method="hist").fit(X, y)
        assert len(np.unique(stump.predict(X))) <= 2

    def test_classifier_parity(self, rng):
        X = rng.normal(size=(300, 5))
        y = (X @ rng.normal(size=5) > 0).astype(np.int64)
        exact = DecisionTreeClassifier(max_depth=6, tree_method="exact").fit(X, y)
        hist = DecisionTreeClassifier(max_depth=6, tree_method="hist").fit(X, y)
        acc_exact = (exact.predict(X) == y).mean()
        acc_hist = (hist.predict(X) == y).mean()
        assert abs(acc_exact - acc_hist) < 0.05
        assert acc_hist > 0.85

    def test_classifier_fit_binned_subset_rows(self, rng):
        # fit_binned with a row subset must only learn from those rows:
        # the held-out half carries inverted labels, so any leakage would
        # wreck the accuracy on the training subset.
        X = rng.normal(size=(100, 3))
        y = (X[:, 0] > 0).astype(np.int64)
        y[50:] = 1 - y[50:]
        rows = np.arange(50)
        sub = DecisionTreeClassifier(max_depth=4, tree_method="hist").fit_binned(
            bin_matrix(X), y, rows=rows
        )
        assert (sub.predict(X[rows]) == y[rows]).mean() > 0.9


class TestFlatTreeFrozenCache:
    def test_set_leaf_values_invalidates_frozen(self, rng):
        # Regression test: predict() caches frozen arrays; a later
        # set_leaf_values (boosting's Newton step) must drop the cache so
        # the new leaf outputs are actually used.
        X = rng.random((50, 2))
        y = rng.random(50)
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        flat = tree.tree_
        flat.predict(X)
        assert flat._frozen is not None
        leaves = np.unique(flat.apply(X))
        flat.set_leaf_values({int(leaf): 99.0 for leaf in leaves})
        assert flat._frozen is None
        assert np.all(flat.predict(X) == 99.0)


class TestLevelWiseRoutingParity:
    """Level-wise vectorized routing against the reference traversal."""

    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    @pytest.mark.parametrize("depth", [1, 3, 8])
    def test_regressor_routing_bit_identical(self, rng, tree_method, depth):
        X = rng.normal(size=(200, 5))
        y = X[:, 0] * 2 + rng.normal(scale=0.1, size=200)
        tree = DecisionTreeRegressor(
            max_depth=depth, tree_method=tree_method
        ).fit(X, y)
        fresh = rng.normal(size=(64, 5))
        for batch in (X, fresh, fresh[:1], fresh[:0]):
            flat = tree.tree_
            assert np.array_equal(flat.apply(batch), flat.apply_reference(batch))
            assert (
                flat.predict(batch).tobytes()
                == flat.predict_reference(batch).tobytes()
            )

    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    def test_classifier_routing_bit_identical(self, rng, tree_method):
        X = rng.normal(size=(150, 4))
        y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
        tree = DecisionTreeClassifier(max_depth=6, tree_method=tree_method).fit(X, y)
        flat = tree.tree_
        batch = rng.normal(size=(80, 4))
        assert np.array_equal(flat.apply(batch), flat.apply_reference(batch))
        assert (
            flat.predict(batch).tobytes() == flat.predict_reference(batch).tobytes()
        )

    def test_leaf_only_tree_routes_everything_to_root(self, rng):
        tree = DecisionTreeRegressor(max_depth=1).fit(
            np.zeros((4, 2)), np.full(4, 3.0)
        )
        flat = tree.tree_
        batch = rng.random((10, 2))
        assert np.all(flat.apply(batch) == 0)
        assert np.array_equal(flat.apply(batch), flat.apply_reference(batch))
