"""Tests for the quantile binning behind the histogram tree engine."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.binning import (
    MAX_BINS_LIMIT,
    TREE_METHODS,
    BinnedMatrix,
    bin_matrix,
    check_max_bins,
    check_tree_method,
)


class TestValidation:
    def test_tree_methods_accepted(self):
        for method in TREE_METHODS:
            check_tree_method(method)

    def test_unknown_tree_method_raises(self):
        with pytest.raises(DataValidationError):
            check_tree_method("approx")

    @pytest.mark.parametrize("max_bins", [2, 16, MAX_BINS_LIMIT])
    def test_valid_max_bins(self, max_bins):
        check_max_bins(max_bins)

    @pytest.mark.parametrize("max_bins", [0, 1, MAX_BINS_LIMIT + 1])
    def test_invalid_max_bins_raises(self, max_bins):
        with pytest.raises(DataValidationError):
            check_max_bins(max_bins)


class TestBinMatrix:
    def test_shapes_and_dtype(self, rng):
        X = rng.normal(size=(100, 4))
        binned = bin_matrix(X, max_bins=16)
        assert isinstance(binned, BinnedMatrix)
        assert binned.codes.shape == (100, 4)
        assert binned.codes.dtype == np.uint8
        assert binned.n_rows == 100
        assert binned.n_features == 4
        assert binned.n_bins <= 16
        assert len(binned.edges) == 4

    def test_codes_threshold_consistency(self, rng):
        # The invariant the hist engine relies on: for every boundary b,
        # code <= b is the same partition as x <= edges[b].
        X = rng.normal(size=(200, 3))
        binned = bin_matrix(X, max_bins=8)
        for j in range(3):
            for b, edge in enumerate(binned.edges[j]):
                by_code = binned.codes[:, j] <= b
                by_value = X[:, j] <= edge
                assert np.array_equal(by_code, by_value)

    def test_few_uniques_get_their_own_bins(self):
        X = np.array([[0.0], [0.0], [1.0], [2.0], [2.0], [1.0]])
        binned = bin_matrix(X, max_bins=256)
        # Three distinct values -> three distinct codes.
        assert len(np.unique(binned.codes)) == 3
        codes = binned.codes[:, 0]
        assert codes[0] == codes[1] < codes[2] == codes[5] < codes[3]

    def test_constant_feature_single_code(self):
        X = np.ones((10, 2))
        binned = bin_matrix(X)
        assert np.all(binned.codes == 0)
        assert binned.edges[0].size == 0

    def test_flat_codes_offset_per_feature(self, rng):
        X = rng.normal(size=(50, 3))
        binned = bin_matrix(X, max_bins=8)
        expected = binned.codes.astype(np.int64) + np.arange(3) * binned.n_bins
        assert np.array_equal(binned.flat, expected)

    def test_quantile_binning_balances_counts(self, rng):
        X = rng.normal(size=(4000, 1))
        binned = bin_matrix(X, max_bins=8)
        counts = np.bincount(binned.codes[:, 0], minlength=binned.n_bins)
        occupied = counts[counts > 0]
        # Quantile edges keep the bins roughly equally filled.
        assert occupied.min() > 0.5 * 4000 / 8

    def test_edge_mask_marks_real_boundaries(self):
        X = np.column_stack([np.arange(10.0), np.ones(10)])
        binned = bin_matrix(X, max_bins=4)
        mask = binned.edge_mask()
        assert mask.shape == (2, binned.n_bins - 1)
        assert mask[0].any()
        assert not mask[1].any()  # constant feature has no boundaries

    def test_ulp_adjacent_uniques_still_separate(self):
        a = 0.5
        b = np.nextafter(a, 1.0)
        X = np.array([[a], [a], [b], [b]])
        binned = bin_matrix(X)
        codes = binned.codes[:, 0]
        assert codes[0] == codes[1] != codes[2]
        edge = binned.edges[0][0]
        assert np.array_equal(X[:, 0] <= edge, codes <= 0)

    def test_rejects_bad_max_bins(self, rng):
        with pytest.raises(DataValidationError):
            bin_matrix(rng.normal(size=(10, 2)), max_bins=1)
