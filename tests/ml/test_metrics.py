"""Metric implementations checked against hand-computed values and scipy."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.metrics import (
    accuracy_score,
    confusion_counts,
    f1_score,
    log_loss,
    mean_absolute_error,
    mean_squared_error,
    precision_score,
    r2_score,
    recall_score,
    roc_auc_score,
    score_predictions,
)


class TestAccuracy:
    def test_hand_value(self):
        assert accuracy_score([1, 0, 1, 1], [1, 1, 1, 0]) == 0.5

    def test_string_labels(self):
        assert accuracy_score(["a", "b"], ["a", "a"]) == 0.5

    def test_perfect_and_zero(self):
        assert accuracy_score([1, 1], [1, 1]) == 1.0
        assert accuracy_score([1, 1], [0, 0]) == 0.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            accuracy_score([1, 0], [1])

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            accuracy_score([], [])


class TestRegressionMetrics:
    def test_mae_hand_value(self):
        assert mean_absolute_error([1.0, 2.0], [2.0, 4.0]) == 1.5

    def test_mse_hand_value(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 4.0]) == 2.5

    def test_r2_perfect_is_one(self):
        assert r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_predictor_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [2.0, 2.0]) == 1.0
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0


class TestConfusionBasedMetrics:
    # y_true: 3 positives, 2 negatives; predictions hit 2 tp, 1 fp.
    y_true = [1, 1, 1, 0, 0]
    y_pred = [1, 1, 0, 1, 0]

    def test_confusion_counts(self):
        assert confusion_counts(self.y_true, self.y_pred) == (2, 1, 1, 1)

    def test_precision(self):
        assert precision_score(self.y_true, self.y_pred) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score(self.y_true, self.y_pred) == pytest.approx(2 / 3)

    def test_f1(self):
        assert f1_score(self.y_true, self.y_pred) == pytest.approx(2 / 3)

    def test_f1_degenerate_no_positives_predicted_or_present(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_precision_zero_when_nothing_predicted_positive(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_recall_zero_when_no_positives_exist(self):
        assert recall_score([0, 0], [1, 0]) == 0.0

    def test_custom_positive_label(self):
        assert f1_score(["y", "n"], ["y", "y"], positive="y") == pytest.approx(2 / 3)


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self, rng):
        y = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert roc_auc_score(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_get_mid_rank(self):
        # All scores tied: AUC must be exactly 0.5.
        assert roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == 0.5

    def test_matches_trapezoid_small_case(self):
        y = np.array([0, 1, 0, 1, 1])
        scores = np.array([0.1, 0.3, 0.35, 0.8, 0.9])
        # Pairs: positives {0.3, 0.8, 0.9}, negatives {0.1, 0.35}.
        # Correctly ordered pairs: (0.3>0.1), (0.8>both), (0.9>both) = 5/6.
        assert roc_auc_score(y, scores) == pytest.approx(5 / 6)

    def test_single_class_raises(self):
        with pytest.raises(DataValidationError):
            roc_auc_score([1, 1], [0.2, 0.3])


class TestLogLoss:
    def test_hand_value(self):
        proba = np.array([[0.9, 0.1], [0.2, 0.8]])
        expected = -np.mean([np.log(0.9), np.log(0.8)])
        assert log_loss([0, 1], proba) == pytest.approx(expected)

    def test_clipping_avoids_infinity(self):
        proba = np.array([[1.0, 0.0]])
        assert np.isfinite(log_loss([1], proba))

    def test_misaligned_raises(self):
        with pytest.raises(DataValidationError):
            log_loss([0, 1], np.array([[0.5, 0.5]]))


class TestScorePredictions:
    def test_accuracy_route(self):
        assert score_predictions("accuracy", np.array([1, 0]), np.array([1, 1])) == 0.5

    def test_roc_auc_requires_proba(self):
        with pytest.raises(DataValidationError):
            score_predictions("roc_auc", np.array([1, 0]), np.array([1, 0]))

    def test_roc_auc_route(self):
        y = np.array([0, 0, 1, 1])
        proba = np.column_stack([1 - np.array([0.1, 0.2, 0.8, 0.9]), [0.1, 0.2, 0.8, 0.9]])
        assert score_predictions("roc_auc", y, y, proba=proba) == 1.0

    def test_unknown_metric_raises(self):
        with pytest.raises(DataValidationError):
            score_predictions("nope", np.array([1]), np.array([1]))


class TestPinballLoss:
    def test_hand_value(self):
        from repro.ml.metrics import pinball_loss

        # Under-prediction of 1.0 costs tau; over-prediction costs 1-tau.
        assert pinball_loss([1.0], [0.0], tau=0.9) == pytest.approx(0.9)
        assert pinball_loss([0.0], [1.0], tau=0.9) == pytest.approx(0.1)

    def test_median_pinball_is_half_mae(self):
        from repro.ml.metrics import mean_absolute_error, pinball_loss

        rng = np.random.default_rng(0)
        y_true, y_pred = rng.normal(size=50), rng.normal(size=50)
        assert pinball_loss(y_true, y_pred, tau=0.5) == pytest.approx(
            0.5 * mean_absolute_error(y_true, y_pred)
        )

    def test_minimized_at_the_empirical_quantile(self):
        from repro.ml.metrics import pinball_loss

        rng = np.random.default_rng(1)
        y = rng.exponential(size=500)
        tau = 0.8
        at_quantile = pinball_loss(y, np.full_like(y, np.quantile(y, tau)), tau=tau)
        for candidate in (0.2, 0.5, 0.95):
            other = pinball_loss(y, np.full_like(y, np.quantile(y, candidate)), tau=tau)
            assert at_quantile <= other + 1e-12

    def test_shape_mismatch_raises(self):
        from repro.ml.metrics import pinball_loss

        with pytest.raises(DataValidationError):
            pinball_loss([1.0, 2.0], [1.0])
