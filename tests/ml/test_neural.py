"""Tests for the MLP classifier."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.metrics import accuracy_score
from repro.ml.neural import MLPClassifier


class TestMLPClassifier:
    def test_learns_linear_problem(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        model = MLPClassifier(epochs=25, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_learns_xor_nonlinearity(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(600, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        model = MLPClassifier(hidden=(32, 16), epochs=60, random_state=0).fit(X[:450], y[:450])
        assert accuracy_score(y[450:], model.predict(X[450:])) > 0.9

    def test_proba_rows_sum_to_one(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = MLPClassifier(epochs=3, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_handles_nan_and_inf_at_predict(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        model = MLPClassifier(epochs=3, random_state=0).fit(X_train, y_train)
        corrupted = X_test.copy()
        corrupted[0, 0] = np.nan
        corrupted[1, 0] = np.inf
        proba = model.predict_proba(corrupted)
        assert np.all(np.isfinite(proba))

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        centers = np.array([[0.0, 0.0], [3.0, 0.0], [0.0, 3.0]])
        X = np.concatenate([rng.normal(c, 0.4, size=(50, 2)) for c in centers])
        y = np.repeat(["a", "b", "c"], 50).astype(object)
        model = MLPClassifier(epochs=40, random_state=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_invalid_hidden_raises(self):
        with pytest.raises(DataValidationError):
            MLPClassifier(hidden=(10,))
        with pytest.raises(DataValidationError):
            MLPClassifier(hidden=(10, 0))

    def test_feature_count_mismatch_raises(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        model = MLPClassifier(epochs=1, random_state=0).fit(X_train, y_train)
        with pytest.raises(DataValidationError):
            model.predict_proba(np.zeros((2, 3)))

    def test_deterministic_given_seed(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        a = MLPClassifier(epochs=2, random_state=3).fit(X_train, y_train).predict_proba(X_test)
        b = MLPClassifier(epochs=2, random_state=3).fit(X_train, y_train).predict_proba(X_test)
        assert np.array_equal(a, b)
