"""Tests for k-fold CV, cross_val_score and grid search."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import SGDClassifier
from repro.ml.model_selection import (
    GridSearchCV,
    KFold,
    cross_val_score,
    matrix_train_test_split,
)


class TestKFold:
    def test_folds_partition_the_data(self):
        seen = []
        for train_idx, val_idx in KFold(5, random_state=0).split(100):
            assert len(set(train_idx) & set(val_idx)) == 0
            seen.extend(val_idx)
        assert sorted(seen) == list(range(100))

    def test_validation_sizes_are_balanced(self):
        sizes = [len(v) for _, v in KFold(3, random_state=0).split(10)]
        assert sorted(sizes) == [3, 3, 4]

    def test_too_few_rows_raise(self):
        with pytest.raises(DataValidationError):
            list(KFold(5).split(3))

    def test_n_splits_below_two_raises(self):
        with pytest.raises(DataValidationError):
            KFold(1)

    def test_shuffling_depends_on_seed(self):
        a = [tuple(v) for _, v in KFold(2, random_state=0).split(10)]
        b = [tuple(v) for _, v in KFold(2, random_state=1).split(10)]
        assert a != b


class TestCrossValScore:
    def test_classifier_scored_by_accuracy(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        scores = cross_val_score(
            SGDClassifier(epochs=5, random_state=0), X_train, y_train, n_splits=3
        )
        assert scores.shape == (3,)
        assert np.all((scores >= 0) & (scores <= 1))
        assert scores.mean() > 0.8

    def test_regressor_scored_by_negative_mae(self):
        rng = np.random.default_rng(0)
        X = rng.random((90, 3))
        y = X @ np.array([1.0, 2.0, -1.0])
        scores = cross_val_score(
            RandomForestRegressor(n_trees=10, random_state=0), X, y, n_splits=3
        )
        assert np.all(scores <= 0)  # negative MAE

    def test_does_not_mutate_input_estimator(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        estimator = SGDClassifier(epochs=2, random_state=0)
        cross_val_score(estimator, X_train, y_train, n_splits=3)
        assert not hasattr(estimator, "coef_")


class TestGridSearchCV:
    def test_picks_best_and_refits(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        search = GridSearchCV(
            SGDClassifier(random_state=0),
            param_grid={"learning_rate": [1e-6, 0.1]},
            n_splits=3,
        ).fit(X_train, y_train)
        # A vanishing learning rate cannot learn; the grid must reject it.
        assert search.best_params_["learning_rate"] == 0.1
        assert (search.predict(X_test) == y_test).mean() > 0.8

    def test_cv_results_cover_full_grid(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        search = GridSearchCV(
            SGDClassifier(epochs=2, random_state=0),
            param_grid={"penalty": ["l1", "l2"], "alpha": [1e-4, 1e-3]},
            n_splits=3,
        ).fit(X_train, y_train)
        assert len(search.cv_results_) == 4

    def test_exposes_classes_for_classifiers(self, binary_matrix_problem):
        X_train, y_train, _, _ = binary_matrix_problem
        search = GridSearchCV(
            SGDClassifier(epochs=2, random_state=0),
            param_grid={"alpha": [1e-4]},
            n_splits=3,
        ).fit(X_train, y_train)
        assert list(search.classes_) == [0, 1]
        assert search.predict_proba(X_train).shape == (len(X_train), 2)

    def test_works_for_regressors(self):
        rng = np.random.default_rng(0)
        X = rng.random((60, 3))
        y = X @ np.array([1.0, -1.0, 0.5])
        search = GridSearchCV(
            RandomForestRegressor(random_state=0),
            param_grid={"n_trees": [2, 10]},
            n_splits=3,
        ).fit(X, y)
        assert search.best_params_["n_trees"] in (2, 10)
        assert search.predict(X).shape == (60,)

    def test_empty_grid_raises(self):
        with pytest.raises(DataValidationError):
            GridSearchCV(SGDClassifier(), param_grid={})


class TestMatrixTrainTestSplit:
    def test_sizes_and_disjointness(self):
        X = np.arange(100, dtype=float).reshape(-1, 1)
        y = np.arange(100)
        X_train, y_train, X_test, y_test = matrix_train_test_split(X, y, 0.2, random_state=0)
        assert len(X_test) == 20 and len(X_train) == 80
        assert not set(y_train) & set(y_test)

    def test_invalid_fraction_raises(self):
        with pytest.raises(DataValidationError):
            matrix_train_test_split(np.zeros((10, 1)), np.zeros(10), 1.5)
