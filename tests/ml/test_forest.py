"""Tests for random forests."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.metrics import accuracy_score, mean_absolute_error


class TestRandomForestRegressor:
    def test_learns_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = X[:, 0] ** 2 + 0.5 * X[:, 1]
        forest = RandomForestRegressor(n_trees=30, random_state=0).fit(X[:300], y[:300])
        assert mean_absolute_error(y[300:], forest.predict(X[300:])) < 0.1

    def test_more_trees_reduce_variance(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 4))
        y = X @ np.array([1.0, -2.0, 0.5, 0.0]) + 0.3 * rng.normal(size=300)
        small = RandomForestRegressor(n_trees=2, random_state=0).fit(X[:200], y[:200])
        large = RandomForestRegressor(n_trees=40, random_state=0).fit(X[:200], y[:200])
        err_small = mean_absolute_error(y[200:], small.predict(X[200:]))
        err_large = mean_absolute_error(y[200:], large.predict(X[200:]))
        assert err_large <= err_small

    def test_prediction_is_tree_average(self):
        rng = np.random.default_rng(2)
        X = rng.random((50, 2))
        y = rng.random(50)
        forest = RandomForestRegressor(n_trees=5, random_state=0).fit(X, y)
        manual = np.mean([tree.predict(X) for tree in forest.trees_], axis=0)
        assert np.allclose(forest.predict(X), manual)

    def test_max_features_options(self):
        rng = np.random.default_rng(3)
        X = rng.random((60, 9))
        y = rng.random(60)
        for option in ("sqrt", "third", 4, None):
            RandomForestRegressor(n_trees=3, max_features=option, random_state=0).fit(X, y)

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(4)
        X = rng.random((80, 3))
        y = rng.random(80)
        a = RandomForestRegressor(n_trees=5, random_state=9).fit(X, y).predict(X)
        b = RandomForestRegressor(n_trees=5, random_state=9).fit(X, y).predict(X)
        assert np.array_equal(a, b)


class TestRandomForestClassifier:
    def test_learns_binary_problem(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        forest = RandomForestClassifier(n_trees=30, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, forest.predict(X_test)) > 0.8

    def test_proba_rows_sum_to_one(self, binary_matrix_problem):
        X_train, y_train, X_test, _ = binary_matrix_problem
        forest = RandomForestClassifier(n_trees=10, random_state=0).fit(X_train, y_train)
        proba = forest.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_string_classes(self):
        rng = np.random.default_rng(0)
        X = rng.random((60, 2))
        y = np.where(X[:, 0] > 0.5, "hot", "cold").astype(object)
        forest = RandomForestClassifier(n_trees=5, random_state=0).fit(X, y)
        assert set(forest.predict(X)) <= {"hot", "cold"}
        assert list(forest.classes_) == ["cold", "hot"]

    def test_multiclass(self):
        rng = np.random.default_rng(1)
        X = rng.random((150, 2))
        y = (X[:, 0] * 3).astype(int)
        forest = RandomForestClassifier(n_trees=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (150, 3)
        assert (forest.predict(X) == y).mean() > 0.9

    def test_tiny_input_keeps_all_classes(self):
        # Bootstraps of tiny datasets can drop a class; the forest must
        # still produce aligned probability columns.
        X = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([0, 0, 1, 1])
        forest = RandomForestClassifier(n_trees=5, random_state=0).fit(X, y)
        assert forest.predict_proba(X).shape == (4, 2)
