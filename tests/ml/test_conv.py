"""Tests for the convolutional network and its im2col plumbing."""

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.ml.conv import ConvNetClassifier, _maxpool_backward, _maxpool_forward, col2im, im2col


class TestIm2Col:
    def test_patch_extraction_matches_naive(self):
        rng = np.random.default_rng(0)
        images = rng.random((2, 3, 6, 6))
        kernel = 3
        cols = im2col(images, kernel)
        n, c, h, w = images.shape
        out = h - kernel + 1
        assert cols.shape == (2, out * out, c * kernel * kernel)
        # Check one specific patch against a naive slice.
        patch = images[1, :, 2 : 2 + kernel, 1 : 1 + kernel].reshape(-1)
        assert np.allclose(cols[1, 2 * out + 1], patch)

    def test_col2im_is_adjoint_of_im2col(self):
        # <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint test).
        rng = np.random.default_rng(1)
        images = rng.random((2, 2, 5, 5))
        kernel = 3
        cols = im2col(images, kernel)
        y = rng.random(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((images * col2im(y, images.shape, kernel)).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestMaxPool:
    def test_forward_picks_maxima(self):
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled, _ = _maxpool_forward(image)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled[0, 0, 0, 0] == 5.0
        assert pooled[0, 0, 1, 1] == 15.0

    def test_backward_routes_gradient_to_maxima(self):
        image = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled, mask = _maxpool_forward(image)
        grad = np.ones_like(pooled)
        upstream = _maxpool_backward(grad, mask, image.shape)
        # Gradient lands only on the four maxima positions.
        assert upstream.sum() == 4.0
        assert upstream[0, 0, 1, 1] == 1.0  # value 5 is the max of its window
        assert upstream[0, 0, 0, 0] == 0.0


class TestConvNetClassifier:
    @pytest.fixture(scope="class")
    def image_problem(self):
        """Bright-left vs bright-right 12x12 images."""
        rng = np.random.default_rng(0)
        n = 240
        images = rng.normal(scale=0.1, size=(n, 12, 12))
        labels = np.zeros(n, dtype=int)
        half = n // 2
        images[:half, :, :5] += 1.0
        images[half:, :, 7:] += 1.0
        labels[half:] = 1
        order = rng.permutation(n)
        X = images[order].reshape(n, -1)
        return X[:180], labels[order][:180], X[180:], labels[order][180:]

    def test_learns_spatial_pattern(self, image_problem):
        X_train, y_train, X_test, y_test = image_problem
        model = ConvNetClassifier(
            image_shape=(12, 12), conv_channels=(4, 8), dense_width=16,
            epochs=3, random_state=0,
        ).fit(X_train, y_train)
        assert (model.predict(X_test) == y_test).mean() > 0.9

    def test_proba_rows_sum_to_one(self, image_problem):
        X_train, y_train, X_test, _ = image_problem
        model = ConvNetClassifier(
            image_shape=(12, 12), conv_channels=(2, 4), dense_width=8,
            epochs=1, random_state=0,
        ).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_wrong_pixel_count_raises(self, image_problem):
        X_train, y_train, _, _ = image_problem
        model = ConvNetClassifier(
            image_shape=(12, 12), conv_channels=(2, 4), dense_width=8,
            epochs=1, random_state=0,
        ).fit(X_train, y_train)
        with pytest.raises(DataValidationError):
            model.predict_proba(np.zeros((1, 100)))

    def test_nan_pixels_handled_at_predict(self, image_problem):
        X_train, y_train, X_test, _ = image_problem
        model = ConvNetClassifier(
            image_shape=(12, 12), conv_channels=(2, 4), dense_width=8,
            epochs=1, random_state=0,
        ).fit(X_train, y_train)
        corrupted = X_test.copy()
        corrupted[0, :10] = np.nan
        assert np.all(np.isfinite(model.predict_proba(corrupted)))
