"""Failure injection: pathological inputs must fail loudly or degrade
gracefully — never crash with an unrelated error or return garbage
silently."""

import numpy as np
import pytest

from repro.core.blackbox import BlackBoxModel
from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import DataValidationError, ReproError
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class TestPathologicalFrames:
    def test_all_missing_categorical_column_encodes_to_zeros(self, income_splits):
        encoder = TabularEncoder(text_features=8).fit(income_splits.train)
        blanked = income_splits.serving.copy()
        column = income_splits.serving.categorical_columns[0]
        blanked.set_values(column, np.arange(len(blanked)), None)
        out = encoder.transform(blanked)
        assert np.all(np.isfinite(out))

    def test_all_nan_numeric_column_is_imputed(self, income_splits):
        encoder = TabularEncoder(text_features=8).fit(income_splits.train)
        blanked = income_splits.serving.copy()
        column = income_splits.serving.numeric_columns[0]
        blanked.set_values(column, np.arange(len(blanked)), np.full(len(blanked), np.nan))
        out = encoder.transform(blanked)
        assert np.all(np.isfinite(out))

    def test_inf_values_do_not_produce_nan_probabilities(self, income_blackbox, income_splits):
        poisoned = income_splits.serving.copy()
        column = income_splits.serving.numeric_columns[0]
        poisoned.set_values(column, np.array([0, 1]), np.array([np.inf, -np.inf]))
        proba = income_blackbox.predict_proba(poisoned)
        assert np.all(np.isfinite(proba))

    def test_single_row_serving_batch(self, income_blackbox, income_splits):
        one_row = income_splits.serving.head(1)
        proba = income_blackbox.predict_proba(one_row)
        assert proba.shape == (1, 2)


class TestPredictorUnderPathology:
    @pytest.fixture(scope="class")
    def predictor(self, income_blackbox, income_splits):
        return PerformancePredictor(
            income_blackbox, [MissingValues(), Scaling()], n_samples=30, random_state=0
        ).fit(income_splits.test, income_splits.y_test)

    def test_estimate_on_tiny_batch_is_bounded(self, predictor, income_splits):
        estimate = predictor.predict(income_splits.serving.head(3))
        assert 0.0 <= estimate <= 1.0

    def test_estimate_on_constant_inputs_is_bounded(self, predictor, income_splits):
        frozen = income_splits.serving.copy()
        for column in frozen.numeric_columns:
            frozen.set_values(column, np.arange(len(frozen)), np.zeros(len(frozen)))
        estimate = predictor.predict(frozen)
        assert 0.0 <= estimate <= 1.0

    def test_estimate_on_extreme_values_is_bounded(self, predictor, income_splits):
        exploded = income_splits.serving.copy()
        for column in exploded.numeric_columns:
            exploded.set_values(
                column, np.arange(len(exploded)), exploded[column] * 1e12
            )
        estimate = predictor.predict(exploded)
        assert 0.0 <= estimate <= 1.0


class TestContractViolations:
    def test_blackbox_returning_wrong_shape_is_caught(self, income_splits):
        lying = BlackBoxModel(
            lambda frame: np.zeros((len(frame), 5)), classes=np.array(["a", "b"])
        )
        with pytest.raises(DataValidationError):
            lying.predict_proba(income_splits.serving)

    def test_every_library_error_is_a_repro_error(self):
        # API boundary promise: one base class to catch.
        from repro.exceptions import (
            CorruptionError,
            DataValidationError,
            NotFittedError,
            SchemaError,
            ServiceError,
        )

        for error_type in (
            CorruptionError, DataValidationError, NotFittedError, SchemaError, ServiceError,
        ):
            assert issubclass(error_type, ReproError)

    def test_pipeline_refuses_label_count_mismatch(self, income_splits):
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=1))
        with pytest.raises(DataValidationError):
            pipeline.fit(income_splits.train, income_splits.y_train[:-5])

    def test_schema_drift_between_fit_and_serve_is_caught(self, income_splits):
        pipeline = Pipeline(TabularEncoder(text_features=8), SGDClassifier(epochs=1))
        pipeline.fit(income_splits.train, income_splits.y_train)
        drifted = income_splits.serving.drop_columns(
            income_splits.serving.categorical_columns[0]
        )
        with pytest.raises(DataValidationError, match="schema"):
            pipeline.predict_proba(drifted)

    def test_tiny_frames_fail_cleanly_in_split(self):
        frame = DataFrame.from_dict({"x": [1.0]}, {"x": ColumnType.NUMERIC})
        from repro.tabular.ops import balance_classes

        with pytest.raises(DataValidationError):
            balance_classes(frame, np.array(["only"], dtype=object), np.random.default_rng(0))
