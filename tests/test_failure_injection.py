"""Failure injection: pathological inputs must fail loudly or degrade
gracefully — never crash with an unrelated error or return garbage
silently."""

import numpy as np
import pytest

from repro.core.blackbox import BlackBoxModel
from repro.core.corruption import CorruptionSampler
from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import (
    DataValidationError,
    ParallelExecutionError,
    ReproError,
)
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.parallel import Executor
from repro.resilience import (
    CheckpointStore,
    CircuitBreaker,
    FakeClock,
    FaultyCallable,
    InjectedFault,
    WorkerCrash,
)
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class TestPathologicalFrames:
    def test_all_missing_categorical_column_encodes_to_zeros(self, income_splits):
        encoder = TabularEncoder(text_features=8).fit(income_splits.train)
        blanked = income_splits.serving.copy()
        column = income_splits.serving.categorical_columns[0]
        blanked.set_values(column, np.arange(len(blanked)), None)
        out = encoder.transform(blanked)
        assert np.all(np.isfinite(out))

    def test_all_nan_numeric_column_is_imputed(self, income_splits):
        encoder = TabularEncoder(text_features=8).fit(income_splits.train)
        blanked = income_splits.serving.copy()
        column = income_splits.serving.numeric_columns[0]
        blanked.set_values(column, np.arange(len(blanked)), np.full(len(blanked), np.nan))
        out = encoder.transform(blanked)
        assert np.all(np.isfinite(out))

    def test_inf_values_do_not_produce_nan_probabilities(self, income_blackbox, income_splits):
        poisoned = income_splits.serving.copy()
        column = income_splits.serving.numeric_columns[0]
        poisoned.set_values(column, np.array([0, 1]), np.array([np.inf, -np.inf]))
        proba = income_blackbox.predict_proba(poisoned)
        assert np.all(np.isfinite(proba))

    def test_single_row_serving_batch(self, income_blackbox, income_splits):
        one_row = income_splits.serving.head(1)
        proba = income_blackbox.predict_proba(one_row)
        assert proba.shape == (1, 2)


class TestPredictorUnderPathology:
    @pytest.fixture(scope="class")
    def predictor(self, income_blackbox, income_splits):
        return PerformancePredictor(
            income_blackbox, [MissingValues(), Scaling()], n_samples=30, random_state=0
        ).fit(income_splits.test, income_splits.y_test)

    def test_estimate_on_tiny_batch_is_bounded(self, predictor, income_splits):
        estimate = predictor.predict(income_splits.serving.head(3))
        assert 0.0 <= estimate <= 1.0

    def test_estimate_on_constant_inputs_is_bounded(self, predictor, income_splits):
        frozen = income_splits.serving.copy()
        for column in frozen.numeric_columns:
            frozen.set_values(column, np.arange(len(frozen)), np.zeros(len(frozen)))
        estimate = predictor.predict(frozen)
        assert 0.0 <= estimate <= 1.0

    def test_estimate_on_extreme_values_is_bounded(self, predictor, income_splits):
        exploded = income_splits.serving.copy()
        for column in exploded.numeric_columns:
            exploded.set_values(
                column, np.arange(len(exploded)), exploded[column] * 1e12
            )
        estimate = predictor.predict(exploded)
        assert 0.0 <= estimate <= 1.0


class TestContractViolations:
    def test_blackbox_returning_wrong_shape_is_caught(self, income_splits):
        lying = BlackBoxModel(
            lambda frame: np.zeros((len(frame), 5)), classes=np.array(["a", "b"])
        )
        with pytest.raises(DataValidationError):
            lying.predict_proba(income_splits.serving)

    def test_every_library_error_is_a_repro_error(self):
        # API boundary promise: one base class to catch.
        from repro.exceptions import (
            CheckpointError,
            CircuitOpenError,
            CorruptionError,
            DataValidationError,
            DeadlineExceededError,
            NotFittedError,
            ResilienceError,
            RetryExhaustedError,
            SchemaError,
            ServiceError,
        )

        for error_type in (
            CheckpointError, CircuitOpenError, CorruptionError, DataValidationError,
            DeadlineExceededError, NotFittedError, ResilienceError,
            RetryExhaustedError, SchemaError, ServiceError,
        ):
            assert issubclass(error_type, ReproError)

    def test_pipeline_refuses_label_count_mismatch(self, income_splits):
        pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=1))
        with pytest.raises(DataValidationError):
            pipeline.fit(income_splits.train, income_splits.y_train[:-5])

    def test_schema_drift_between_fit_and_serve_is_caught(self, income_splits):
        pipeline = Pipeline(TabularEncoder(text_features=8), SGDClassifier(epochs=1))
        pipeline.fit(income_splits.train, income_splits.y_train)
        drifted = income_splits.serving.drop_columns(
            income_splits.serving.categorical_columns[0]
        )
        with pytest.raises(DataValidationError, match="schema"):
            pipeline.predict_proba(drifted)

    def test_tiny_frames_fail_cleanly_in_split(self):
        frame = DataFrame.from_dict({"x": [1.0]}, {"x": ColumnType.NUMERIC})
        from repro.tabular.ops import balance_classes

        with pytest.raises(DataValidationError):
            balance_classes(frame, np.array(["only"], dtype=object), np.random.default_rng(0))


class TestBreakerUnderInjectedFaults:
    def test_open_half_open_close_around_a_flaky_dependency(self):
        # A dependency that fails its first 2 calls and then heals; the
        # breaker must shed load during the outage and re-admit traffic
        # after one successful half-open probe. Fake clock, no sleeps.
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, window=4, cooldown_seconds=30.0, clock=clock
        )
        dependency = FaultyCallable(lambda: "answer", fail_on=2)

        outcomes = []
        for step in range(6):
            if step == 4:
                clock.advance(30.0)  # cooldown elapses -> half-open
            if not breaker.allow():
                outcomes.append("shed")
                continue
            try:
                outcomes.append(dependency())
                breaker.record_success()
            except InjectedFault:
                breaker.record_failure()
                outcomes.append("failed")

        # Two failures open the breaker, the next calls are shed without
        # touching the dependency, and the half-open probe closes it.
        assert outcomes == ["failed", "failed", "shed", "shed", "answer", "answer"]
        assert breaker.state == "closed"
        assert dependency.calls == 4  # shed steps never reached it


class TestPoisonTaskQuarantine:
    @staticmethod
    def _poisoned(item):
        if item == "poison":
            raise ValueError("inedible")
        return item.upper()

    def test_map_quarantine_skips_the_poison_task(self):
        executor = Executor(n_jobs=1, backend="serial")
        results, quarantined = executor.map_quarantine(
            self._poisoned, ["a", "poison", "b"]
        )
        assert results == ["A", None, "B"]
        [record] = quarantined
        assert (record.index, record.error_type) == (1, "ValueError")
        assert record.attempts == 1
        assert "inedible" in record.message
        assert "inedible" in record.traceback_text
        assert "task 1 quarantined" in record.describe()

    def test_task_retries_recover_a_transient_worker_fault(self):
        flaky = FaultyCallable(lambda item: item * 2, fail_on=1)
        executor = Executor(n_jobs=1, backend="serial", task_retries=1)
        assert executor.map(flaky, [3, 4]) == [6, 8]
        assert flaky.calls == 3  # first call failed, retried in place

    def test_exhausted_retries_still_fail_loudly_in_map(self):
        always = FaultyCallable(lambda item: item, fail_on="all")
        executor = Executor(n_jobs=1, backend="serial", task_retries=2)
        with pytest.raises(ParallelExecutionError, match="after 3 attempt"):
            executor.map(always, [1])

    def test_worker_crash_is_not_swallowed_by_retries(self):
        # BaseException-level crashes (simulating a dying worker) must
        # escape the per-task retry loop rather than being retried.
        def crash(item):
            raise WorkerCrash("worker died")

        executor = Executor(n_jobs=1, backend="serial", task_retries=5)
        with pytest.raises(WorkerCrash):
            executor.map(crash, [1])


class TestCheckpointResumeAfterCrash:
    def _sampler(self, blackbox):
        return CorruptionSampler(
            blackbox,
            [MissingValues(), Scaling()],
            include_clean=False,
            n_jobs=1,
            backend="serial",
        )

    def test_resume_after_crash_is_bit_identical(
        self, income_blackbox, income_splits, monkeypatch, tmp_path
    ):
        frame = income_splits.test.head(120)
        labels = income_splits.y_test[:120]
        store = CheckpointStore(tmp_path / "meta-run")

        # Reference: one uninterrupted run on a fresh RNG.
        expected = self._sampler(income_blackbox).sample(
            frame, labels, 6, np.random.default_rng(11)
        )

        # Crash run: episode 4 (the 5th score call) blows up, after the
        # chunks for episodes 0-3 have been checkpointed.
        faulty = FaultyCallable(income_blackbox.score, fail_on=[4])
        monkeypatch.setattr(income_blackbox, "score", faulty)
        with pytest.raises(ParallelExecutionError):
            self._sampler(income_blackbox).sample(
                frame, labels, 6, np.random.default_rng(11),
                checkpoint=store, checkpoint_every=2,
            )
        assert store.exists()  # partial progress survived the crash

        # Resume: only the pending episodes re-run, and the meta-dataset
        # matches the uninterrupted run bit for bit.
        calls_before = faulty.calls
        resumed = self._sampler(income_blackbox).sample(
            frame, labels, 6, np.random.default_rng(11),
            checkpoint=store, checkpoint_every=2,
        )
        assert faulty.calls == calls_before + 2  # episodes 4 and 5 only
        # Regression: the sampler used to clear *caller-supplied* stores
        # on success; it only owns (and clears) stores it built itself
        # from a bare path.
        assert store.exists()
        assert len(resumed) == len(expected) == 6
        for got, want in zip(resumed, expected):
            np.testing.assert_array_equal(got.proba, want.proba)
            assert got.score == want.score

    def test_path_checkpoint_is_cleared_caller_store_survives(
        self, income_blackbox, income_splits, tmp_path
    ):
        frame = income_splits.test.head(80)
        labels = income_splits.y_test[:80]

        # A bare path: the sampler builds the store, so it clears it.
        path = tmp_path / "owned-run"
        self._sampler(income_blackbox).sample(
            frame, labels, 4, np.random.default_rng(0),
            checkpoint=path, checkpoint_every=2,
        )
        assert not CheckpointStore(path).exists()

        # A caller-supplied store survives success — the caller may be
        # sharing it across runs or inspecting it afterwards.
        store = CheckpointStore(tmp_path / "caller-run")
        self._sampler(income_blackbox).sample(
            frame, labels, 4, np.random.default_rng(0),
            checkpoint=store, checkpoint_every=2,
        )
        assert store.exists()
        store.clear()  # the caller disposes of it

    def test_checkpoint_refuses_a_different_run(
        self, income_blackbox, income_splits, tmp_path
    ):
        from repro.exceptions import CheckpointError

        frame = income_splits.test.head(80)
        labels = income_splits.y_test[:80]
        store = CheckpointStore(tmp_path / "meta-run")
        store.save({"kind": "some-other-run"}, {0: "junk"})
        with pytest.raises(CheckpointError, match="different run"):
            self._sampler(income_blackbox).sample(
                frame, labels, 4, np.random.default_rng(0), checkpoint=store
            )
