"""The replay oracle: batch labels, coverage scoring, label-budget assessment."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError
from repro.resilience.checkpoint import CheckpointStore
from repro.scenarios import (
    LABEL_SHIFT,
    DriftEvent,
    ReplayHarness,
    ReplayOutcome,
    Scenario,
    StepSchedule,
    builtin_suite,
    isolate_scenarios,
)
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry
from repro.serving.service import ValidationService
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType
from repro.uncertainty import ActiveAssessor


@pytest.fixture(scope="module")
def oracle_predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=24,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture
def new_service(oracle_predictor):
    def build(**policy_kwargs) -> ValidationService:
        policy = dict(threshold=0.05, smoothing=0.5, patience=2, interval_coverage=0.9)
        policy.update(policy_kwargs)
        registry = ModelRegistry()
        registry.register(
            Endpoint(
                name="income",
                version="1",
                predictor=oracle_predictor,
                validator=None,
                policy=EndpointPolicy(**policy),
            )
        )
        return ValidationService(registry)

    return build


@pytest.fixture(scope="module")
def pool(income_splits):
    return income_splits.serving.head(400), np.asarray(
        income_splits.y_serving[:400]
    )


def small_suite(n_batches=8, onset=3):
    return builtin_suite(
        n_batches=n_batches, batch_size=60, onset=onset,
        families=["gradual", "sudden"],
    )


class TestBatchLabels:
    """ScheduledBatch carries the sampled rows' ground truth, aligned."""

    @staticmethod
    def _traceable_pool(n=200):
        # Row i's "id" value equals its label, so alignment is checkable
        # on the generated batch itself.
        ids = np.arange(n, dtype=float)
        numeric = {"id": ColumnType.NUMERIC, "noise": ColumnType.NUMERIC}
        frame = DataFrame.from_dict({"id": ids, "noise": np.zeros(n)}, numeric)
        return frame, ids.astype(int)

    def test_labels_align_with_sampled_rows(self):
        frame, labels = self._traceable_pool()
        scenario = Scenario(
            name="outliers",
            n_batches=4,
            batch_size=50,
            events=(
                DriftEvent(
                    error="outliers",
                    schedule=StepSchedule(onset=2),
                    columns=("noise",),
                ),
            ),
        )
        for batch in scenario.generate_batches(frame, labels, seed=0):
            assert batch.labels is not None and len(batch.labels) == 50
            # Corruption touches only the "noise" column, so "id" still
            # identifies each row — and must match its label.
            np.testing.assert_array_equal(
                batch.frame["id"].astype(int), batch.labels
            )

    def test_label_shift_labels_follow_the_permutation(self):
        frame, labels = self._traceable_pool()
        labels = (labels % 2).astype(int)  # two classes, balanced pool
        frame = DataFrame.from_dict(
            {"id": np.asarray(labels, dtype=float), "noise": np.zeros(200)},
            {"id": ColumnType.NUMERIC, "noise": ColumnType.NUMERIC},
        )
        scenario = Scenario(
            name="shift",
            n_batches=6,
            batch_size=80,
            events=(
                DriftEvent(
                    error=LABEL_SHIFT,
                    schedule=StepSchedule(onset=2),
                    params={"target_prior": 0.95},
                ),
            ),
        )
        batches = scenario.generate_batches(frame, labels, seed=0)
        for batch in batches:
            np.testing.assert_array_equal(batch.frame["id"].astype(int), batch.labels)
        pre = np.mean(batches[0].labels)
        post = np.mean(batches[-1].labels)
        # The shift reweights toward the target class; the labels see it.
        assert abs(post - 0.5) > abs(pre - 0.5)


class TestOracleScoring:
    def test_service_outcomes_carry_truth_and_coverage(self, pool, new_service):
        service = new_service()
        scenarios = isolate_scenarios(service, small_suite(n_batches=4), "income")
        harness = ReplayHarness(
            pool[0], pool[1], service=service, endpoint="income",
        )
        report = harness.run(scenarios, seed=0)
        live = [o for o in report.outcomes if not o.degraded]
        assert live, "expected non-degraded outcomes"
        for o in live:
            assert o.true_score is not None and 0.0 <= o.true_score <= 1.0
            assert o.interval is not None
            assert o.interval_coverage == 0.9
            assert o.covered == (o.interval[0] <= o.true_score <= o.interval[2])
        pooled = report.coverage()
        assert pooled["intervals"] == len(live)
        assert pooled["coverage"] == pytest.approx(
            sum(o.covered for o in live) / len(live)
        )
        assert "coverage" in report.to_dict()
        assert "interval coverage" in report.describe()

    def test_interval_free_policy_leaves_oracle_fields_checkable_but_uncovered(
        self, pool, new_service
    ):
        service = new_service(interval_coverage=None)
        scenarios = isolate_scenarios(service, small_suite(n_batches=2), "income")
        harness = ReplayHarness(pool[0], pool[1], service=service, endpoint="income")
        report = harness.run(scenarios, seed=0)
        assert all(o.covered is None for o in report.outcomes)
        assert all(o.true_score is not None for o in report.outcomes)
        assert report.coverage()["coverage"] is None


class TestLabelBudget:
    def test_budgeted_run_spends_labels_and_refines(self, pool, new_service):
        service = new_service()
        scenarios = isolate_scenarios(service, small_suite(n_batches=4), "income")
        harness = ReplayHarness(
            pool[0], pool[1], service=service, endpoint="income", label_budget=5,
        )
        report = harness.run(scenarios, seed=0)
        live = [o for o in report.outcomes if not o.degraded]
        assert all(o.labels_spent == 5 for o in live)
        assert report.coverage()["labels_spent"] == 5 * len(live)
        for o in live:
            assert o.assessed_score is not None
            assert o.assessed_lower <= o.assessed_score <= o.assessed_upper

    def test_custom_assessor_controls_the_budget(self, pool, new_service):
        service = new_service()
        harness = ReplayHarness(
            pool[0], pool[1], service=service, endpoint="income",
            assessor=ActiveAssessor(label_budget=3, selection="thompson"),
        )
        assert harness.label_budget == 3

    def test_assessment_never_moves_the_alarm_stream(self, pool, new_service):
        plain_service = new_service()
        suite = small_suite(n_batches=4)
        plain = ReplayHarness(
            pool[0], pool[1], service=plain_service, endpoint="income",
        ).run(isolate_scenarios(plain_service, suite, "income"), seed=0)
        budgeted_service = new_service()
        budgeted = ReplayHarness(
            pool[0], pool[1], service=budgeted_service, endpoint="income",
            label_budget=5,
        ).run(isolate_scenarios(budgeted_service, suite, "income"), seed=0)
        for a, b in zip(plain.outcomes, budgeted.outcomes):
            assert (a.alarm, a.sustained_alarm, a.estimated_score) == (
                b.alarm, b.sustained_alarm, b.estimated_score
            )

    def test_daemon_mode_rejects_label_budget(self, pool):
        with pytest.raises(DataValidationError, match="service mode"):
            ReplayHarness(
                pool[0], pool[1], client=object(), endpoint="income", label_budget=5,
            )


class TestIntervalLowerResume:
    def test_resume_is_bit_identical_under_interval_lower_alarming(
        self, pool, new_service, tmp_path
    ):
        suite = small_suite()
        reference_service = new_service(alarm_on="interval_lower")
        reference = ReplayHarness(
            pool[0], pool[1], service=reference_service, endpoint="income",
            label_budget=5,
        ).run(isolate_scenarios(reference_service, suite, "income"), seed=9)

        store = CheckpointStore(tmp_path / "replay")
        partial_service = new_service(alarm_on="interval_lower")
        partial = ReplayHarness(
            pool[0], pool[1], service=partial_service, endpoint="income",
            label_budget=5,
        ).run(
            isolate_scenarios(partial_service, suite, "income"),
            seed=9, checkpoint=store, checkpoint_every=3, stop_after_steps=7,
        )
        assert not partial.complete

        resumed_service = new_service(alarm_on="interval_lower")
        resumed = ReplayHarness(
            pool[0], pool[1], service=resumed_service, endpoint="income",
            label_budget=5,
        ).run(
            isolate_scenarios(resumed_service, suite, "income"),
            seed=9, checkpoint=store, checkpoint_every=3,
        )
        assert resumed.complete
        assert resumed.digest() == reference.digest()

    def test_label_budget_is_part_of_the_fingerprint(
        self, pool, new_service, tmp_path
    ):
        # A checkpoint written without a budget must not silently resume
        # a budgeted run: its outcomes would lack the spent labels.
        from repro.exceptions import CheckpointError

        suite = small_suite(n_batches=4)
        store = CheckpointStore(tmp_path / "replay")
        first_service = new_service()
        ReplayHarness(
            pool[0], pool[1], service=first_service, endpoint="income",
        ).run(
            isolate_scenarios(first_service, suite, "income"),
            seed=2, checkpoint=store, checkpoint_every=2, stop_after_steps=4,
        )
        budgeted_service = new_service()
        with pytest.raises(CheckpointError, match="different run"):
            ReplayHarness(
                pool[0], pool[1], service=budgeted_service, endpoint="income",
                label_budget=5,
            ).run(
                isolate_scenarios(budgeted_service, suite, "income"),
                seed=2, checkpoint=store, checkpoint_every=2,
            )


class TestOutcomeCompatibility:
    def test_old_checkpoint_state_restores_with_defaults(self):
        modern = ReplayOutcome(
            scenario="s", endpoint="e", global_step=0, step=0, n_rows=10,
            intensity=0.0, estimated_score=0.5, smoothed_score=0.5,
            alarm=False, sustained_alarm=False, degraded=False,
        )
        state = {
            k: v
            for k, v in modern.__dict__.items()
            if k
            in {
                "scenario", "endpoint", "global_step", "step", "n_rows",
                "intensity", "estimated_score", "smoothed_score", "alarm",
                "sustained_alarm", "degraded",
            }
        }
        restored = ReplayOutcome.__new__(ReplayOutcome)
        restored.__setstate__(state)
        assert restored.interval is None
        assert restored.covered is None
        assert restored.labels_spent == 0
        assert restored.assessed_score is None
        assert restored == modern
