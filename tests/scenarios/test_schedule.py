"""Property and unit tests for the drift-intensity schedules."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataValidationError
from repro.scenarios import (
    SCHEDULES,
    AdversarialRampSchedule,
    ConstantSchedule,
    RampSchedule,
    SeasonalSchedule,
    StepSchedule,
    schedule_from_dict,
)


class TestRampSchedule:
    @settings(max_examples=60, deadline=None)
    @given(
        onset=st.integers(0, 20),
        duration=st.integers(0, 30),
        peak=st.floats(0.0, 1.0),
        shape=st.sampled_from(["linear", "cosine"]),
        horizon=st.integers(1, 80),
    )
    def test_monotone_and_bounded(self, onset, duration, peak, shape, horizon):
        # A ramp never decreases and never leaves [0, peak] — whatever
        # the onset, duration, shape, or horizon.
        schedule = RampSchedule(onset=onset, duration=duration, peak=peak, shape=shape)
        values = [schedule.intensity(t) for t in range(horizon)]
        assert all(0.0 <= v <= peak + 1e-12 for v in values)
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_zero_before_onset_and_peak_after(self):
        schedule = RampSchedule(onset=5, duration=4, peak=0.8)
        assert [schedule.intensity(t) for t in range(5)] == [0.0] * 5
        assert schedule.intensity(5) > 0.0  # active from the onset batch
        assert schedule.intensity(9) == pytest.approx(0.8)
        assert schedule.intensity(100) == pytest.approx(0.8)

    def test_zero_duration_degenerates_to_step(self):
        schedule = RampSchedule(onset=3, duration=0, peak=1.0)
        assert schedule.intensity(2) == 0.0
        assert schedule.intensity(3) == 1.0

    def test_invalid_shape_rejected(self):
        with pytest.raises(DataValidationError):
            RampSchedule(onset=0, duration=1, shape="exponential")


class TestStepSchedule:
    def test_step_and_pulse(self):
        step = StepSchedule(onset=4, level=0.7)
        assert step.intensity(3) == 0.0
        assert step.intensity(4) == pytest.approx(0.7)
        assert step.intensity(40) == pytest.approx(0.7)
        pulse = StepSchedule(onset=4, level=0.7, end=6)
        assert [pulse.intensity(t) for t in (3, 4, 5, 6, 7)] == [
            0.0, 0.7, 0.7, 0.0, 0.0,
        ]

    def test_end_must_follow_onset(self):
        with pytest.raises(DataValidationError):
            StepSchedule(onset=4, end=4)


class TestSeasonalSchedule:
    @settings(max_examples=60, deadline=None)
    @given(
        period=st.integers(2, 24),
        amplitude=st.floats(0.0, 1.0),
        phase=st.integers(-10, 10),
        t=st.integers(0, 200),
        cycles=st.integers(1, 5),
    )
    def test_exactly_periodic(self, period, amplitude, phase, t, cycles):
        # Integer period arithmetic makes periodicity exact in floating
        # point, not approximately so.
        schedule = SeasonalSchedule(period=period, amplitude=amplitude, phase=phase)
        assert schedule.intensity(t + cycles * period) == schedule.intensity(t)

    @settings(max_examples=40, deadline=None)
    @given(period=st.integers(2, 24), amplitude=st.floats(0.0, 1.0), t=st.integers(0, 100))
    def test_bounded_by_amplitude(self, period, amplitude, t):
        schedule = SeasonalSchedule(period=period, amplitude=amplitude)
        assert 0.0 <= schedule.intensity(t) <= amplitude + 1e-12

    def test_starts_each_period_quiet_and_peaks_halfway(self):
        schedule = SeasonalSchedule(period=8, amplitude=1.0)
        assert schedule.intensity(0) == 0.0
        assert schedule.intensity(8) == 0.0
        assert schedule.intensity(4) == pytest.approx(1.0)

    def test_period_validation(self):
        with pytest.raises(DataValidationError):
            SeasonalSchedule(period=1)


class TestAdversarialRampSchedule:
    @settings(max_examples=60, deadline=None)
    @given(
        onset=st.integers(0, 10),
        initial=st.floats(0.001, 1.0),
        growth=st.floats(1.0, 3.0),
        horizon=st.integers(1, 60),
    )
    def test_monotone_capped_and_quiet_before_onset(
        self, onset, initial, growth, horizon
    ):
        schedule = AdversarialRampSchedule(
            onset=onset, initial=initial, growth=growth, cap=1.0
        )
        values = [schedule.intensity(t) for t in range(horizon)]
        assert all(v == 0.0 for v in values[:onset])
        active = values[onset:]
        assert all(0.0 < v <= 1.0 for v in active)
        assert all(a <= b + 1e-12 for a, b in zip(active, active[1:]))

    def test_starts_below_cap_then_saturates(self):
        schedule = AdversarialRampSchedule(onset=0, initial=0.1, growth=2.0, cap=0.5)
        assert schedule.intensity(0) == pytest.approx(0.1)
        assert schedule.intensity(1) == pytest.approx(0.2)
        assert schedule.intensity(10) == pytest.approx(0.5)

    def test_parameter_validation(self):
        with pytest.raises(DataValidationError):
            AdversarialRampSchedule(onset=0, initial=0.0)
        with pytest.raises(DataValidationError):
            AdversarialRampSchedule(onset=0, growth=0.9)


class TestOnset:
    def test_onset_matches_first_active_batch(self):
        assert RampSchedule(onset=7, duration=3).onset(30) == 7
        assert StepSchedule(onset=0).onset(30) == 0
        assert AdversarialRampSchedule(onset=4).onset(30) == 4
        # Seasonal with phase == period start: batch 0 is quiet.
        assert SeasonalSchedule(period=6, phase=0).onset(30) == 1

    def test_never_active_is_none(self):
        assert ConstantSchedule(0.0).onset(50) is None
        assert RampSchedule(onset=99, duration=2).onset(50) is None


class TestSerialization:
    @pytest.mark.parametrize(
        "schedule",
        [
            ConstantSchedule(0.25),
            RampSchedule(onset=3, duration=5, peak=0.9, shape="cosine"),
            StepSchedule(onset=2, level=0.6, end=9),
            SeasonalSchedule(period=7, amplitude=0.8, phase=3),
            AdversarialRampSchedule(onset=1, initial=0.05, growth=1.7, cap=0.9),
        ],
        ids=lambda s: s.kind,
    )
    def test_round_trip_is_lossless(self, schedule):
        rebuilt = schedule_from_dict(schedule.to_dict())
        assert type(rebuilt) is type(schedule)
        assert rebuilt.to_dict() == schedule.to_dict()
        assert [rebuilt.intensity(t) for t in range(40)] == [
            schedule.intensity(t) for t in range(40)
        ]

    def test_registry_covers_every_kind(self):
        assert set(SCHEDULES) == {
            "constant", "ramp", "step", "seasonal", "adversarial_ramp",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataValidationError, match="unknown schedule kind"):
            schedule_from_dict({"kind": "fourier"})
        with pytest.raises(DataValidationError):
            schedule_from_dict(["not", "a", "dict"])
