"""Tests for the drift-scenario DSL and deterministic batch generation."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors.base import CorruptionError
from repro.errors.tabular_errors import GaussianOutliers, Scaling, SwappedValues
from repro.exceptions import DataValidationError
from repro.scenarios import (
    ERROR_POOL,
    LABEL_SHIFT,
    ConstantSchedule,
    DriftEvent,
    RampSchedule,
    Scenario,
    SeasonalSchedule,
    StepSchedule,
    builtin_suite,
    load_scenarios,
)


@pytest.fixture(scope="module")
def pool(income_splits):
    frame = income_splits.serving.head(400)
    labels = np.asarray(income_splits.y_serving[:400])
    return frame, labels


def two_event_scenario(n_batches=8, batch_size=50) -> Scenario:
    return Scenario(
        name="mixed",
        n_batches=n_batches,
        batch_size=batch_size,
        events=(
            DriftEvent(error="outliers", schedule=RampSchedule(onset=2, duration=4)),
            DriftEvent(
                error=LABEL_SHIFT,
                schedule=StepSchedule(onset=4),
                params={"target_prior": 0.9},
            ),
        ),
    )


class TestScaledParams:
    @settings(max_examples=40, deadline=None)
    @given(intensity=st.floats(0.0, 1.0))
    def test_outlier_scale_stays_inside_sampled_range(self, intensity, income_splits):
        # sample_params draws scale from U(2, 5); the interpolation must
        # stay inside the same magnitude space. (rng built inline:
        # hypothesis forbids function-scoped fixtures under @given.)
        params = GaussianOutliers().scaled_params(
            income_splits.serving, np.random.default_rng(0), intensity
        )
        assert 2.0 <= params["scale"] <= 5.0
        assert params["fraction"] == pytest.approx(intensity)

    @settings(max_examples=40, deadline=None)
    @given(intensity=st.floats(0.0, 1.0))
    def test_scaling_factor_stays_inside_sampled_range(self, intensity, income_splits):
        params = Scaling().scaled_params(
            income_splits.serving, np.random.default_rng(0), intensity
        )
        assert 10.0 <= params["factor"] <= 1000.0 + 1e-9

    def test_interpolation_is_monotone_in_intensity(self, income_splits, rng):
        frame = income_splits.serving
        scales = [
            GaussianOutliers().scaled_params(frame, rng, i)["scale"]
            for i in (0.0, 0.25, 0.5, 1.0)
        ]
        factors = [
            Scaling().scaled_params(frame, rng, i)["factor"]
            for i in (0.0, 0.25, 0.5, 1.0)
        ]
        assert scales == sorted(scales)
        assert factors == sorted(factors)

    def test_swapped_values_pair_is_stable(self, income_splits, rng):
        # The i.i.d. protocol swaps a random pair; the scheduled variant
        # must degrade the *same* pair batch after batch.
        error = SwappedValues()
        first = error.scaled_params(income_splits.serving, rng, 0.5)["columns"]
        second = error.scaled_params(income_splits.serving, rng, 0.9)["columns"]
        assert first == second
        assert len(first) == 2

    def test_intensity_out_of_range_rejected(self, income_splits, rng):
        with pytest.raises(CorruptionError):
            GaussianOutliers().scaled_params(income_splits.serving, rng, 1.5)

    def test_unknown_columns_rejected(self, income_splits, rng):
        with pytest.raises(CorruptionError, match="unknown columns"):
            Scaling().scaled_params(
                income_splits.serving, rng, 0.5, columns=["no-such-column"]
            )

    def test_zero_intensity_is_a_noop_preserving_rng(self, income_splits):
        frame = income_splits.serving.head(50)
        rng = np.random.default_rng(3)
        corrupted, report = GaussianOutliers().corrupt_scaled(frame, rng, 0.0)
        assert corrupted is frame
        assert report.params["fraction"] == 0.0
        # The RNG was not consumed: the next draw matches a fresh stream.
        assert rng.integers(1 << 30) == np.random.default_rng(3).integers(1 << 30)


class TestDriftEventAndScenarioSerialization:
    def test_event_round_trip(self):
        event = DriftEvent(
            error="scaling",
            schedule=RampSchedule(onset=3, duration=6, shape="cosine"),
            columns=("age", "hours"),
            params={"note": "pinned"},
        )
        rebuilt = DriftEvent.from_dict(event.to_dict())
        assert rebuilt == event

    def test_scenario_round_trips_through_json(self):
        scenario = two_event_scenario()
        payload = json.loads(json.dumps(scenario.to_dict()))
        assert Scenario.from_dict(payload) == scenario

    def test_unknown_error_rejected(self):
        with pytest.raises(DataValidationError, match="unknown error"):
            DriftEvent(error="bit-rot", schedule=ConstantSchedule(0.5))

    def test_scenario_validation(self):
        event = DriftEvent(error="scaling", schedule=StepSchedule(onset=0))
        with pytest.raises(DataValidationError):
            Scenario(name="x", n_batches=0, batch_size=10, events=(event,))
        with pytest.raises(DataValidationError):
            Scenario(name="x", n_batches=5, batch_size=0, events=(event,))
        with pytest.raises(DataValidationError):
            Scenario(name="x", n_batches=5, batch_size=10, events=())
        with pytest.raises(DataValidationError, match="missing"):
            Scenario.from_dict({"name": "x"})

    def test_onset_is_earliest_event_onset(self):
        assert two_event_scenario().onset() == 2
        quiet = Scenario(
            name="quiet",
            n_batches=5,
            batch_size=10,
            events=(DriftEvent(error="scaling", schedule=ConstantSchedule(0.0)),),
        )
        assert quiet.onset() is None

    def test_intensities_disambiguates_duplicate_errors(self):
        scenario = Scenario(
            name="double",
            n_batches=6,
            batch_size=10,
            events=(
                DriftEvent(error="scaling", schedule=ConstantSchedule(0.2)),
                DriftEvent(error="scaling", schedule=ConstantSchedule(0.7)),
            ),
        )
        values = scenario.intensities(0)
        assert values == {"scaling": 0.2, "scaling#1": 0.7}


class TestScenarioFiles:
    def test_load_single_list_and_wrapped(self, tmp_path):
        scenario = two_event_scenario().to_dict()
        single = tmp_path / "one.json"
        single.write_text(json.dumps(scenario))
        listed = tmp_path / "list.json"
        listed.write_text(json.dumps([scenario, dict(scenario, name="other")]))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"scenarios": [scenario]}))
        assert [s.name for s in load_scenarios(single)] == ["mixed"]
        assert [s.name for s in load_scenarios(listed)] == ["mixed", "other"]
        assert [s.name for s in load_scenarios(wrapped)] == ["mixed"]

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DataValidationError, match="not valid JSON"):
            load_scenarios(path)

    def test_builtin_suite_families(self):
        suite = builtin_suite(n_batches=12, batch_size=30, onset=4)
        assert [s.name for s in suite] == [
            "gradual", "sudden", "seasonal", "adversarial",
        ]
        for scenario in suite:
            assert scenario.onset() is not None
        subset = builtin_suite(families=["adversarial", "gradual"])
        assert [s.name for s in subset] == ["adversarial", "gradual"]
        with pytest.raises(DataValidationError, match="unknown scenario families"):
            builtin_suite(families=["glacial"])

    def test_error_pool_names_match_generators(self):
        for name, cls in ERROR_POOL.items():
            assert cls.name == name


class TestBatchGeneration:
    def test_bit_identical_across_n_jobs_and_backend(self, pool):
        frame, labels = pool
        scenario = two_event_scenario()
        serial = scenario.generate_batches(frame, labels, seed=11)
        threaded = scenario.generate_batches(
            frame, labels, seed=11, n_jobs=4, backend="thread"
        )
        for a, b in zip(serial, threaded):
            assert a.step == b.step
            assert a.intensities == b.intensities
            assert a.frame == b.frame

    def test_step_subsets_match_the_full_run(self, pool):
        # A resumed run regenerating only the tail must reproduce the
        # exact batches an uninterrupted run would have built.
        frame, labels = pool
        scenario = two_event_scenario()
        full = scenario.generate_batches(frame, labels, seed=7)
        tail = scenario.generate_batches(frame, labels, seed=7, steps=[5, 6, 7])
        for got, want in zip(tail, full[5:]):
            assert got.step == want.step
            assert got.frame == want.frame

    def test_seed_sequence_reuse_is_stable(self, pool):
        # SeedSequence.spawn is stateful; generate_batches must re-root
        # so passing the same SeedSequence twice gives the same batches.
        frame, labels = pool
        scenario = two_event_scenario(n_batches=4)
        seed = np.random.SeedSequence(99)
        first = scenario.generate_batches(frame, labels, seed=seed)
        second = scenario.generate_batches(frame, labels, seed=seed)
        for a, b in zip(first, second):
            assert a.frame == b.frame

    def test_out_of_range_step_rejected(self, pool):
        frame, labels = pool
        with pytest.raises(DataValidationError, match="outside"):
            two_event_scenario(n_batches=4).generate_batches(
                frame, labels, seed=0, steps=[4]
            )

    def test_mismatched_labels_rejected(self, pool):
        frame, labels = pool
        with pytest.raises(DataValidationError, match="rows"):
            two_event_scenario().generate_batches(frame, labels[:-5], seed=0)

    def test_batch_intensity_tracks_schedule(self, pool):
        frame, labels = pool
        batches = two_event_scenario().generate_batches(frame, labels, seed=0)
        assert batches[0].intensity == 0.0  # pre-onset traffic is clean
        assert batches[7].intensity == 1.0  # label shift fully active
        assert [b.step for b in batches] == list(range(8))


class TestLabelShiftSampling:
    def _shift_scenario(self, schedule, **params) -> Scenario:
        return Scenario(
            name="shift",
            n_batches=6,
            batch_size=200,
            events=(
                DriftEvent(error=LABEL_SHIFT, schedule=schedule, params=params),
            ),
        )

    def test_realized_prior_interpolates(self, income_splits):
        from repro.tabular.frame import DataFrame
        from repro.tabular.schema import ColumnType

        # A pool whose only column is the row index makes sampled labels
        # directly observable.
        labels = np.asarray(income_splits.y_serving[:400])
        frame = DataFrame.from_dict(
            {"row": np.arange(len(labels), dtype=float)},
            {"row": ColumnType.NUMERIC},
        )
        classes, counts = np.unique(labels, return_counts=True)
        rare = classes[int(np.argmin(counts))]
        natural = float(np.mean(labels == rare))

        scenario = self._shift_scenario(
            RampSchedule(onset=2, duration=2), target_prior=0.9
        )
        batches = scenario.generate_batches(frame, labels, seed=5)
        priors = [
            float(np.mean(labels[batch.frame["row"].astype(int)] == rare))
            for batch in batches
        ]
        # Pre-onset batches track the natural prior; the fully shifted
        # tail hits the target within rounding of batch_size.
        assert priors[0] == pytest.approx(natural, abs=0.08)
        assert priors[1] == pytest.approx(natural, abs=0.08)
        assert priors[3] == pytest.approx(0.9, abs=0.005)
        assert priors[5] == pytest.approx(0.9, abs=0.005)

    def test_unknown_target_class_rejected(self, pool):
        frame, labels = pool
        scenario = self._shift_scenario(StepSchedule(onset=0), target_class=42)
        with pytest.raises(DataValidationError, match="not present"):
            scenario.generate_batches(frame, labels, seed=0)

    def test_target_prior_validated(self, pool):
        frame, labels = pool
        scenario = self._shift_scenario(StepSchedule(onset=0), target_prior=1.5)
        with pytest.raises(DataValidationError, match="target_prior"):
            scenario.generate_batches(frame, labels, seed=0)
