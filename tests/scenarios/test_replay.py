"""Tests for the streaming replay harness and its detection metrics."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DaemonError, DataValidationError
from repro.resilience.checkpoint import CheckpointStore
from repro.scenarios import (
    DriftEvent,
    RampSchedule,
    ReplayHarness,
    ReplayOutcome,
    Scenario,
    StepSchedule,
    builtin_suite,
    isolate_scenarios,
    scenario_metrics,
)
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry
from repro.serving.service import ValidationService


@pytest.fixture(scope="module")
def replay_predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=24,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture
def new_service(replay_predictor):
    def build() -> ValidationService:
        registry = ModelRegistry()
        registry.register(
            Endpoint(
                name="income",
                version="1",
                predictor=replay_predictor,
                validator=None,
                policy=EndpointPolicy(threshold=0.05, smoothing=0.5, patience=2),
            )
        )
        return ValidationService(registry)

    return build


@pytest.fixture(scope="module")
def pool(income_splits):
    return income_splits.serving.head(400), np.asarray(
        income_splits.y_serving[:400]
    )


def small_suite(n_batches=8, onset=3):
    return builtin_suite(
        n_batches=n_batches, batch_size=60, onset=onset,
        families=["gradual", "sudden"],
    )


def run_replay(pool, service, scenarios, **kwargs):
    harness = ReplayHarness(
        pool[0], pool[1], service=service, endpoint="income",
        n_jobs=kwargs.pop("n_jobs", 1), backend=kwargs.pop("backend", "serial"),
    )
    return harness.run(scenarios, **kwargs)


class TestDeterminism:
    def test_bit_identical_across_n_jobs_and_backend(self, pool, new_service):
        suite = small_suite()
        service = new_service()
        scenarios = isolate_scenarios(service, suite, "income")
        baseline = run_replay(pool, service, scenarios, seed=3)

        threaded_service = new_service()
        threaded = ReplayHarness(
            pool[0], pool[1], service=threaded_service, endpoint="income",
            n_jobs=4, backend="thread",
        ).run(isolate_scenarios(threaded_service, suite, "income"), seed=3)

        assert threaded.digest() == baseline.digest()
        assert baseline.complete and threaded.complete

    def test_interleaving_is_round_robin(self, pool, new_service):
        service = new_service()
        scenarios = isolate_scenarios(service, small_suite(n_batches=3), "income")
        report = run_replay(pool, service, scenarios, seed=0)
        order = [(o.scenario, o.step) for o in report.outcomes]
        assert order == [
            ("gradual", 0), ("sudden", 0),
            ("gradual", 1), ("sudden", 1),
            ("gradual", 2), ("sudden", 2),
        ]


class TestCheckpointResume:
    def test_interrupt_and_resume_is_bit_identical(
        self, pool, new_service, tmp_path
    ):
        suite = small_suite()
        reference_service = new_service()
        reference = run_replay(
            pool,
            reference_service,
            isolate_scenarios(reference_service, suite, "income"),
            seed=9,
        )

        store = CheckpointStore(tmp_path / "replay")
        partial_service = new_service()
        partial = run_replay(
            pool,
            partial_service,
            isolate_scenarios(partial_service, suite, "income"),
            seed=9, checkpoint=store, checkpoint_every=3, stop_after_steps=7,
        )
        assert not partial.complete
        assert len(partial.outcomes) == 7
        assert "[PARTIAL]" in partial.describe()
        assert store.exists()

        # Resume with a *fresh* service: monitor state is rebuilt from
        # the checkpointed estimates, so the stream digest cannot move.
        resumed_service = new_service()
        resumed = run_replay(
            pool,
            resumed_service,
            isolate_scenarios(resumed_service, suite, "income"),
            seed=9, checkpoint=store, checkpoint_every=3,
        )
        assert resumed.complete
        assert resumed.digest() == reference.digest()
        # A caller-supplied store is never cleared by the harness.
        assert store.exists()

    def test_path_checkpoint_is_cleared_on_completion(
        self, pool, new_service, tmp_path
    ):
        path = tmp_path / "replay-owned"
        service = new_service()
        report = run_replay(
            pool,
            service,
            isolate_scenarios(service, small_suite(n_batches=4), "income"),
            seed=1, checkpoint=path, checkpoint_every=2,
        )
        assert report.complete
        assert not CheckpointStore(path).exists()

    def test_checkpoint_every_validated(self, pool, new_service):
        service = new_service()
        with pytest.raises(DataValidationError, match="checkpoint_every"):
            run_replay(
                pool, service, small_suite(), checkpoint_every=0,
            )


class TestValidation:
    def test_exactly_one_scoring_target(self, pool, new_service):
        with pytest.raises(DataValidationError, match="exactly one"):
            ReplayHarness(pool[0], pool[1], endpoint="income")
        with pytest.raises(DataValidationError, match="exactly one"):
            ReplayHarness(
                pool[0], pool[1], service=new_service(), client=object(),
                endpoint="income",
            )

    def test_duplicate_scenario_names_rejected(self, pool, new_service):
        suite = small_suite()
        with pytest.raises(DataValidationError, match="duplicate"):
            run_replay(pool, new_service(), [suite[0], suite[0]])

    def test_scenario_without_endpoint_needs_harness_default(
        self, pool, new_service
    ):
        harness = ReplayHarness(pool[0], pool[1], service=new_service())
        with pytest.raises(DataValidationError, match="no endpoint"):
            harness.run(small_suite())

    def test_empty_scenario_list_rejected(self, pool, new_service):
        with pytest.raises(DataValidationError, match="at least one"):
            run_replay(pool, new_service(), [])

    def test_unknown_metric_lookup_raises(self, pool, new_service):
        service = new_service()
        report = run_replay(
            pool,
            service,
            isolate_scenarios(service, small_suite(n_batches=2), "income"),
        )
        with pytest.raises(DataValidationError, match="no metrics"):
            report.metric("nope")


class TestIsolateScenarios:
    def test_aliases_get_their_own_monitors(self, new_service):
        service = new_service()
        suite = small_suite()
        isolated = isolate_scenarios(service, suite, "income")
        names = [s.endpoint for s in isolated]
        assert names == ["income-gradual", "income-sudden"]
        monitors = {service.monitor(name) for name in names}
        assert len(monitors) == 2  # distinct monitor per alias
        base = service.registry.get("income")
        for name in names:
            alias = service.registry.get(name)
            assert alias.predictor is base.predictor
            assert alias.policy is base.policy

    def test_pinned_endpoints_are_left_alone(self, new_service):
        service = new_service()
        scenario = small_suite()[0]
        pinned = Scenario(
            name=scenario.name,
            n_batches=scenario.n_batches,
            batch_size=scenario.batch_size,
            events=scenario.events,
            endpoint="income",
        )
        isolated = isolate_scenarios(service, [pinned], "income")
        assert isolated[0] is pinned


class FakeResponse:
    def __init__(self, status, payload):
        self.status = status
        self.payload = payload

    @property
    def ok(self):
        return 200 <= self.status < 300


class FakeDaemonClient:
    """Stateful stub standing in for a live daemon (monitor included)."""

    def __init__(self, fail_at=None):
        self.calls = 0
        self.fail_at = fail_at

    def score(self, endpoint, frame, version=None):
        self.calls += 1
        if self.fail_at is not None and self.calls == self.fail_at:
            return FakeResponse(503, {"error": "shed"})
        return FakeResponse(
            200,
            {
                "estimated_score": 0.8,
                "smoothed_score": 0.8,
                "alarm": False,
                "sustained_alarm": False,
                "degraded": self.calls % 2 == 0,
            },
        )


class TestDaemonMode:
    def test_daemon_payloads_become_outcomes(self, pool):
        harness = ReplayHarness(
            pool[0], pool[1], client=FakeDaemonClient(), endpoint="income",
        )
        report = harness.run(small_suite(n_batches=2), seed=0)
        assert report.complete
        assert len(report.outcomes) == 4
        assert {o.estimated_score for o in report.outcomes} == {0.8}
        assert sum(o.degraded for o in report.outcomes) == 2

    def test_daemon_error_status_raises(self, pool):
        harness = ReplayHarness(
            pool[0], pool[1], client=FakeDaemonClient(fail_at=2), endpoint="income",
        )
        with pytest.raises(DaemonError, match="503"):
            harness.run(small_suite(n_batches=2), seed=0)


def outcome(step, *, alarm=False, sustained=False, degraded=False, scenario="s"):
    return ReplayOutcome(
        scenario=scenario,
        endpoint="income",
        global_step=step,
        step=step,
        n_rows=10,
        intensity=0.0,
        estimated_score=0.5,
        smoothed_score=0.5,
        alarm=alarm,
        sustained_alarm=sustained,
        degraded=degraded,
    )


class TestScenarioMetrics:
    def _scenario(self, onset=4, n_batches=10):
        return Scenario(
            name="s",
            n_batches=n_batches,
            batch_size=10,
            events=(
                DriftEvent(error="scaling", schedule=StepSchedule(onset=onset)),
            ),
        )

    def test_latencies_measured_from_onset(self):
        outcomes = [outcome(t) for t in range(4)] + [
            outcome(4, alarm=True),
            outcome(5, alarm=True, sustained=True),
        ]
        metrics = scenario_metrics(self._scenario(onset=4, n_batches=6), outcomes)
        assert metrics.onset == 4
        assert metrics.detection_latency == 0
        assert metrics.sustained_latency == 1
        assert metrics.false_alarms == 0
        assert metrics.pre_onset_batches == 4
        assert metrics.false_alarm_rate == 0.0

    def test_pre_onset_alarms_are_false_alarms(self):
        outcomes = [
            outcome(0), outcome(1, alarm=True), outcome(2), outcome(3, alarm=True),
        ] + [outcome(t) for t in range(4, 6)]
        metrics = scenario_metrics(self._scenario(onset=4, n_batches=6), outcomes)
        assert metrics.false_alarms == 2
        assert metrics.false_alarm_rate == pytest.approx(0.5)
        assert metrics.detection_latency is None

    def test_degraded_batches_are_excluded_everywhere(self):
        # A degraded pre-onset batch doesn't count toward the false-alarm
        # denominator, and a degraded post-onset batch cannot be the
        # detection: the first *real* alarm is.
        outcomes = [
            outcome(0, degraded=True),
            outcome(1),
            outcome(2, degraded=True),
            outcome(3, alarm=True, degraded=True),  # fallback glitch, not drift
            outcome(4, alarm=True),
        ]
        metrics = scenario_metrics(self._scenario(onset=2, n_batches=5), outcomes)
        assert metrics.pre_onset_batches == 1
        assert metrics.false_alarms == 0
        assert metrics.detection_latency == 2  # batch 4, not degraded batch 3
        assert metrics.degraded_batches == 3

    def test_no_onset_means_no_latency_and_all_batches_pre(self):
        quiet = Scenario(
            name="s",
            n_batches=4,
            batch_size=10,
            events=(
                DriftEvent(
                    error="scaling",
                    schedule=RampSchedule(onset=99, duration=2),
                ),
            ),
        )
        outcomes = [outcome(t) for t in range(4)]
        metrics = scenario_metrics(quiet, outcomes)
        assert metrics.onset is None
        assert metrics.detection_latency is None
        assert metrics.pre_onset_batches == 4
