"""Empirical interval coverage across the builtin drift families.

The acceptance bar of the calibrated-uncertainty layer: 90%-nominal
intervals must achieve at least nominal − 5pp empirical coverage against
the replay oracle on *every* builtin scenario family, for both interval
methods. A scaled-down version of the ``drift_replay`` bench workload
(fewer batches, smaller pool) keeps the suite fast; the committed
BENCH_PR10.json gates the full-size run.
"""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.evaluation.harness import known_error_generators
from repro.scenarios import ReplayHarness, builtin_suite, isolate_scenarios
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry
from repro.serving.service import ValidationService

NOMINAL = 0.9
FLOOR = NOMINAL - 0.05
FAMILIES = ("gradual", "sudden", "seasonal", "adversarial")


@pytest.fixture(scope="module")
def coverage_predictor(income_blackbox, income_splits):
    # The full generator pool: the meta-dataset must span the drift
    # regimes the families replay (label shift included), or the
    # calibration residuals understate exactly the errors under test.
    return PerformancePredictor(
        income_blackbox,
        list(known_error_generators("tabular").values()),
        n_samples=24,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture(scope="module", params=["conformal", "cqr"])
def coverage_report(request, coverage_predictor, income_splits):
    registry = ModelRegistry()
    registry.register(
        Endpoint(
            name="income",
            version="1",
            predictor=coverage_predictor,
            policy=EndpointPolicy(
                threshold=0.05,
                smoothing=0.5,
                patience=2,
                interval_coverage=NOMINAL,
                interval_method=request.param,
            ),
        )
    )
    service = ValidationService(registry)
    suite = builtin_suite(n_batches=16, batch_size=80, onset=4)
    harness = ReplayHarness(
        income_splits.serving,
        np.asarray(income_splits.y_serving),
        service=service,
        endpoint="income",
    )
    report = harness.run(isolate_scenarios(service, suite, "income"), seed=7)
    return request.param, report


def test_every_family_was_scored(coverage_report):
    _, report = coverage_report
    assert {m.scenario for m in report.metrics} == set(FAMILIES)
    for metric in report.metrics:
        assert metric.intervals > 0, f"{metric.scenario}: nothing checkable"


@pytest.mark.parametrize("family", FAMILIES)
def test_family_coverage_meets_the_floor(coverage_report, family):
    method, report = coverage_report
    metric = report.metric(family)
    assert metric.coverage is not None
    assert metric.coverage >= FLOOR, (
        f"{method} coverage {metric.coverage:.2f} on {family} "
        f"below floor {FLOOR:.2f}"
    )


def test_pooled_coverage_meets_the_floor(coverage_report):
    method, report = coverage_report
    pooled = report.coverage()
    assert pooled["coverage"] >= FLOOR
    assert pooled["mean_interval_width"] < 2 * (1.0 - NOMINAL) + 0.4
