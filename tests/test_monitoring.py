"""Tests for the streaming batch monitor."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError
from repro.monitoring import BatchMonitor


@pytest.fixture(scope="module")
def predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=60,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


def batches_of(frame, n_batches):
    size = len(frame) // n_batches
    return [
        frame.select_rows(np.arange(i * size, (i + 1) * size)) for i in range(n_batches)
    ]


class TestConstruction:
    def test_requires_fitted_predictor(self, income_blackbox):
        unfitted = PerformancePredictor(income_blackbox, [Scaling()])
        with pytest.raises(DataValidationError):
            BatchMonitor(unfitted)

    def test_parameter_validation(self, predictor):
        with pytest.raises(DataValidationError):
            BatchMonitor(predictor, threshold=0.0)
        with pytest.raises(DataValidationError):
            BatchMonitor(predictor, smoothing=0.0)
        with pytest.raises(DataValidationError):
            BatchMonitor(predictor, patience=0)
        with pytest.raises(DataValidationError):
            BatchMonitor(predictor, history=0)

    def test_alarm_floor(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10)
        assert monitor.alarm_floor == pytest.approx(0.9 * predictor.test_score_)


class TestObservation:
    def test_clean_batches_do_not_alarm(self, predictor, income_splits):
        monitor = BatchMonitor(predictor, threshold=0.10)
        for batch in batches_of(income_splits.serving, 3):
            record = monitor.observe(batch)
            assert record.alarm is False
            assert record.sustained_alarm is False
        assert monitor.alarm_rate() == 0.0

    def test_catastrophic_batches_raise_sustained_alarm(
        self, predictor, income_splits, rng
    ):
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2)
        broken = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        records = [monitor.observe(batch) for batch in batches_of(broken, 3)]
        assert records[0].alarm is True
        assert records[0].sustained_alarm is False  # patience not yet reached
        assert records[1].sustained_alarm is True

    def test_single_blip_does_not_sustain(self, predictor, income_splits, rng):
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2, smoothing=0.5)
        clean_batches = batches_of(income_splits.serving, 4)
        broken = Scaling().corrupt(
            clean_batches[1], rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        sequence = [clean_batches[0], broken, clean_batches[2], clean_batches[3]]
        records = [monitor.observe(batch) for batch in sequence]
        assert records[1].alarm is True
        assert all(not record.sustained_alarm for record in records)

    def test_empty_batch_raises(self, predictor, income_splits):
        monitor = BatchMonitor(predictor)
        with pytest.raises(DataValidationError):
            monitor.observe(income_splits.serving.select_rows([]))

    def test_history_is_bounded(self, predictor, income_splits):
        monitor = BatchMonitor(predictor, history=3)
        batch = income_splits.serving.head(50)
        for _ in range(6):
            monitor.observe(batch)
        assert len(monitor.state.records) == 3

    def test_batch_indices_increment(self, predictor, income_splits):
        monitor = BatchMonitor(predictor)
        batch = income_splits.serving.head(50)
        indices = [monitor.observe(batch).batch_index for _ in range(3)]
        assert indices == [0, 1, 2]

    def test_batch_indices_keep_increasing_past_history(
        self, predictor, income_splits
    ):
        # Regression: the index used to be len(records), so after history
        # trimming every record reported batch_index == history.
        history = 4
        monitor = BatchMonitor(predictor, history=history)
        batch = income_splits.serving.head(50)
        indices = [
            monitor.observe(batch).batch_index for _ in range(history + 3)
        ]
        assert indices == list(range(history + 3))
        assert len(monitor.state.records) == history
        retained = [record.batch_index for record in monitor.state.records]
        assert retained == [3, 4, 5, 6]
        assert monitor.state.total_batches == history + 3

    def test_observe_estimate_records_external_estimates(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10)
        record = monitor.observe_estimate(predictor.test_score_, 250)
        assert record.n_rows == 250
        assert record.alarm is False
        low = monitor.observe_estimate(0.0, 250)
        assert low.alarm is True
        with pytest.raises(DataValidationError):
            monitor.observe_estimate(0.5, 0)

    def test_reset_clears_history_and_smoothing(self, predictor, income_splits, rng):
        from repro.errors.tabular_errors import Scaling

        monitor = BatchMonitor(predictor, threshold=0.05, patience=1)
        broken = Scaling().corrupt(
            income_splits.serving.head(200), rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        monitor.observe(broken)
        assert monitor.state.consecutive_alarms == 1
        monitor.reset()
        assert monitor.state.records == []
        assert monitor.state.consecutive_alarms == 0
        assert monitor.state.total_batches == 0
        assert "no batches" in monitor.summary()
        # A clean batch after reset starts a fresh smoothing stream: the
        # smoothed score equals the raw estimate again.
        record = monitor.observe(income_splits.serving.head(200))
        assert record.batch_index == 0
        assert record.smoothed_score == pytest.approx(record.estimated_score)

    def test_smoothing_dampens_single_estimate(self, predictor, income_splits, rng):
        monitor = BatchMonitor(predictor, smoothing=0.3)
        clean = income_splits.serving.head(300)
        first = monitor.observe(clean)
        broken = Scaling().corrupt(
            clean, rng, columns=income_splits.serving.numeric_columns,
            fraction=1.0, factor=1000.0,
        )
        second = monitor.observe(broken)
        assert second.smoothed_score > second.estimated_score
        assert second.smoothed_score < first.smoothed_score


class TestAlarmAccounting:
    def test_alarm_rate_is_lifetime_not_window(self, predictor):
        # Regression: alarm_rate() used to average the *retained* records
        # window, so after history trimming it silently forgot every
        # older alarm — 3 early alarms followed by `history` clean
        # batches reported a rate of 0.0.
        monitor = BatchMonitor(predictor, threshold=0.05, history=4)
        clean = predictor.test_score_
        for _ in range(3):
            monitor.observe_estimate(0.0, 10)  # alarming
        for _ in range(4):
            monitor.observe_estimate(clean, 10)
        assert len(monitor.state.records) == 4  # alarms trimmed away
        assert monitor.state.total_alarms == 3
        assert monitor.alarm_rate() == pytest.approx(3 / 7)
        # The windowed variant keeps the old recency semantics, explicitly.
        assert monitor.windowed_alarm_rate() == 0.0

    def test_windowed_rate_covers_only_the_window(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.05, history=4)
        clean = predictor.test_score_
        for _ in range(4):
            monitor.observe_estimate(clean, 10)
        for _ in range(2):
            monitor.observe_estimate(0.0, 10)
        assert monitor.windowed_alarm_rate() == pytest.approx(0.5)
        assert monitor.alarm_rate() == pytest.approx(2 / 6)

    def test_empty_monitor_rates_are_zero(self, predictor):
        monitor = BatchMonitor(predictor)
        assert monitor.alarm_rate() == 0.0
        assert monitor.windowed_alarm_rate() == 0.0

    def test_sustained_counter_tracks_sustained_records(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2)
        for _ in range(4):
            monitor.observe_estimate(0.0, 10)
        assert monitor.state.total_alarms == 4
        assert monitor.state.total_sustained == 3  # patience delays the first


class TestDegradedEstimates:
    def test_degraded_never_alarms_and_dilutes_no_stream(self, predictor):
        # Regression: fallback estimates used to feed the smoothing
        # stream and the alarm streak, so a predictor outage serving a
        # stale (low) fallback score looked exactly like drift.
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2, smoothing=0.5)
        clean = predictor.test_score_
        first = monitor.observe_estimate(clean, 10)
        degraded = monitor.observe_estimate(0.0, 10, degraded=True)
        assert degraded.alarm is False
        assert degraded.sustained_alarm is False
        assert degraded.degraded is True
        # Smoothing untouched: the next clean batch continues from the
        # pre-outage smoothed value, not from the fallback 0.0.
        after = monitor.observe_estimate(clean, 10)
        assert after.smoothed_score == pytest.approx(first.smoothed_score)
        assert monitor.state.total_degraded == 1
        assert monitor.state.total_alarms == 0

    def test_degraded_does_not_break_an_alarm_streak(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2)
        monitor.observe_estimate(0.0, 10)
        assert monitor.state.consecutive_alarms == 1
        monitor.observe_estimate(0.7, 10, degraded=True)  # outage mid-incident
        assert monitor.state.consecutive_alarms == 1  # streak preserved
        record = monitor.observe_estimate(0.0, 10)
        assert record.sustained_alarm is True  # patience=2 reached

    def test_sustained_alarm_persists_through_an_outage(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.05, patience=2)
        monitor.observe_estimate(0.0, 10)
        assert monitor.observe_estimate(0.0, 10).sustained_alarm is True
        during_outage = monitor.observe_estimate(0.5, 10, degraded=True)
        assert during_outage.sustained_alarm is True
        assert during_outage.alarm is False

    def test_degraded_counts_toward_batches_but_not_alarm_rate_numerator(
        self, predictor
    ):
        monitor = BatchMonitor(predictor, threshold=0.05)
        monitor.observe_estimate(0.0, 10)
        monitor.observe_estimate(0.0, 10, degraded=True)
        assert monitor.state.total_batches == 2
        assert monitor.alarm_rate() == pytest.approx(0.5)


class TestPersistenceRoundTrip:
    def test_monitor_state_survives_save_load_observe(
        self, predictor, income_splits, tmp_path
    ):
        from repro import persistence

        monitor = BatchMonitor(predictor, threshold=0.10, smoothing=0.5)
        batch = income_splits.serving.head(200)
        for _ in range(3):
            monitor.observe(batch)
        path = tmp_path / "monitor.npz"
        persistence.save_model(monitor, path)

        restored = persistence.load_model(path, expected_class=BatchMonitor)
        # The smoothed float and every counter survive the snapshot.
        assert restored._smoothed == pytest.approx(monitor._smoothed)
        assert restored.state.total_batches == 3
        assert restored.state.consecutive_alarms == monitor.state.consecutive_alarms
        assert restored.state.records == monitor.state.records
        assert restored.alarm_floor == pytest.approx(monitor.alarm_floor)

        # Observation continues exactly where the saved process stopped.
        original_next = monitor.observe(batch)
        restored_next = restored.observe(batch)
        assert restored_next == original_next
        assert restored_next.batch_index == 3

    def test_lifetime_counters_survive_the_round_trip(
        self, predictor, tmp_path
    ):
        from repro import persistence

        monitor = BatchMonitor(predictor, threshold=0.05, patience=2, history=3)
        for _ in range(4):
            monitor.observe_estimate(0.0, 10)
        monitor.observe_estimate(0.7, 10, degraded=True)
        monitor.observe_estimate(predictor.test_score_, 10)
        path = tmp_path / "monitor.npz"
        persistence.save_model(monitor, path)

        restored = persistence.load_model(path, expected_class=BatchMonitor)
        # History trimming dropped early records, but the counters are
        # lifetime truths and must survive the snapshot untouched.
        assert len(restored.state.records) == 3
        assert restored.state.total_batches == 6
        assert restored.state.total_alarms == 4
        # 3 sustained batches from the streak, plus the degraded batch
        # through which the sustained alarm persisted.
        assert restored.state.total_sustained == 4
        assert restored.state.total_degraded == 1
        assert restored.alarm_rate() == pytest.approx(monitor.alarm_rate())

    def test_old_snapshots_backfill_counters_from_the_window(self):
        # Snapshots pickled before the lifetime counters / degraded tag
        # existed must keep loading: BatchRecord defaults degraded and
        # MonitorState backfills counters from the retained records.
        from repro.monitoring import BatchRecord, MonitorState

        record = BatchRecord.__new__(BatchRecord)
        record.__setstate__({
            "batch_index": 0, "n_rows": 10, "estimated_score": 0.2,
            "smoothed_score": 0.2, "alarm": True, "sustained_alarm": True,
        })
        assert record.degraded is False

        state = MonitorState.__new__(MonitorState)
        state.__setstate__({
            "records": [record], "consecutive_alarms": 1, "total_batches": 1,
        })
        assert state.total_alarms == 1
        assert state.total_sustained == 1
        assert state.total_degraded == 0


class TestReporting:
    def test_summary_states(self, predictor, income_splits):
        monitor = BatchMonitor(predictor)
        assert "no batches" in monitor.summary()
        monitor.observe(income_splits.serving.head(100))
        assert "state: ok" in monitor.summary()

    def test_recent_records(self, predictor, income_splits):
        monitor = BatchMonitor(predictor)
        batch = income_splits.serving.head(50)
        for _ in range(5):
            monitor.observe(batch)
        recent = monitor.recent_records(2)
        assert [record.batch_index for record in recent] == [3, 4]

    @pytest.mark.parametrize("n", [0, -1, -10])
    def test_recent_records_nonpositive_is_empty(self, predictor, income_splits, n):
        # Regression: records[-0:] aliased the *entire* history, so
        # recent_records(0) returned everything instead of nothing.
        monitor = BatchMonitor(predictor)
        batch = income_splits.serving.head(50)
        for _ in range(3):
            monitor.observe(batch)
        assert monitor.recent_records(n) == []


class TestAlarmScoreStream:
    """``alarm_score`` decouples what alarms from what is reported."""

    def test_alarm_fires_on_the_alarm_score_not_the_estimate(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10)
        healthy = predictor.test_score_
        record = monitor.observe_estimate(healthy, 100, alarm_score=0.0)
        assert record.alarm is True
        assert record.estimated_score == pytest.approx(healthy)

    def test_low_estimate_with_healthy_alarm_score_stays_quiet(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10)
        record = monitor.observe_estimate(
            0.0, 100, alarm_score=predictor.test_score_
        )
        assert record.alarm is False
        assert record.estimated_score == 0.0

    def test_none_alarm_score_is_bit_identical_to_legacy(self, predictor, rng):
        legacy = BatchMonitor(predictor, threshold=0.10, smoothing=0.4, patience=2)
        explicit = BatchMonitor(predictor, threshold=0.10, smoothing=0.4, patience=2)
        estimates = rng.uniform(0.3, 0.9, size=12)
        for estimate in estimates:
            a = legacy.observe_estimate(float(estimate), 100)
            b = explicit.observe_estimate(
                float(estimate), 100, alarm_score=float(estimate)
            )
            assert a == b
        assert legacy._smoothed == explicit._smoothed
        assert legacy._smoothed_alarm == explicit._smoothed_alarm
        assert legacy.state.total_alarms == explicit.state.total_alarms

    def test_sustained_check_runs_on_the_smoothed_alarm_stream(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10, patience=2, smoothing=0.5)
        healthy = predictor.test_score_
        monitor.observe_estimate(healthy, 100, alarm_score=0.0)
        record = monitor.observe_estimate(healthy, 100, alarm_score=0.0)
        assert record.sustained_alarm is True
        # The reported smoothing stream still tracks the healthy estimate.
        assert record.smoothed_score == pytest.approx(healthy)

    def test_reset_clears_the_alarm_stream(self, predictor):
        monitor = BatchMonitor(predictor, threshold=0.10)
        monitor.observe_estimate(predictor.test_score_, 100, alarm_score=0.0)
        monitor.reset()
        assert monitor._smoothed_alarm is None
