"""Tests for the corruption sampler (Algorithm 1's data generation loop)."""

import numpy as np
import pytest

from repro.core.corruption import CorruptionSampler
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError


@pytest.fixture
def sampler(income_blackbox):
    return CorruptionSampler(
        income_blackbox,
        [MissingValues(), Scaling()],
        mode="single",
        include_clean=True,
    )


class TestCorruptionSampler:
    def test_sample_count_includes_clean(self, sampler, income_splits, rng):
        samples = sampler.sample(income_splits.test, income_splits.y_test, 6, rng)
        assert len(samples) == 7
        assert samples[0].reports == ()  # the clean copy comes first

    def test_single_mode_cycles_generators(self, sampler, income_splits, rng):
        samples = sampler.sample(income_splits.test, income_splits.y_test, 4, rng)
        names = [s.reports[0].error_name for s in samples[1:]]
        assert names == ["missing_values", "scaling", "missing_values", "scaling"]

    def test_mixture_mode_varies_report_counts(self, income_blackbox, income_splits):
        sampler = CorruptionSampler(
            income_blackbox,
            [MissingValues(), Scaling(), GaussianOutliers()],
            mode="mixture",
            include_clean=False,
            fire_prob=0.5,
        )
        rng = np.random.default_rng(0)
        samples = sampler.sample(income_splits.test, income_splits.y_test, 20, rng)
        counts = {len(s.reports) for s in samples}
        assert len(counts) > 1

    def test_scores_in_unit_interval(self, sampler, income_splits, rng):
        samples = sampler.sample(income_splits.test, income_splits.y_test, 6, rng)
        assert all(0.0 <= s.score <= 1.0 for s in samples)

    def test_proba_shapes_match_test_rows(self, sampler, income_splits, rng):
        samples = sampler.sample(income_splits.test, income_splits.y_test, 2, rng)
        for sample in samples:
            assert sample.proba.shape == (len(income_splits.test), 2)

    def test_clean_score_equals_direct_score(self, sampler, income_blackbox, income_splits, rng):
        samples = sampler.sample(income_splits.test, income_splits.y_test, 1, rng)
        direct = income_blackbox.score(income_splits.test, income_splits.y_test)
        assert samples[0].score == pytest.approx(direct)

    def test_corruption_tends_to_lower_scores(self, income_blackbox, income_splits):
        sampler = CorruptionSampler(
            income_blackbox, [Scaling()], mode="single", include_clean=True
        )
        rng = np.random.default_rng(1)
        samples = sampler.sample(income_splits.test, income_splits.y_test, 12, rng)
        clean = samples[0].score
        corrupted_scores = [s.score for s in samples[1:]]
        assert min(corrupted_scores) < clean

    def test_invalid_mode_raises(self, income_blackbox):
        with pytest.raises(DataValidationError):
            CorruptionSampler(income_blackbox, [Scaling()], mode="bulk")

    def test_empty_generators_raise(self, income_blackbox):
        with pytest.raises(DataValidationError):
            CorruptionSampler(income_blackbox, [])

    def test_zero_samples_raise(self, sampler, income_splits, rng):
        with pytest.raises(DataValidationError):
            sampler.sample(income_splits.test, income_splits.y_test, 0, rng)

    def test_roc_auc_metric(self, income_blackbox, income_splits, rng):
        sampler = CorruptionSampler(
            income_blackbox, [MissingValues()], metric="roc_auc", mode="single"
        )
        samples = sampler.sample(income_splits.test, income_splits.y_test, 2, rng)
        assert all(0.0 <= s.score <= 1.0 for s in samples)
