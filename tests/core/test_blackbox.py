"""Tests for the black box model wrapper."""

import numpy as np
import pytest

from repro.core.blackbox import BlackBoxModel
from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def make_frame(n: int = 10) -> DataFrame:
    return DataFrame.from_dict(
        {"x": np.linspace(0, 1, n)}, {"x": ColumnType.NUMERIC}
    )


def fake_predict_proba(frame: DataFrame) -> np.ndarray:
    p = frame["x"]
    return np.column_stack([1.0 - p, p])


class TestConstruction:
    def test_wrap_pipeline_like_object(self, income_blackbox, income_splits):
        proba = income_blackbox.predict_proba(income_splits.test)
        assert proba.shape == (len(income_splits.test), 2)

    def test_wrap_bare_callable_requires_classes(self):
        with pytest.raises(DataValidationError):
            BlackBoxModel(fake_predict_proba)

    def test_wrap_bare_callable_with_classes(self):
        model = BlackBoxModel(fake_predict_proba, classes=np.array(["no", "yes"]))
        assert model.n_classes == 2

    def test_single_class_rejected(self):
        with pytest.raises(DataValidationError):
            BlackBoxModel(fake_predict_proba, classes=np.array(["only"]))


class TestPrediction:
    def make(self) -> BlackBoxModel:
        return BlackBoxModel(fake_predict_proba, classes=np.array(["no", "yes"]))

    def test_predict_argmax(self):
        model = self.make()
        predictions = model.predict(make_frame(3))
        # x = 0, .5, 1; argmax ties (x = .5) resolve to the first class.
        assert list(predictions) == ["no", "no", "yes"]

    def test_proba_shape_validated(self):
        bad = BlackBoxModel(lambda frame: np.zeros((2, 2)), classes=np.array([0, 1]))
        with pytest.raises(DataValidationError):
            bad.predict_proba(make_frame(5))

    def test_class_count_validated(self):
        bad = BlackBoxModel(
            lambda frame: np.zeros((len(frame), 3)), classes=np.array([0, 1])
        )
        with pytest.raises(DataValidationError):
            bad.predict_proba(make_frame(5))


class TestScoring:
    def make(self) -> BlackBoxModel:
        return BlackBoxModel(fake_predict_proba, classes=np.array(["no", "yes"]))

    def test_accuracy(self):
        frame = make_frame(4)  # x = 0, 1/3, 2/3, 1 -> no, no, yes, yes
        labels = np.array(["no", "yes", "yes", "yes"], dtype=object)
        assert self.make().score(frame, labels) == 0.75

    def test_roc_auc(self):
        frame = make_frame(4)
        labels = np.array(["no", "no", "yes", "yes"], dtype=object)
        assert self.make().score(frame, labels, metric="roc_auc") == 1.0

    def test_unknown_metric_raises(self):
        with pytest.raises(DataValidationError):
            self.make().score(make_frame(2), np.array(["no", "yes"]), metric="brier")

    def test_real_blackbox_score_in_sane_range(self, income_blackbox, income_splits):
        score = income_blackbox.score(income_splits.test, income_splits.y_test)
        assert 0.6 < score < 1.0
        auc = income_blackbox.score(income_splits.test, income_splits.y_test, "roc_auc")
        assert 0.6 < auc <= 1.0
