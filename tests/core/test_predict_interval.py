"""Tests for the split-conformal score intervals."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.mixture import ErrorMixture
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=80,
        mode="mixture",
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


class TestPredictInterval:
    def test_interval_orders_and_contains_estimate(self, predictor, income_splits):
        lower, estimate, upper = predictor.predict_interval(income_splits.serving)
        assert 0.0 <= lower <= estimate <= upper <= 1.0

    def test_interval_widens_with_coverage(self, predictor, income_splits):
        narrow = predictor.predict_interval(income_splits.serving, coverage=0.5)
        wide = predictor.predict_interval(income_splits.serving, coverage=0.95)
        assert (wide[2] - wide[0]) >= (narrow[2] - narrow[0])

    def test_empirical_coverage_is_roughly_right(
        self, predictor, income_blackbox, income_splits
    ):
        rng = np.random.default_rng(11)
        mixture = ErrorMixture(
            [MissingValues(), GaussianOutliers(), Scaling()], fire_prob=0.6
        )
        hits = 0
        rounds = 20
        for _ in range(rounds):
            corrupted, _ = mixture.corrupt_random(income_splits.serving, rng)
            lower, _, upper = predictor.predict_interval(corrupted, coverage=0.9)
            truth = income_blackbox.score(corrupted, income_splits.y_serving)
            hits += lower <= truth <= upper
        # Conformal validity is approximate at this scale; require a clear
        # majority rather than the exact nominal rate.
        assert hits / rounds >= 0.6

    def test_invalid_coverage_raises(self, predictor, income_splits):
        with pytest.raises(DataValidationError):
            predictor.predict_interval(income_splits.serving, coverage=1.0)

    def test_tiny_meta_corpus_has_no_calibration(self, income_blackbox, income_splits):
        small = PerformancePredictor(
            income_blackbox, [Scaling()], n_samples=8, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        assert small.calibration_residuals_ is None
        with pytest.raises(NotFittedError):
            small.predict_interval(income_splits.serving)
        with pytest.raises(NotFittedError):
            small.interval_from_estimate(0.8)

    def test_extreme_coverages_are_valid_and_ordered(self, predictor, income_splits):
        tight = predictor.predict_interval(income_splits.serving, coverage=0.01)
        loose = predictor.predict_interval(income_splits.serving, coverage=0.99)
        for lower, estimate, upper in (tight, loose):
            assert 0.0 <= lower <= estimate <= upper <= 1.0
        assert (loose[2] - loose[0]) >= (tight[2] - tight[0])
        # 0.01 coverage keeps essentially the smallest residual: the band
        # must hug the estimate.
        assert (tight[2] - tight[0]) <= 2.0 * float(
            np.quantile(predictor.calibration_residuals_, 0.01)
        ) + 1e-12

    @pytest.mark.parametrize("coverage", [0.0, 1.0, -0.5, 2.0])
    def test_interval_from_estimate_validates_coverage(self, predictor, coverage):
        with pytest.raises(DataValidationError):
            predictor.interval_from_estimate(0.8, coverage=coverage)

    def test_interval_clips_at_unit_borders(self, predictor):
        width = float(np.quantile(predictor.calibration_residuals_, 0.99))
        assert width > 0.0
        lower, estimate, upper = predictor.interval_from_estimate(1.0, coverage=0.99)
        assert (lower, estimate, upper) == (pytest.approx(1.0 - width), 1.0, 1.0)
        lower, estimate, upper = predictor.interval_from_estimate(0.0, coverage=0.99)
        assert (lower, estimate, upper) == (0.0, 0.0, pytest.approx(width))

    def test_interval_from_estimate_matches_predict_interval(
        self, predictor, income_splits
    ):
        batch = income_splits.serving.head(300)
        estimate = predictor.predict(batch)
        assert predictor.interval_from_estimate(estimate, 0.8) == pytest.approx(
            predictor.predict_interval(batch, coverage=0.8)
        )
