"""Tests for the split-conformal score intervals."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.mixture import ErrorMixture
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError, NotFittedError
from repro.uncertainty import conformal_quantile


@pytest.fixture(scope="module")
def predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=80,
        mode="mixture",
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


class TestPredictInterval:
    def test_interval_orders_and_contains_estimate(self, predictor, income_splits):
        lower, estimate, upper = predictor.predict_interval(income_splits.serving)
        assert 0.0 <= lower <= estimate <= upper <= 1.0

    def test_interval_widens_with_coverage(self, predictor, income_splits):
        narrow = predictor.predict_interval(income_splits.serving, coverage=0.5)
        wide = predictor.predict_interval(income_splits.serving, coverage=0.95)
        assert (wide[2] - wide[0]) >= (narrow[2] - narrow[0])

    def test_empirical_coverage_is_roughly_right(
        self, predictor, income_blackbox, income_splits
    ):
        rng = np.random.default_rng(11)
        mixture = ErrorMixture(
            [MissingValues(), GaussianOutliers(), Scaling()], fire_prob=0.6
        )
        hits = 0
        rounds = 20
        for _ in range(rounds):
            corrupted, _ = mixture.corrupt_random(income_splits.serving, rng)
            lower, _, upper = predictor.predict_interval(corrupted, coverage=0.9)
            truth = income_blackbox.score(corrupted, income_splits.y_serving)
            hits += lower <= truth <= upper
        # Conformal validity is approximate at this scale; require a clear
        # majority rather than the exact nominal rate.
        assert hits / rounds >= 0.6

    def test_invalid_coverage_raises(self, predictor, income_splits):
        with pytest.raises(DataValidationError):
            predictor.predict_interval(income_splits.serving, coverage=1.0)

    def test_tiny_meta_corpus_has_no_calibration(self, income_blackbox, income_splits):
        small = PerformancePredictor(
            income_blackbox, [Scaling()], n_samples=8, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        assert small.calibration_residuals_ is None
        with pytest.raises(NotFittedError):
            small.predict_interval(income_splits.serving)
        with pytest.raises(NotFittedError):
            small.interval_from_estimate(0.8)

    def test_extreme_coverages_are_valid_and_ordered(self, predictor, income_splits):
        tight = predictor.predict_interval(income_splits.serving, coverage=0.01)
        loose = predictor.predict_interval(income_splits.serving, coverage=0.99)
        for lower, estimate, upper in (tight, loose):
            assert 0.0 <= lower <= estimate <= upper <= 1.0
        assert (loose[2] - loose[0]) >= (tight[2] - tight[0])
        # 0.01 coverage keeps essentially the smallest residual: the band
        # must hug the estimate.
        assert (tight[2] - tight[0]) <= 2.0 * conformal_quantile(
            predictor.calibration_residuals_, 0.01
        ) + 1e-12

    @pytest.mark.parametrize("coverage", [0.0, 1.0, -0.5, 2.0])
    def test_interval_from_estimate_validates_coverage(self, predictor, coverage):
        with pytest.raises(DataValidationError):
            predictor.interval_from_estimate(0.8, coverage=coverage)

    def test_interval_clips_at_unit_borders(self, predictor):
        width = conformal_quantile(predictor.calibration_residuals_, 0.99)
        assert width > 0.0
        lower, estimate, upper = predictor.interval_from_estimate(1.0, coverage=0.99)
        assert (lower, estimate, upper) == (pytest.approx(1.0 - width), 1.0, 1.0)
        lower, estimate, upper = predictor.interval_from_estimate(0.0, coverage=0.99)
        assert (lower, estimate, upper) == (0.0, 0.0, pytest.approx(width))

    def test_interval_from_estimate_matches_predict_interval(
        self, predictor, income_splits
    ):
        batch = income_splits.serving.head(300)
        estimate = predictor.predict(batch)
        assert predictor.interval_from_estimate(estimate, 0.8) == pytest.approx(
            predictor.predict_interval(batch, coverage=0.8)
        )


class TestFiniteSampleQuantile:
    """Regression tests for the split-conformal quantile rank.

    The plug-in ``np.quantile(residuals, coverage)`` interpolates between
    order statistics and undercovers for small calibration sets; the
    conformal guarantee needs the ``ceil((n+1)*coverage)``-th smallest
    residual. These pin the n=9, coverage=0.9 case where the two differ
    (interpolation gives 0.82, the corrected rank gives the maximum 0.9).
    """

    def _predictor_with_residuals(self, residuals):
        predictor = PerformancePredictor.__new__(PerformancePredictor)
        predictor.calibration_residuals_ = np.asarray(residuals, dtype=float)
        return predictor

    def test_n9_coverage_90_takes_the_max_residual(self):
        residuals = np.linspace(0.01, 0.09, 9)  # 0.01, 0.02, ..., 0.09
        predictor = self._predictor_with_residuals(residuals)
        lower, estimate, upper = predictor.interval_from_estimate(0.5, coverage=0.9)
        # ceil((9 + 1) * 0.9) = 9 -> the 9th order statistic, 0.09. The old
        # np.quantile code interpolated to 0.082 and the interval undercovered.
        assert upper - estimate == pytest.approx(0.09)
        assert estimate - lower == pytest.approx(0.09)
        assert float(np.quantile(residuals, 0.9)) < 0.09 - 1e-9

    def test_width_is_the_conformal_rank_order_statistic(self):
        rng = np.random.default_rng(5)
        residuals = rng.uniform(size=25)
        predictor = self._predictor_with_residuals(residuals)
        for coverage in (0.1, 0.5, 0.8, 0.9, 0.99):
            _, estimate, upper = predictor.interval_from_estimate(0.3, coverage)
            rank = min(len(residuals), int(np.ceil((len(residuals) + 1) * coverage)))
            expected = float(np.sort(residuals)[rank - 1])
            assert upper - estimate == pytest.approx(min(expected, 0.7))


class TestSamplingInflation:
    """Small serving batches widen the conformal interval."""

    def test_small_batches_get_wider_intervals(self, predictor):
        tiny = predictor.interval_from_estimate(0.7, coverage=0.9, n_rows=20)
        large = predictor.interval_from_estimate(
            0.7, coverage=0.9, n_rows=predictor.calibration_rows_
        )
        assert (tiny[2] - tiny[0]) > (large[2] - large[0])

    def test_no_inflation_at_or_above_calibration_size(self, predictor):
        base = predictor.interval_from_estimate(0.7, coverage=0.9)
        at_scale = predictor.interval_from_estimate(
            0.7, coverage=0.9, n_rows=predictor.calibration_rows_
        )
        beyond = predictor.interval_from_estimate(
            0.7, coverage=0.9, n_rows=10 * predictor.calibration_rows_
        )
        assert at_scale == pytest.approx(base)
        assert beyond == pytest.approx(base)

    def test_inflation_matches_the_binomial_term(self, predictor):
        from repro.uncertainty import normal_quantile

        estimate, coverage, n = 0.7, 0.9, 40
        base_width = conformal_quantile(predictor.calibration_residuals_, coverage)
        variance = estimate * (1 - estimate) * (
            1 / n - 1 / predictor.calibration_rows_
        )
        expected = base_width + normal_quantile(0.5 + coverage / 2) * np.sqrt(variance)
        _, _, upper = predictor.interval_from_estimate(estimate, coverage, n_rows=n)
        assert upper - estimate == pytest.approx(expected)

    def test_old_pickles_without_calibration_rows_still_work(self, predictor):
        # Predictors fitted before calibration_rows_ existed fall back to
        # pure 1/n inflation.
        bare = PerformancePredictor.__new__(PerformancePredictor)
        bare.calibration_residuals_ = predictor.calibration_residuals_
        interval = bare.interval_from_estimate(0.7, coverage=0.9, n_rows=40)
        assert interval[2] - interval[0] > 2 * conformal_quantile(
            predictor.calibration_residuals_, 0.9
        )


class TestIntervalAlarmMargin:
    def test_conformal_margin_is_the_unclipped_width(self, predictor):
        margin = predictor.interval_alarm_margin(0.9, n_rows=100)
        expected = conformal_quantile(
            predictor.calibration_residuals_, 0.9
        ) + predictor._sampling_inflation(predictor.test_score_, 0.9, 100)
        assert margin == pytest.approx(expected)
        assert margin > 0.0

    def test_margin_grows_as_batches_shrink(self, predictor):
        assert predictor.interval_alarm_margin(0.9, n_rows=20) > (
            predictor.interval_alarm_margin(0.9, n_rows=2000)
        )

    def test_cqr_margin_is_the_inflated_baseline_halfwidth(self, predictor):
        margin = predictor.interval_alarm_margin(0.9, n_rows=100, method="cqr")
        assert margin == pytest.approx(
            predictor.interval_model(0.9).baseline_halfwidth_
            + predictor._sampling_inflation(predictor.test_score_, 0.9, 100)
        )
        # The CQR stream inflates exactly like the conformal one, so
        # tiny batches don't page on their own sampling noise.
        assert predictor.interval_alarm_margin(0.9, n_rows=20, method="cqr") > (
            predictor.interval_alarm_margin(0.9, n_rows=2000, method="cqr")
        )

    def test_unknown_method_rejected(self, predictor):
        with pytest.raises(DataValidationError):
            predictor.interval_alarm_margin(0.9, method="bootstrap")

    def test_uncalibrated_predictor_cannot_price_a_margin(
        self, income_blackbox, income_splits
    ):
        small = PerformancePredictor(
            income_blackbox, [Scaling()], n_samples=8, random_state=0
        ).fit(income_splits.test, income_splits.y_test)
        with pytest.raises(NotFittedError):
            small.interval_alarm_margin(0.9, n_rows=100)
        with pytest.raises(NotFittedError):
            small.interval_alarm_margin(0.9, n_rows=100, method="cqr")


class TestCQRFromPredictor:
    def test_cqr_interval_contains_the_estimate(self, predictor, income_splits):
        batch = income_splits.serving.head(300)
        lower, estimate, upper = predictor.predict_interval(
            batch, coverage=0.9, method="cqr"
        )
        assert 0.0 <= lower <= estimate <= upper <= 1.0

    def test_interval_models_are_cached_per_coverage(self, predictor):
        first = predictor.interval_model(0.9)
        assert predictor.interval_model(0.9) is first
        assert predictor.interval_model(0.8) is not first

    def test_cqr_interval_inflates_for_small_batches(
        self, predictor, income_splits
    ):
        # The heads learned quantiles at the calibration batch size; a
        # small batch's observed score adds binomial noise on top, so
        # the served CQR interval must widen as the batch shrinks —
        # without this the CQR path undercovers exactly where serving
        # lives (the conformal path already had the term).
        batch = income_splits.serving.head(300)
        proba = predictor.blackbox.predict_proba(batch)
        features = predictor._featurize(proba)
        estimate = predictor.predict_from_proba(proba, features)

        def width(n_rows):
            lower, _, upper = predictor.interval_from_features(
                features, estimate, 0.9, "cqr", n_rows=n_rows
            )
            return upper - lower

        assert width(20) > width(2000)
        inflation = predictor._sampling_inflation(estimate, 0.9, 20)
        assert inflation > 0.0
        assert width(20) == pytest.approx(width(None) + 2 * inflation, abs=1e-9)

    def test_unknown_method_rejected_end_to_end(self, predictor, income_splits):
        with pytest.raises(DataValidationError):
            predictor.predict_interval(
                income_splits.serving.head(50), method="bootstrap"
            )
