"""End-to-end checks of the m-class code paths (the paper's formalism is
m-class even though its evaluation datasets are binary)."""

import numpy as np
import pytest

from repro.baselines.bbse import BBSE, BBSEh
from repro.core.blackbox import BlackBoxModel
from repro.core.featurize import prediction_statistics
from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.ml.linear import SGDClassifier
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.tabular.frame import DataFrame
from repro.tabular.ops import split_frame, train_test_split
from repro.tabular.schema import ColumnType


@pytest.fixture(scope="module")
def three_class_problem():
    """A 3-class tabular problem with mixed column types."""
    rng = np.random.default_rng(0)
    n = 1800
    centers = {"low": -2.0, "mid": 0.0, "high": 2.0}
    labels = rng.choice(list(centers), size=n)
    x1 = np.array([centers[label] for label in labels]) + rng.normal(size=n)
    x2 = np.array([centers[label] for label in labels]) * -0.5 + rng.normal(size=n)
    tier = np.array(
        [
            {"low": "bronze", "mid": "silver", "high": "gold"}[label]
            if rng.random() < 0.7 else str(rng.choice(["bronze", "silver", "gold"]))
            for label in labels
        ],
        dtype=object,
    )
    frame = DataFrame.from_dict(
        {"x1": x1, "x2": x2, "tier": tier},
        {"x1": ColumnType.NUMERIC, "x2": ColumnType.NUMERIC, "tier": ColumnType.CATEGORICAL},
    )
    (source, y_source), (serving, y_serving) = split_frame(
        frame, labels.astype(object), (0.6, 0.4), rng
    )
    train, y_train, test, y_test = train_test_split(source, y_source, 0.35, rng)
    pipeline = Pipeline(TabularEncoder(), SGDClassifier(epochs=15, random_state=0))
    pipeline.fit(train, y_train)
    blackbox = BlackBoxModel.wrap(pipeline)
    return blackbox, test, y_test, serving, y_serving


class TestMulticlassBlackBox:
    def test_three_probability_columns(self, three_class_problem):
        blackbox, test, _, _, _ = three_class_problem
        proba = blackbox.predict_proba(test)
        assert proba.shape[1] == 3
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_model_learns_the_task(self, three_class_problem):
        blackbox, test, y_test, _, _ = three_class_problem
        assert blackbox.score(test, y_test) > 0.7

    def test_featurization_width_scales_with_classes(self, three_class_problem):
        blackbox, test, _, _, _ = three_class_problem
        features = prediction_statistics(blackbox.predict_proba(test))
        assert features.shape == (3 * 21,)


class TestMulticlassPredictor:
    @pytest.fixture(scope="class")
    def predictor(self, three_class_problem):
        blackbox, test, y_test, _, _ = three_class_problem
        return PerformancePredictor(
            blackbox, [MissingValues(), GaussianOutliers(), Scaling()],
            n_samples=60, random_state=0,
        ).fit(test, y_test)

    def test_clean_estimate_near_truth(self, predictor, three_class_problem):
        blackbox, _, _, serving, y_serving = three_class_problem
        estimate = predictor.predict(serving)
        truth = blackbox.score(serving, y_serving)
        assert abs(estimate - truth) < 0.08

    def test_detects_catastrophe(self, predictor, three_class_problem, rng):
        blackbox, _, _, serving, y_serving = three_class_problem
        broken = Scaling().corrupt(
            serving, rng, columns=["x1", "x2"], fraction=1.0, factor=1000.0
        )
        estimate = predictor.predict(broken)
        truth = blackbox.score(broken, y_serving)
        assert estimate < predictor.test_score_ - 0.1
        assert abs(estimate - truth) < 0.15


class TestMulticlassValidatorAndBaselines:
    def test_validator_fits_and_decides(self, three_class_problem):
        blackbox, test, y_test, serving, _ = three_class_problem
        validator = PerformanceValidator(
            blackbox, [MissingValues(), Scaling()], threshold=0.1,
            n_samples=60, random_state=0,
        ).fit(test, y_test)
        # 3 classes: 63 percentiles + 6 KS + 3 fractions + 2 chi2 = 74.
        assert validator.meta_features_.shape[1] == 74
        assert validator.validate(serving) is True

    def test_bbse_variants_handle_three_classes(self, three_class_problem, rng):
        blackbox, test, _, serving, _ = three_class_problem
        bbse = BBSE(blackbox).fit(test)
        bbse_h = BBSEh(blackbox).fit(test)
        assert bbse.shift_detected(serving) is False
        assert bbse_h.shift_detected(serving) is False
        broken = Scaling().corrupt(
            serving, rng, columns=["x1", "x2"], fraction=1.0, factor=1000.0
        )
        assert bbse.shift_detected(broken) is True
