"""Tests for the performance validator."""

import numpy as np
import pytest

from repro.core.validator import PerformanceValidator, default_validator_model
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling, SwappedValues
from repro.exceptions import DataValidationError, NotFittedError


@pytest.fixture(scope="module")
def fitted_validator(income_blackbox, income_splits):
    validator = PerformanceValidator(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), SwappedValues(), Scaling()],
        threshold=0.05,
        n_samples=100,
        random_state=0,
    )
    return validator.fit(income_splits.test, income_splits.y_test)


class TestFitting:
    def test_meta_labels_are_binary(self, fitted_validator):
        assert set(np.unique(fitted_validator.meta_labels_)) <= {0, 1}

    def test_both_decisions_present_in_training(self, fitted_validator):
        assert len(np.unique(fitted_validator.meta_labels_)) == 2

    def test_feature_width_includes_test_blocks(self, fitted_validator):
        # 42 percentiles + 2x(KS stat, p) + 2 class fractions + chi2 (stat, p).
        assert fitted_validator.meta_features_.shape[1] == 50

    def test_ks_features_can_be_disabled(self, income_blackbox, income_splits):
        validator = PerformanceValidator(
            income_blackbox, [Scaling()], n_samples=30,
            use_ks_features=False, random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert validator.meta_features_.shape[1] == 42

    def test_invalid_threshold_raises(self, income_blackbox):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(DataValidationError):
                PerformanceValidator(income_blackbox, [Scaling()], threshold=bad)


class TestDecisions:
    def test_trusts_clean_serving_data(self, fitted_validator, income_splits):
        assert fitted_validator.validate(income_splits.serving) is True

    def test_alarms_on_catastrophic_corruption(self, fitted_validator, income_splits, rng):
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        assert fitted_validator.validate(corrupted) is False

    def test_decision_proba_in_unit_interval(self, fitted_validator, income_splits):
        probability = fitted_validator.decision_proba(income_splits.serving)
        assert 0.0 <= probability <= 1.0

    def test_decision_proba_higher_for_clean_than_corrupted(
        self, fitted_validator, income_splits, rng
    ):
        clean_proba = fitted_validator.decision_proba(income_splits.serving)
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        assert clean_proba > fitted_validator.decision_proba(corrupted)

    def test_validate_from_proba_matches_validate(
        self, fitted_validator, income_blackbox, income_splits
    ):
        proba = income_blackbox.predict_proba(income_splits.serving)
        assert fitted_validator.validate_from_proba(proba) == fitted_validator.validate(
            income_splits.serving
        )

    def test_unfitted_raises(self, income_blackbox, income_splits):
        validator = PerformanceValidator(income_blackbox, [Scaling()])
        with pytest.raises(NotFittedError):
            validator.validate(income_splits.serving)


class TestDegenerateCorpus:
    def test_constant_fallback_when_nothing_violates(self, income_blackbox, income_splits):
        # Missing values barely move this model, so with a huge threshold
        # every corrupted copy stays acceptable -> constant decision.
        validator = PerformanceValidator(
            income_blackbox, [MissingValues()], threshold=0.45,
            n_samples=15, random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert validator._constant_decision == 1
        assert validator.validate(income_splits.serving) is True
        assert validator.decision_proba(income_splits.serving) == 1.0


class TestDefaultModel:
    def test_is_gradient_boosting(self):
        from repro.ml.boosting import GradientBoostingClassifier

        assert isinstance(default_validator_model(), GradientBoostingClassifier)
