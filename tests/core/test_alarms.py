"""Tests for serving-time alarm helpers."""

import numpy as np
import pytest

from repro.core.alarms import ValidationReport, alarm_floor, check_serving_batch
from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import DataValidationError


@pytest.fixture(scope="module")
def predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox, [MissingValues(), Scaling()], n_samples=40, random_state=0
    ).fit(income_splits.test, income_splits.y_test)


class TestAlarmFloor:
    def test_relative_floor(self):
        assert alarm_floor(0.8, 0.05) == pytest.approx(0.76)
        assert alarm_floor(0.8, 0.5) == pytest.approx(0.4)

    @pytest.mark.parametrize("threshold", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_threshold_raises(self, threshold):
        with pytest.raises(DataValidationError):
            alarm_floor(0.8, threshold)

    def test_shared_by_monitor_and_check(self, predictor, income_splits):
        from repro.monitoring import BatchMonitor

        monitor = BatchMonitor(predictor, threshold=0.07)
        report = check_serving_batch(
            predictor, income_splits.serving.head(100), threshold=0.07
        )
        floor = alarm_floor(predictor.test_score_, 0.07)
        assert monitor.alarm_floor == pytest.approx(floor)
        assert report.alarm == (report.estimated_score < floor)


class TestValidationReport:
    def test_relative_drop(self):
        report = ValidationReport(
            estimated_score=0.72, expected_score=0.8, threshold=0.05, alarm=True
        )
        assert report.relative_drop == pytest.approx(0.1)

    def test_relative_drop_zero_expected(self):
        report = ValidationReport(
            estimated_score=0.0, expected_score=0.0, threshold=0.05, alarm=False
        )
        assert report.relative_drop == 0.0

    def test_describe_mentions_state(self):
        alarm = ValidationReport(0.5, 0.8, 0.05, True)
        ok = ValidationReport(0.79, 0.8, 0.05, False)
        assert "ALARM" in alarm.describe()
        assert "[ok]" in ok.describe()


class TestCheckServingBatch:
    def test_no_alarm_on_clean_batch(self, predictor, income_splits):
        report = check_serving_batch(predictor, income_splits.serving, threshold=0.1)
        assert report.alarm is False
        assert report.expected_score == predictor.test_score_

    def test_alarm_on_catastrophic_batch(self, predictor, income_splits, rng):
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        report = check_serving_batch(predictor, corrupted, threshold=0.05)
        assert report.alarm is True
        assert report.estimated_score < report.expected_score

    def test_threshold_controls_sensitivity(self, predictor, income_splits, rng):
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        strict = check_serving_batch(predictor, corrupted, threshold=0.01)
        lax = check_serving_batch(predictor, corrupted, threshold=0.49)
        assert strict.alarm is True
        assert lax.alarm is False

    def test_invalid_threshold_raises(self, predictor, income_splits):
        with pytest.raises(DataValidationError):
            check_serving_batch(predictor, income_splits.serving, threshold=0.0)
