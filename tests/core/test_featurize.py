"""Tests for output featurization (prediction_statistics and KS features)."""

import numpy as np
import pytest

from repro.core.featurize import (
    ks_output_features,
    predicted_class_fractions,
    prediction_statistics,
)
from repro.exceptions import DataValidationError


class TestPredictionStatistics:
    def test_percentile_width(self, rng):
        proba = rng.random((50, 2))
        assert prediction_statistics(proba).shape == (42,)

    def test_step_controls_width(self, rng):
        proba = rng.random((50, 2))
        assert prediction_statistics(proba, step=25).shape == (10,)

    def test_non_divisor_step_width_is_consistent(self, rng):
        # Regression: step=7 yields the grid 0, 7, ..., 98, 100 (16
        # levels); fit-time and serving-time feature widths must match
        # regardless of batch size.
        fit_features = prediction_statistics(rng.random((80, 2)), step=7)
        serve_features = prediction_statistics(rng.random((17, 2)), step=7)
        assert fit_features.shape == serve_features.shape == (32,)

    def test_non_divisor_step_keeps_maximum(self):
        # The 100th percentile (the column max) must survive a step that
        # does not divide 100.
        column = np.linspace(0.0, 1.0, 200)
        proba = np.column_stack([1 - column, column])
        features = prediction_statistics(proba, step=7)
        assert features[15] == pytest.approx(1.0)  # max of class-0 column
        assert features[-1] == pytest.approx(1.0)  # max of class-1 column

    def test_moments_featurizer(self, rng):
        proba = rng.random((50, 2))
        assert prediction_statistics(proba, featurizer="moments").shape == (8,)

    def test_batch_size_invariance(self, rng):
        # Features from different batch sizes of the same distribution must
        # be close — the predictor depends on this at serving time.
        column = rng.beta(2, 5, size=20_000)
        proba = np.column_stack([1 - column, column])
        small = prediction_statistics(proba[:2000])
        large = prediction_statistics(proba)
        assert np.abs(small - large).max() < 0.05

    def test_unknown_featurizer_raises(self, rng):
        with pytest.raises(DataValidationError):
            prediction_statistics(rng.random((5, 2)), featurizer="wavelets")

    def test_rejects_1d(self):
        with pytest.raises(DataValidationError):
            prediction_statistics(np.array([0.1, 0.9]))

    def test_shifted_distribution_changes_features(self, rng):
        base = rng.beta(5, 5, size=500)
        shifted = np.clip(base + 0.3, 0, 1)
        f_base = prediction_statistics(np.column_stack([1 - base, base]))
        f_shift = prediction_statistics(np.column_stack([1 - shifted, shifted]))
        assert np.abs(f_base - f_shift).max() > 0.1


class TestKsOutputFeatures:
    def test_identical_outputs_give_zero_statistic(self, rng):
        proba = rng.random((100, 2))
        features = ks_output_features(proba, proba)
        # [stat, p, stat, p] with stat 0 and p 1.
        assert features[0] == 0.0 and features[1] == 1.0

    def test_shifted_outputs_detected(self, rng):
        p = rng.beta(2, 2, size=300)
        a = np.column_stack([1 - p, p])
        q = np.clip(p + 0.2, 0, 1)
        b = np.column_stack([1 - q, q])
        features = ks_output_features(b, a)
        assert features[0] > 0.15  # statistic
        assert features[1] < 0.01  # p-value

    def test_width_is_two_per_class(self, rng):
        a = rng.random((50, 3))
        b = rng.random((60, 3))
        assert ks_output_features(a, b).shape == (6,)

    def test_class_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            ks_output_features(rng.random((10, 2)), rng.random((10, 3)))


class TestPredictedClassFractions:
    def test_sums_to_one(self, rng):
        fractions = predicted_class_fractions(rng.random((100, 4)))
        assert fractions.shape == (4,)
        assert fractions.sum() == pytest.approx(1.0)

    def test_counts_argmax(self):
        proba = np.array([[0.9, 0.1], [0.8, 0.2], [0.3, 0.7]])
        assert list(predicted_class_fractions(proba)) == pytest.approx([2 / 3, 1 / 3])

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            predicted_class_fractions(np.empty((0, 2)))
