"""Tests for the performance predictor (Algorithms 1 & 2)."""

import numpy as np
import pytest

from repro.core.corruption import CorruptionSampler
from repro.core.predictor import PerformancePredictor, default_regressor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import NotFittedError
from repro.ml.boosting import GradientBoostingRegressor


@pytest.fixture(scope="module")
def fitted_predictor(income_blackbox, income_splits):
    predictor = PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=60,
        random_state=0,
    )
    return predictor.fit(income_splits.test, income_splits.y_test)


class TestFitting:
    def test_records_test_score(self, fitted_predictor, income_blackbox, income_splits):
        direct = income_blackbox.score(income_splits.test, income_splits.y_test)
        assert fitted_predictor.test_score_ == pytest.approx(direct)

    def test_meta_dataset_dimensions(self, fitted_predictor):
        n, d = fitted_predictor.meta_features_.shape
        assert n == 61  # 60 corrupted + 1 clean
        assert d == 42  # 21 percentiles x 2 classes
        assert fitted_predictor.meta_scores_.shape == (61,)

    def test_meta_scores_are_valid(self, fitted_predictor):
        assert np.all((fitted_predictor.meta_scores_ >= 0) & (fitted_predictor.meta_scores_ <= 1))

    def test_accepts_precomputed_samples(self, income_blackbox, income_splits, rng):
        sampler = CorruptionSampler(income_blackbox, [Scaling()], mode="single")
        samples = sampler.sample(income_splits.test, income_splits.y_test, 20, rng)
        predictor = PerformancePredictor(income_blackbox, [Scaling()], random_state=0)
        predictor.fit(income_splits.test, income_splits.y_test, samples=samples)
        assert len(predictor.meta_scores_) == 21

    def test_misaligned_labels_raise(self, income_blackbox, income_splits):
        predictor = PerformancePredictor(income_blackbox, [Scaling()])
        from repro.exceptions import DataValidationError

        with pytest.raises(DataValidationError):
            predictor.fit(income_splits.test, income_splits.y_test[:-1])


class TestPrediction:
    def test_estimate_in_unit_interval(self, fitted_predictor, income_splits):
        estimate = fitted_predictor.predict(income_splits.serving)
        assert 0.0 <= estimate <= 1.0

    def test_clean_serving_estimate_near_test_score(self, fitted_predictor, income_splits):
        estimate = fitted_predictor.predict(income_splits.serving)
        assert abs(estimate - fitted_predictor.test_score_) < 0.08

    def test_detects_catastrophic_corruption(
        self, fitted_predictor, income_blackbox, income_splits, rng
    ):
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        estimate = fitted_predictor.predict(corrupted)
        truth = income_blackbox.score(corrupted, income_splits.y_serving)
        assert abs(estimate - truth) < 0.12
        assert estimate < fitted_predictor.test_score_ - 0.05

    def test_estimates_track_truth_across_magnitudes(
        self, fitted_predictor, income_blackbox, income_splits, rng
    ):
        errors = []
        generator = MissingValues()
        for _ in range(8):
            corrupted, _ = generator.corrupt_random(income_splits.serving, rng)
            estimate = fitted_predictor.predict(corrupted)
            truth = income_blackbox.score(corrupted, income_splits.y_serving)
            errors.append(abs(estimate - truth))
        assert float(np.median(errors)) < 0.05

    def test_predict_from_proba_matches_predict(
        self, fitted_predictor, income_blackbox, income_splits
    ):
        proba = income_blackbox.predict_proba(income_splits.serving)
        assert fitted_predictor.predict_from_proba(proba) == pytest.approx(
            fitted_predictor.predict(income_splits.serving)
        )

    def test_expected_drop_sign(self, fitted_predictor, income_splits, rng):
        corrupted = Scaling().corrupt(
            income_splits.serving, rng,
            columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
        )
        assert fitted_predictor.expected_drop(corrupted) > 0.0

    def test_unfitted_raises(self, income_blackbox, income_splits):
        predictor = PerformancePredictor(income_blackbox, [Scaling()])
        with pytest.raises(NotFittedError):
            predictor.predict(income_splits.serving)
        with pytest.raises(NotFittedError):
            predictor.expected_drop(income_splits.serving)


class TestConfigurations:
    def test_custom_regressor(self, income_blackbox, income_splits):
        predictor = PerformancePredictor(
            income_blackbox,
            [Scaling()],
            n_samples=20,
            regressor=GradientBoostingRegressor(n_stages=20, random_state=0),
            random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert 0.0 <= predictor.predict(income_splits.serving) <= 1.0

    def test_moments_featurizer(self, income_blackbox, income_splits):
        predictor = PerformancePredictor(
            income_blackbox, [Scaling()], n_samples=20,
            featurizer="moments", random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert predictor.meta_features_.shape[1] == 8

    def test_roc_auc_metric(self, income_blackbox, income_splits):
        predictor = PerformancePredictor(
            income_blackbox, [MissingValues()], n_samples=20,
            metric="roc_auc", random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        assert 0.0 <= predictor.predict(income_splits.serving) <= 1.0

    def test_default_regressor_is_cv_tuned_forest(self):
        search = default_regressor()
        assert search.param_grid == {"n_trees": [20, 50, 100]}
