"""Fused scoring kernel: bitwise parity with the reference featurizers."""

from __future__ import annotations

import copy
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featurize import prediction_statistics
from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError, NotFittedError
from repro.perf.kernels import (
    _GRID_PLAN_CAPACITY,
    _GRID_PLANS,
    FusedScorer,
    check_kernel,
    percentiles_from_sorted,
)
from repro.stats.descriptive import matrix_percentiles
from repro.stats.tests import ks_matrix_from_sorted, ks_two_sample

STEPS = (1, 2, 5, 7, 10, 25, 50, 100)


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    return a.shape == b.shape and a.tobytes() == b.tobytes()


class TestCheckKernel:
    def test_known_names_pass_through(self):
        assert check_kernel("fused") == "fused"
        assert check_kernel("reference") == "reference"

    def test_unknown_name_raises(self):
        with pytest.raises(DataValidationError, match="unknown kernel"):
            check_kernel("turbo")


class TestPercentilesFromSorted:
    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=60),
        m=st.integers(min_value=1, max_value=7),
        step=st.sampled_from(STEPS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        quantize=st.booleans(),
    )
    def test_bitwise_identical_to_matrix_percentiles(
        self, n, m, step, seed, quantize
    ):
        rng = np.random.default_rng(seed)
        matrix = rng.random((n, m))
        if quantize:
            # Heavy ties: only a handful of distinct values per column.
            matrix = np.round(matrix * 4) / 4
        fused = percentiles_from_sorted(np.sort(matrix, axis=0), step)
        assert _bitwise_equal(fused, matrix_percentiles(matrix, step=step))

    @pytest.mark.parametrize("step", STEPS)
    def test_constant_columns(self, step):
        matrix = np.full((13, 3), 0.25)
        matrix[:, 1] = 0.7
        fused = percentiles_from_sorted(np.sort(matrix, axis=0), step)
        assert _bitwise_equal(fused, matrix_percentiles(matrix, step=step))

    def test_single_row(self):
        matrix = np.array([[0.2, 0.3, 0.5]])
        fused = percentiles_from_sorted(matrix, 5)
        assert _bitwise_equal(fused, matrix_percentiles(matrix, step=5))

    @pytest.mark.parametrize("m", [1, 3, 5, 7])
    def test_odd_class_counts(self, m):
        matrix = np.random.default_rng(m).random((29, m))
        fused = percentiles_from_sorted(np.sort(matrix, axis=0), 5)
        assert _bitwise_equal(fused, matrix_percentiles(matrix, step=5))

    def test_empty_matrix_raises(self):
        with pytest.raises(DataValidationError, match="empty"):
            percentiles_from_sorted(np.empty((0, 2)), 5)

    def test_one_dimensional_raises(self):
        with pytest.raises(DataValidationError, match="2-d"):
            percentiles_from_sorted(np.zeros(5), 5)

    def test_grid_plan_cache_clears_at_capacity(self):
        _GRID_PLANS.clear()
        for fake in range(_GRID_PLAN_CAPACITY):
            _GRID_PLANS[(fake, -1)] = ()  # type: ignore[assignment]
        matrix = np.sort(np.random.default_rng(0).random((17, 2)), axis=0)
        expected = percentiles_from_sorted(matrix, 5)
        assert len(_GRID_PLANS) == 1  # capacity hit -> cleared, then refilled
        # The cached plan reproduces the first read exactly.
        assert _bitwise_equal(percentiles_from_sorted(matrix, 5), expected)


class TestKsMatrixFromSorted:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        m=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        quantize=st.booleans(),
    )
    def test_bitwise_identical_to_per_column_ks(self, n, m, cols, seed, quantize):
        rng = np.random.default_rng(seed)
        a = rng.random((n, cols))
        b = rng.random((m, cols))
        if quantize:
            a = np.round(a * 3) / 3
            b = np.round(b * 3) / 3
        merged = ks_matrix_from_sorted(np.sort(a, axis=0), np.sort(b, axis=0))
        for column in range(cols):
            result = ks_two_sample(a[:, column], b[:, column])
            assert merged[column, 0] == result.statistic
            assert merged[column, 1] == result.p_value

    def test_column_mismatch_raises(self):
        with pytest.raises(DataValidationError, match="mismatch"):
            ks_matrix_from_sorted(np.zeros((3, 2)), np.zeros((3, 3)))


@pytest.fixture(scope="module")
def fitted_pair(income_blackbox, income_splits):
    generators = [MissingValues(), GaussianOutliers(), Scaling()]
    predictor = PerformancePredictor(
        income_blackbox, generators, n_samples=20, random_state=0
    ).fit(income_splits.test, income_splits.y_test)
    validator = PerformanceValidator(
        income_blackbox, generators, threshold=0.05, n_samples=20, random_state=0
    ).fit(income_splits.test, income_splits.y_test)
    return predictor, validator


@pytest.fixture(scope="module")
def serving_probas(income_blackbox, income_splits):
    rng = np.random.default_rng(11)
    return [
        income_blackbox.predict_proba(
            income_splits.serving.select_rows(
                rng.choice(len(income_splits.serving), size=size, replace=True)
            )
        )
        for size in (1, 2, 37, 64)
    ]


class TestFusedScorer:
    def test_bitwise_identical_to_reference_featurizers(
        self, fitted_pair, serving_probas
    ):
        predictor, validator = fitted_pair
        scorer = FusedScorer(predictor, validator)
        for proba in serving_probas:
            pred, val = scorer.features(proba)
            assert _bitwise_equal(pred, predictor._featurize(proba))
            assert val is not None
            assert _bitwise_equal(val, validator._featurize(proba))

    @pytest.mark.parametrize("m", [3, 5])
    def test_odd_class_counts_predictor_only(self, m):
        predictor = SimpleNamespace(featurizer="percentiles", percentile_step=5)
        scorer = FusedScorer(predictor)
        proba = np.random.default_rng(m).random((21, m))
        pred, val = scorer.features(proba)
        assert val is None
        assert _bitwise_equal(pred, prediction_statistics(proba, step=5))

    def test_nan_batch_falls_back_to_reference(self, fitted_pair, serving_probas):
        predictor, validator = fitted_pair
        scorer = FusedScorer(predictor, validator)
        proba = serving_probas[-1].copy()
        proba[0, 0] = np.nan
        pred, val = scorer.features(proba)
        assert np.array_equal(pred, predictor._featurize(proba), equal_nan=True)
        assert np.array_equal(val, validator._featurize(proba), equal_nan=True)

    def test_empty_batch_raises_like_reference(self, fitted_pair):
        predictor, validator = fitted_pair
        scorer = FusedScorer(predictor, validator)
        with pytest.raises(DataValidationError):
            prediction_statistics(np.empty((0, 2)))
        with pytest.raises(DataValidationError):
            scorer.features(np.empty((0, 2)))

    def test_one_dimensional_raises(self, fitted_pair):
        predictor, validator = fitted_pair
        with pytest.raises(DataValidationError, match="probabilities"):
            FusedScorer(predictor, validator).features(np.zeros(4))

    def test_unfitted_validator_leaves_features_to_reference(
        self, fitted_pair, income_blackbox, serving_probas
    ):
        predictor, _ = fitted_pair
        unfitted = PerformanceValidator(income_blackbox, [MissingValues()])
        scorer = FusedScorer(predictor, unfitted)
        pred, val = scorer.features(serving_probas[0])
        assert val is None  # validate_from_proba raises NotFittedError itself
        assert _bitwise_equal(pred, predictor._featurize(serving_probas[0]))
        with pytest.raises(NotFittedError):
            unfitted.validate_from_proba(serving_probas[0])

    def test_constant_decision_validator_skips_features(
        self, fitted_pair, serving_probas
    ):
        predictor, validator = fitted_pair
        degenerate = copy.copy(validator)
        degenerate._constant_decision = 1
        _, val = FusedScorer(predictor, degenerate).features(serving_probas[0])
        assert val is None

    def test_class_count_mismatch_falls_back(self, fitted_pair):
        predictor, validator = fitted_pair
        scorer = FusedScorer(predictor, validator)
        proba = np.random.default_rng(0).random((9, 3))
        with pytest.raises(DataValidationError):
            validator._featurize(proba)
        with pytest.raises(DataValidationError):
            scorer.features(proba)

    def test_distinct_validator_step_still_identical(
        self, fitted_pair, income_blackbox, income_splits, serving_probas
    ):
        predictor, _ = fitted_pair
        validator = PerformanceValidator(
            income_blackbox,
            [MissingValues(), Scaling()],
            percentile_step=10,
            n_samples=12,
            random_state=0,
        ).fit(income_splits.test, income_splits.y_test)
        scorer = FusedScorer(predictor, validator)
        for proba in serving_probas:
            _, val = scorer.features(proba)
            assert _bitwise_equal(val, validator._featurize(proba))
