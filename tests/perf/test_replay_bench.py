"""Tests for the drift-replay benchmark and its regression gate."""

import pytest

from repro.perf.replay_bench import (
    DETECTABLE_FAMILIES,
    bench_drift_replay,
    check_detection_regression,
)


@pytest.fixture(scope="module")
def entry():
    # The replay workload is profile-independent; run it once.
    return bench_drift_replay({}, n_jobs=2, backend="thread")


class TestBenchDriftReplay:
    def test_parity_and_diversity_gates_pass(self, entry):
        assert entry["identical_results"] is True
        assert entry["resume_identical"] is True
        assert entry["scenario_diversity_ok"] is True
        assert entry["batches_scored"] == 96
        assert set(entry["scenarios"]) == {
            "gradual", "sudden", "seasonal", "adversarial",
        }

    def test_detectable_families_sustain_with_no_false_alarms(self, entry):
        for family in DETECTABLE_FAMILIES:
            scenario = entry["scenarios"][family]
            assert scenario["sustained_latency"] is not None
            assert scenario["false_alarm_rate"] == 0.0
        # Seasonal recurs below the detection floor by design.
        assert entry["scenarios"]["seasonal"]["false_alarm_rate"] == 0.0


def payload(**scenarios):
    return {
        "benchmarks": [{"name": "drift_replay", "scenarios": scenarios}]
    }


def scenario(detection=2, sustained=5, false_alarm_rate=0.0):
    return {
        "detection_latency": detection,
        "sustained_latency": sustained,
        "false_alarm_rate": false_alarm_rate,
    }


class TestCheckDetectionRegression:
    def test_identical_reports_pass(self):
        report = payload(gradual=scenario())
        assert check_detection_regression(report, report) == []

    def test_faster_detection_passes(self):
        assert check_detection_regression(
            payload(gradual=scenario(detection=1, sustained=3)),
            payload(gradual=scenario(detection=2, sustained=5)),
        ) == []

    def test_slower_detection_fails(self):
        failures = check_detection_regression(
            payload(gradual=scenario(detection=4)),
            payload(gradual=scenario(detection=2)),
        )
        assert any("detection_latency regressed from 2 to 4" in f for f in failures)

    def test_lost_detection_fails(self):
        failures = check_detection_regression(
            payload(gradual=scenario(sustained=None)),
            payload(gradual=scenario(sustained=5)),
        )
        assert any("sustained_latency regressed" in f for f in failures)

    def test_baseline_never_detected_is_not_a_regression(self):
        assert check_detection_regression(
            payload(seasonal=scenario(detection=None, sustained=None)),
            payload(seasonal=scenario(detection=None, sustained=None)),
        ) == []

    def test_new_false_alarms_fail(self):
        failures = check_detection_regression(
            payload(gradual=scenario(false_alarm_rate=0.25)),
            payload(gradual=scenario(false_alarm_rate=0.0)),
        )
        assert any("false alarms appeared" in f for f in failures)

    def test_missing_scenario_fails(self):
        failures = check_detection_regression(
            payload(gradual=scenario()),
            payload(gradual=scenario(), sudden=scenario()),
        )
        assert any("missing from current run" in f for f in failures)

    def test_baseline_without_replay_entry_is_skipped(self):
        assert check_detection_regression(
            payload(gradual=scenario()), {"benchmarks": []}
        ) == []

    def test_current_without_replay_entry_fails(self):
        failures = check_detection_regression(
            {"benchmarks": []}, payload(gradual=scenario())
        )
        assert failures == ["current report has no drift_replay entry"]
