"""Smoke tests for the serving-kernel benchmark and its report plumbing."""

from __future__ import annotations

from repro.perf.bench import format_report
from repro.perf.serving_bench import bench_serving_score

TINY_PROFILE = {
    "n_rows": 300,
    "serving_meta_samples": 6,
    "serving_batches": 3,
    "serving_batch_rows": 16,
    "serving_repeats": 1,
}


def test_bench_serving_score_reports_identity_and_latency():
    entry = bench_serving_score(TINY_PROFILE)
    assert entry["name"] == "serving_score_fused_vs_reference"
    assert entry["identical_results"] is True
    assert entry["batches"] == 3
    assert entry["batch_rows"] == 16
    assert entry["reference_seconds"] >= 0
    assert entry["fused_seconds"] >= 0
    assert entry["speedup"] is None or entry["speedup"] > 0
    # span_percentiles saw every score_now call of both streams
    assert entry["fused_score_latency_p50_ms"] is not None
    assert entry["fused_score_latency_p99_ms"] is not None
    assert entry["reference_score_latency_p50_ms"] is not None


def test_format_report_renders_serving_entry():
    """The serving entry has ``identical_results`` but none of the
    serial/parallel keys — it must hit its own branch, not the generic
    serial-vs-parallel one."""
    payload = {
        "profile": "smoke",
        "n_jobs": 4,
        "backend": "auto",
        "environment": {"cpu_count": 1},
        "benchmarks": [
            {
                "name": "serving_score_fused_vs_reference",
                "identical_results": True,
                "reference_kernel_ms_per_batch": 0.4,
                "fused_kernel_ms_per_batch": 0.2,
                "speedup": 2.0,
                "fused_score_latency_p50_ms": 1.5,
                "fused_score_latency_p99_ms": 3.0,
            }
        ],
    }
    text = format_report(payload)
    assert "serving_score_fused_vs_reference" in text
    assert "speedup" in text
    assert "[ok ]" in text
