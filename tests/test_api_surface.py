"""Public API surface checks: exports exist, __all__ is honest, and the
README's quickstart snippet keeps working."""

import importlib

import numpy as np
import pytest

import repro


PACKAGES = [
    "repro",
    "repro.automl",
    "repro.baselines",
    "repro.core",
    "repro.datasets",
    "repro.errors",
    "repro.evaluation",
    "repro.ml",
    "repro.obs",
    "repro.parallel",
    "repro.perf",
    "repro.serving",
    "repro.stats",
    "repro.tabular",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_is_sorted(self, package):
        module = importlib.import_module(package)
        exported = [n for n in getattr(module, "__all__", []) if n != "__version__"]
        assert exported == sorted(exported), f"{package}.__all__ is not sorted"

    def test_version_present(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_exception_hierarchy_rooted(self):
        for name in ("SchemaError", "NotFittedError", "DataValidationError",
                     "CorruptionError", "ServiceError"):
            assert issubclass(getattr(repro, name), repro.ReproError)

    def test_top_level_convenience_classes(self):
        assert repro.BlackBoxModel is importlib.import_module("repro.core").BlackBoxModel
        assert repro.PerformancePredictor is importlib.import_module(
            "repro.core"
        ).PerformancePredictor

    def test_side_modules_importable(self):
        for name in ("repro.persistence", "repro.monitoring", "repro.cli"):
            importlib.import_module(name)


class TestReadmeQuickstart:
    def test_snippet_runs(self):
        """The README quickstart, condensed, must execute as written."""
        from repro.core import BlackBoxModel, PerformancePredictor, check_serving_batch
        from repro.datasets import load_dataset
        from repro.errors import GaussianOutliers, MissingValues, Scaling, SwappedValues
        from repro.ml import Pipeline, SGDClassifier, TabularEncoder
        from repro.tabular import balance_classes, split_frame, train_test_split

        rng = np.random.default_rng(0)
        ds = load_dataset("income", n_rows=800)
        frame, labels = balance_classes(ds.frame, ds.labels, rng)
        (source, y_src), (serving, _) = split_frame(frame, labels, (0.6, 0.4), rng)
        train, y_train, test, y_test = train_test_split(source, y_src, 0.35, rng)

        model = Pipeline(TabularEncoder(), SGDClassifier(epochs=3)).fit(train, y_train)
        blackbox = BlackBoxModel.wrap(model)
        errors = [MissingValues(), GaussianOutliers(), SwappedValues(), Scaling()]
        predictor = PerformancePredictor(blackbox, errors, n_samples=12).fit(test, y_test)
        report = check_serving_batch(predictor, serving, threshold=0.05)
        assert 0.0 <= report.estimated_score <= 1.0
        assert isinstance(report.describe(), str)
