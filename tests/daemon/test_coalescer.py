"""Coalescer grouping rules under injectable clocks (no real sleeps)."""

from __future__ import annotations

from repro.daemon import BoundedRequestQueue, MicroBatchCoalescer, ScoreRequest
from repro.resilience import FakeClock
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class TickingClock:
    """A monotonic clock that advances a fixed step per reading.

    Lets the max-wait cutoff trigger deterministically without the test
    ever sleeping for the configured wait.
    """

    def __init__(self, step: float):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def _request(n_rows: int = 2) -> ScoreRequest:
    frame = DataFrame.from_dict(
        {"x": [float(i) for i in range(n_rows)]}, {"x": ColumnType.NUMERIC}
    )
    return ScoreRequest(endpoint="income", frame=frame)


def _preloaded(requests, **queue_kwargs) -> BoundedRequestQueue:
    queue_kwargs.setdefault("capacity", 64)
    queue = BoundedRequestQueue(**queue_kwargs)
    for request in requests:
        queue.put(request)
    return queue


class TestGrouping:
    def test_queued_burst_coalesces_into_one_group(self):
        requests = [_request(2) for _ in range(5)]
        queue = _preloaded(requests)
        coalescer = MicroBatchCoalescer(
            queue, max_batch_rows=10, max_wait_seconds=60.0, clock=FakeClock()
        )
        # The clock never moves: only the row budget can close the group,
        # and already-queued requests pop without blocking.
        assert coalescer.gather() == requests
        assert queue.depth == 0

    def test_row_budget_closes_group(self):
        requests = [_request(2) for _ in range(5)]
        queue = _preloaded(requests)
        coalescer = MicroBatchCoalescer(
            queue, max_batch_rows=4, max_wait_seconds=60.0, clock=FakeClock()
        )
        assert coalescer.gather() == requests[:2]
        assert coalescer.gather() == requests[2:4]

    def test_oversized_request_forms_its_own_group(self):
        big = _request(100)
        # The follow-up exactly fills the row budget so the second group
        # also closes on budget — a frozen clock never reaches max_wait.
        after = _request(10)
        queue = _preloaded([big, after])
        coalescer = MicroBatchCoalescer(
            queue, max_batch_rows=10, max_wait_seconds=60.0, clock=FakeClock()
        )
        assert coalescer.gather() == [big]  # never split, never held
        assert coalescer.gather() == [after]

    def test_max_wait_cutoff_driven_by_injected_clock(self):
        # One queued request, then the queue runs dry. A ticking clock
        # crosses max_wait after two readings, so gather returns the
        # partial group without ever sleeping max_wait of real time.
        lone = _request(2)
        queue = _preloaded([lone])
        coalescer = MicroBatchCoalescer(
            queue,
            max_batch_rows=100,
            max_wait_seconds=0.05,
            clock=TickingClock(step=0.03),
            idle_poll_seconds=0.001,
        )
        assert coalescer.gather() == [lone]

    def test_nonblocking_gather_on_empty_queue(self):
        queue = BoundedRequestQueue(capacity=4)
        coalescer = MicroBatchCoalescer(
            queue, max_batch_rows=10, max_wait_seconds=60.0, clock=FakeClock(),
            idle_poll_seconds=0.001,
        )
        assert coalescer.gather(block=False) == []


class TestClosedQueue:
    def test_gather_drains_then_signals_empty(self):
        requests = [_request(2) for _ in range(3)]
        queue = _preloaded(requests)
        queue.close()
        coalescer = MicroBatchCoalescer(
            queue, max_batch_rows=100, max_wait_seconds=60.0, clock=FakeClock(),
            idle_poll_seconds=0.001,
        )
        # Everything still queued comes out (drain), frozen clock and all:
        # the closed queue breaks the wait loop instead of idling.
        assert coalescer.gather() == requests
        # ... and once empty, gather reports the drain-complete signal.
        assert coalescer.gather() == []
