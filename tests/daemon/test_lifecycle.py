"""Daemon lifecycle: graceful drain, signal handling, config reload.

The exactly-once drain contract (satellite 4): SIGTERM stops admission,
every request already admitted is scored and answered exactly once —
no drops, no double-scores — and a SIGHUP reload swaps config without
dropping in-flight batches.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro import persistence
from repro.daemon import DaemonClient, ServingDaemon
from repro.exceptions import DaemonClosedError, DataValidationError
from repro.serving.config import DaemonSettings, load_daemon_settings


@pytest.fixture
def config_on_disk(tmp_path, daemon_predictor):
    """A serving config + artifact dir a daemon can reload from."""
    artifact_dir = tmp_path / "deployed" / "income"
    artifact_dir.mkdir(parents=True)
    persistence.save_model(daemon_predictor, artifact_dir / "predictor.npz")
    config_path = tmp_path / "serving.json"

    def write(endpoints, daemon_block=None):
        payload = {"endpoints": endpoints}
        if daemon_block is not None:
            payload["daemon"] = daemon_block
        config_path.write_text(json.dumps(payload))
        return config_path

    write(
        [{"name": "income", "version": "1", "artifacts": "deployed/income",
          "policy": {"interval_coverage": None}}],
        daemon_block={"port": 0, "max_wait_seconds": 0.02},
    )
    return config_path, write


class TestDrain:
    def test_drain_flushes_every_queued_request_exactly_once(
        self, make_daemon, serving_frame
    ):
        daemon = make_daemon(queue_depth=32, max_batch_rows=500)
        daemon.start()
        # Hold the endpoint's score lock so submitted requests pile up in
        # the queue (or block pre-scoring) instead of racing the workers.
        score_lock = daemon._score_locks["income@1"]
        frame = serving_frame.head(8)
        with score_lock:
            requests = [daemon.submit("income", frame) for _ in range(6)]
            assert not any(request.done for request in requests)
        report = daemon.drain()

        assert report.clean
        assert report.unanswered_requests == 0
        assert all(request.done for request in requests)
        assert all(request.error is None for request in requests)
        assert all(request.result is not None for request in requests)
        # Exactly once: workers answered precisely the submitted count,
        # and the coalesced group sizes partition the requests (each
        # request in a group of size k contributes 1/k of a group).
        assert report.answered_requests == 6
        assert sum(
            1.0 / request.coalesced_requests for request in requests
        ) == pytest.approx(report.scored_groups)
        assert (
            daemon.metrics.get("serving_requests_total").value(endpoint="income@1")
            == 6
        )

    def test_submit_after_drain_is_refused(self, make_daemon, serving_frame):
        daemon = make_daemon()
        daemon.start()
        daemon.drain()
        with pytest.raises(DaemonClosedError):
            daemon.submit("income", serving_frame.head(4))

    def test_double_drain_is_an_error(self, make_daemon):
        daemon = make_daemon()
        daemon.start()
        daemon.drain()
        with pytest.raises(DaemonClosedError):
            daemon.drain()

    def test_drain_snapshots_registry_when_configured(
        self, make_daemon, tmp_path
    ):
        daemon = make_daemon(snapshot_dir=str(tmp_path / "snap"))
        daemon.start()
        report = daemon.drain()
        assert report.snapshot_path is not None
        assert (tmp_path / "snap" / "registry.json").exists()

    def test_empty_batch_is_refused_before_queueing(
        self, make_daemon, serving_frame
    ):
        daemon = make_daemon()
        daemon.start()
        with pytest.raises(DataValidationError):
            daemon.submit("income", serving_frame.head(0))


@pytest.fixture
def _signals():
    """Put back whatever handlers the test process had before."""
    saved = {
        number: signal.getsignal(number)
        for number in (signal.SIGTERM, signal.SIGINT, signal.SIGHUP)
    }
    yield
    for number, handler in saved.items():
        signal.signal(number, handler)


class TestSignals:
    def test_sigterm_drains_with_in_flight_request_answered(
        self, make_daemon, serving_frame, _signals
    ):
        daemon = make_daemon()
        daemon.install_signal_handlers()
        daemon.start()
        frame = serving_frame.head(10)
        statuses: list[int] = []

        def client_then_term():
            client = DaemonClient(daemon.url, timeout=30.0)
            statuses.append(client.score("income", frame).status)
            os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=client_then_term)
        thread.start()
        report = daemon.run_forever()  # blocks until the SIGTERM lands
        thread.join(timeout=10.0)

        assert statuses == [200]
        assert report.clean
        assert not daemon.accepting

    def test_request_stop_flag_drives_run_forever(self, make_daemon):
        daemon = make_daemon()
        daemon.start()
        threading.Timer(0.05, daemon.request_stop).start()
        report = daemon.run_forever()
        assert report.clean


class TestReload:
    def test_reload_requires_a_config_path(self, make_daemon):
        daemon = make_daemon()
        with pytest.raises(DataValidationError, match="config"):
            daemon.reload()

    def test_reload_registers_new_endpoints_live(
        self, config_on_disk, serving_frame
    ):
        config_path, write = config_on_disk
        daemon = ServingDaemon.from_config(config_path, port=0)
        daemon.start()
        try:
            client = DaemonClient(daemon.url, timeout=30.0)
            frame = serving_frame.head(6)
            assert client.score("income", frame).status == 200
            assert client.score("fraud", frame).status == 404

            write(
                [
                    {"name": "income", "version": "1",
                     "artifacts": "deployed/income",
                     "policy": {"interval_coverage": None}},
                    {"name": "fraud", "version": "1",
                     "artifacts": "deployed/income",
                     "policy": {"interval_coverage": None}},
                ],
                daemon_block={"port": 0, "max_wait_seconds": 0.02},
            )
            daemon.reload()
            assert client.score("fraud", frame).status == 200
            assert (
                daemon.metrics.get("daemon_config_reloads_total").value() == 1
            )
        finally:
            daemon.drain()

    def test_reload_closes_removed_endpoints_without_dropping_queued(
        self, config_on_disk, serving_frame
    ):
        config_path, write = config_on_disk
        daemon = ServingDaemon.from_config(config_path, port=0)
        daemon.start()
        try:
            frame = serving_frame.head(6)
            # Score once so the fused kernel and scorer caches are warm
            # for the endpoint about to be removed.
            warmup = daemon.submit("income", frame)
            assert warmup.wait(timeout=20.0)
            assert "income@1" in daemon.service._kernels
            # Park a request behind the score lock, then drop the endpoint
            # from the config (replaced by another — the loader refuses an
            # empty endpoint list): the queued request must still be answered.
            with daemon._score_locks["income@1"]:
                parked = daemon.submit("income", frame)
                write(
                    [{"name": "fraud", "version": "1",
                      "artifacts": "deployed/income",
                      "policy": {"interval_coverage": None}}],
                    daemon_block={"port": 0},
                )
                daemon.reload()
                # No stale per-endpoint cache survives the removal: the
                # fused kernel and resilient scorer built against the old
                # hydration are dropped, not served to the next batch.
                assert "income@1" not in daemon.service._kernels
                assert "income@1" not in daemon.service._scorers
                with pytest.raises(DaemonClosedError):
                    daemon.submit("income", frame)
            assert parked.wait(timeout=20.0)
            assert parked.error is None and parked.result is not None
        finally:
            daemon.drain()

    def test_sighup_triggers_reload_and_keeps_serving(
        self, config_on_disk, serving_frame, _signals
    ):
        config_path, write = config_on_disk
        daemon = ServingDaemon.from_config(config_path, port=0)
        daemon.install_signal_handlers()
        daemon.start()
        frame = serving_frame.head(6)
        statuses: list[tuple[str, int]] = []

        def hup_then_score_then_term():
            client = DaemonClient(daemon.url, timeout=30.0)
            statuses.append(("before", client.score("fraud", frame).status))
            write(
                [
                    {"name": "income", "version": "1",
                     "artifacts": "deployed/income",
                     "policy": {"interval_coverage": None}},
                    {"name": "fraud", "version": "1",
                     "artifacts": "deployed/income",
                     "policy": {"interval_coverage": None}},
                ],
                daemon_block={"port": 0, "max_wait_seconds": 0.02},
            )
            os.kill(os.getpid(), signal.SIGHUP)
            deadline = 30.0
            while deadline > 0:
                response = client.score("fraud", frame)
                if response.status == 200:
                    break
                time.sleep(0.1)
                deadline -= 0.1
            statuses.append(("after", response.status))
            os.kill(os.getpid(), signal.SIGTERM)

        thread = threading.Thread(target=hup_then_score_then_term)
        thread.start()
        report = daemon.run_forever()
        thread.join(timeout=10.0)

        assert statuses[0] == ("before", 404)
        assert statuses[1] == ("after", 200)
        assert report.clean


@pytest.fixture
def store_config_on_disk(tmp_path, daemon_predictor):
    """A content-addressed store + registry config a daemon can serve from."""
    import shutil

    from repro.serving.registry import Endpoint, EndpointPolicy
    from repro.serving.store import ArtifactStore, LazyModelRegistry

    config_path = tmp_path / "serving.json"
    store_dir = tmp_path / "store"

    def write(names, daemon_block=None, cache_entries=None):
        shutil.rmtree(store_dir, ignore_errors=True)
        registry = LazyModelRegistry(ArtifactStore(store_dir))
        for name in names:
            registry.register(
                Endpoint(
                    name=name,
                    version="1",
                    predictor=daemon_predictor,
                    policy=EndpointPolicy(interval_coverage=None),
                )
            )
        registry_block = {"store_dir": "store"}
        if cache_entries is not None:
            per_endpoint = max(e.stored_bytes for e in registry.entries())
            registry_block["cache_bytes"] = cache_entries * per_endpoint
        payload = {"registry": registry_block}
        if daemon_block is not None:
            payload["daemon"] = daemon_block
        config_path.write_text(json.dumps(payload))
        return config_path

    return config_path, write


class TestStoreBackedDaemon:
    def test_daemon_serves_lazily_and_drain_evicts(
        self, store_config_on_disk, serving_frame
    ):
        from repro.serving.store import LazyModelRegistry

        config_path, write = store_config_on_disk
        write(
            ["income", "fraud"],
            daemon_block={"port": 0, "max_wait_seconds": 0.02},
            cache_entries=2,
        )
        daemon = ServingDaemon.from_config(config_path, port=0)
        registry = daemon.service.registry
        assert isinstance(registry, LazyModelRegistry)
        # Start-up reads the manifest only: nothing hydrates until traffic.
        assert registry.hydrated_keys() == []
        daemon.start()
        try:
            frame = serving_frame.head(6)
            request = daemon.submit("income", frame)
            assert request.wait(timeout=20.0) and request.error is None
            assert registry.hydrated_keys() == ["income@1"]
            health = daemon.health()
            assert health["registry"]["endpoints"] == 2
            assert health["registry"]["hydrated_endpoints"] == 1
            assert health["registry"]["hydrated_bytes"] > 0
            assert (
                health["registry"]["cache_bytes"]
                >= health["registry"]["hydrated_bytes"]
            )
        finally:
            daemon.drain()
        # Drain releases every hydration along with the queues.
        assert registry.hydrated_keys() == []

    def test_hydrated_set_respects_cache_budget_under_traffic(
        self, store_config_on_disk, serving_frame
    ):
        config_path, write = store_config_on_disk
        names = ["tenant-a", "tenant-b", "tenant-c"]
        write(
            names,
            daemon_block={"port": 0, "max_wait_seconds": 0.02},
            cache_entries=1,
        )
        daemon = ServingDaemon.from_config(config_path, port=0)
        registry = daemon.service.registry
        daemon.start()
        try:
            frame = serving_frame.head(6)
            for name in names:
                request = daemon.submit(name, frame)
                assert request.wait(timeout=20.0) and request.error is None
            health = daemon.health()
            assert health["registry"]["hydrated_endpoints"] <= 1
            assert (
                health["registry"]["hydrated_bytes"]
                <= health["registry"]["cache_bytes"]
            )
        finally:
            daemon.drain()

    def test_reload_adopts_entries_lazily_and_evicts_removed(
        self, store_config_on_disk, serving_frame
    ):
        config_path, write = store_config_on_disk
        write(["income"], daemon_block={"port": 0, "max_wait_seconds": 0.02})
        daemon = ServingDaemon.from_config(config_path, port=0)
        registry = daemon.service.registry
        daemon.start()
        try:
            frame = serving_frame.head(6)
            request = daemon.submit("income", frame)
            assert request.wait(timeout=20.0) and request.error is None
            assert registry.hydrated_keys() == ["income@1"]
            assert "income@1" in daemon.service._kernels

            write(["fraud"], daemon_block={"port": 0, "max_wait_seconds": 0.02})
            daemon.reload()
            # The removed endpoint's hydration and per-endpoint caches are
            # gone; the adopted one stays cold until its first batch.
            assert registry.hydrated_keys() == []
            assert "income@1" not in daemon.service._kernels
            assert "income@1" not in daemon.service._scorers

            request = daemon.submit("fraud", frame)
            assert request.wait(timeout=20.0) and request.error is None
            assert registry.hydrated_keys() == ["fraud@1"]
        finally:
            daemon.drain()


class TestFromConfig:
    def test_overrides_beat_config_daemon_block(self, config_on_disk):
        config_path, write = config_on_disk
        write(
            [{"name": "income", "version": "1", "artifacts": "deployed/income",
              "policy": {"interval_coverage": None}}],
            daemon_block={"port": 9321, "workers": 2, "queue_depth": 7},
        )
        daemon = ServingDaemon.from_config(config_path, port=0, workers=1)
        assert daemon.settings.port == 0
        assert daemon.settings.workers == 1
        assert daemon.settings.queue_depth == 7

    def test_daemon_block_round_trips_through_loader(self, config_on_disk):
        config_path, write = config_on_disk
        write(
            [{"name": "income", "version": "1", "artifacts": "deployed/income"}],
            daemon_block={"queue_depth": 5, "shed_policy": "drop_oldest"},
        )
        settings = load_daemon_settings(config_path)
        assert settings.queue_depth == 5
        assert settings.shed_policy == "drop_oldest"
        assert settings == DaemonSettings(
            queue_depth=5, shed_policy="drop_oldest"
        )
