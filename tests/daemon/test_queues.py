"""Bounded queue semantics: admission, shedding, close-and-drain."""

from __future__ import annotations

import pytest

from repro.daemon import BoundedRequestQueue, ScoreRequest
from repro.exceptions import (
    DaemonClosedError,
    DataValidationError,
    QueueFullError,
)
from repro.resilience import FakeClock
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


def _request(n_rows: int = 3, endpoint: str = "income") -> ScoreRequest:
    frame = DataFrame.from_dict(
        {"x": [float(i) for i in range(n_rows)]}, {"x": ColumnType.NUMERIC}
    )
    return ScoreRequest(endpoint=endpoint, frame=frame)


class TestAdmission:
    def test_fifo_order(self):
        queue = BoundedRequestQueue(capacity=4)
        first, second = _request(), _request()
        queue.put(first)
        queue.put(second)
        assert queue.pop(timeout=0) is first
        assert queue.pop(timeout=0) is second
        assert queue.pop(timeout=0) is None

    def test_enqueued_at_uses_injected_clock(self):
        clock = FakeClock(start=100.0)
        queue = BoundedRequestQueue(capacity=2, clock=clock)
        request = _request()
        queue.put(request)
        assert request.enqueued_at == 100.0
        clock.advance(5.0)
        later = _request()
        queue.put(later)
        assert later.enqueued_at == 105.0

    def test_reject_policy_refuses_new_request(self):
        queue = BoundedRequestQueue(capacity=1, shed_policy="reject",
                                    retry_after_seconds=2.5)
        queue.put(_request())
        with pytest.raises(QueueFullError) as excinfo:
            queue.put(_request())
        assert excinfo.value.retry_after_seconds == 2.5
        assert queue.depth == 1  # the rejected request was never queued
        assert queue.shed_total == 1

    def test_drop_oldest_policy_evicts_and_admits(self):
        queue = BoundedRequestQueue(capacity=2, shed_policy="drop_oldest")
        oldest = _request()
        queue.put(oldest)
        queue.put(_request())
        newest = _request()
        shed = queue.put(newest)
        assert shed is oldest
        assert queue.depth == 2
        assert queue.shed_total == 1
        # Eviction preserved FIFO among survivors; newest is last out.
        queue.pop(timeout=0)
        assert queue.pop(timeout=0) is newest

    def test_put_returns_none_when_room(self):
        queue = BoundedRequestQueue(capacity=2, shed_policy="drop_oldest")
        assert queue.put(_request()) is None

    def test_peak_depth_and_saturated(self):
        queue = BoundedRequestQueue(capacity=2)
        assert not queue.saturated
        queue.put(_request())
        queue.put(_request())
        assert queue.saturated
        queue.pop(timeout=0)
        assert not queue.saturated
        assert queue.peak_depth == 2


class TestClose:
    def test_close_stops_admission_but_keeps_items_poppable(self):
        queue = BoundedRequestQueue(capacity=4)
        queued = _request()
        queue.put(queued)
        queue.close()
        with pytest.raises(DaemonClosedError):
            queue.put(_request())
        assert queue.pop(timeout=0) is queued
        assert queue.pop(timeout=0) is None

    def test_pop_blocking_returns_none_once_closed_and_empty(self):
        queue = BoundedRequestQueue(capacity=4)
        queue.close()
        # Must return promptly rather than blocking for the full timeout.
        assert queue.pop(timeout=30.0) is None
        assert queue.pop(timeout=None) is None


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(DataValidationError):
            BoundedRequestQueue(capacity=0)

    def test_unknown_shed_policy_rejected(self):
        with pytest.raises(DataValidationError):
            BoundedRequestQueue(capacity=1, shed_policy="random")

    def test_retry_after_must_be_positive(self):
        with pytest.raises(DataValidationError):
            BoundedRequestQueue(capacity=1, retry_after_seconds=0)


class TestScoreRequest:
    def test_set_result_unblocks_wait(self):
        request = _request()
        assert not request.done
        request.set_result("sentinel")
        assert request.wait(timeout=0.1)
        assert request.result == "sentinel"
        assert request.error is None

    def test_set_error_unblocks_wait(self):
        request = _request()
        failure = RuntimeError("boom")
        request.set_error(failure)
        assert request.wait(timeout=0.1)
        assert request.error is failure

    def test_wait_times_out_unanswered(self):
        assert not _request().wait(timeout=0.01)
