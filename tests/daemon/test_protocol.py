"""Wire-format roundtrips and validation for the daemon protocol."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.daemon import frame_from_payload, frame_to_payload, result_to_payload
from repro.exceptions import DataValidationError
from repro.serving.service import BatchResult
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


@pytest.fixture
def mixed_frame() -> DataFrame:
    return DataFrame.from_dict(
        {
            "age": [20.0, np.nan, 40.0],
            "city": ["berlin", None, "rome"],
            "note": ["hello", "world", None],
        },
        {
            "age": ColumnType.NUMERIC,
            "city": ColumnType.CATEGORICAL,
            "note": ColumnType.TEXT,
        },
    )


class TestFrameRoundtrip:
    def test_roundtrip_preserves_values_and_types(self, mixed_frame):
        payload = frame_to_payload(mixed_frame)
        # The payload must be genuinely JSON-serializable (no NaN leaks).
        restored = frame_from_payload(json.loads(json.dumps(payload)))
        assert len(restored) == len(mixed_frame)
        assert [s.ctype for s in restored.schema] == [
            s.ctype for s in mixed_frame.schema
        ]
        ages = restored["age"]
        assert ages[0] == 20.0 and math.isnan(ages[1]) and ages[2] == 40.0
        assert list(restored["city"]) == ["berlin", None, "rome"]

    def test_numeric_null_becomes_nan(self):
        frame = frame_from_payload(
            {"columns": {"x": [1.0, None]}, "types": {"x": "numeric"}}
        )
        values = frame["x"]
        assert values[0] == 1.0 and math.isnan(values[1])

    def test_nan_encodes_as_null(self, mixed_frame):
        payload = frame_to_payload(mixed_frame)
        assert payload["columns"]["age"][1] is None


class TestFramePayloadValidation:
    def test_non_object_body_rejected(self):
        with pytest.raises(DataValidationError, match="JSON object"):
            frame_from_payload([1, 2, 3])

    def test_missing_sections_rejected(self):
        with pytest.raises(DataValidationError, match="missing"):
            frame_from_payload({"columns": {"x": [1]}})

    def test_types_must_match_columns(self):
        with pytest.raises(DataValidationError, match="exactly the 'columns' keys"):
            frame_from_payload(
                {"columns": {"x": [1]}, "types": {"y": "numeric"}}
            )

    def test_unknown_type_name_rejected(self):
        with pytest.raises(DataValidationError, match="unknown type"):
            frame_from_payload(
                {"columns": {"x": [1]}, "types": {"x": "decimal"}}
            )

    def test_non_array_column_rejected(self):
        with pytest.raises(DataValidationError, match="JSON array"):
            frame_from_payload(
                {"columns": {"x": 5}, "types": {"x": "numeric"}}
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(DataValidationError, match="non-empty"):
            frame_from_payload({"columns": {}, "types": {}})


class TestResultPayload:
    def _result(self) -> BatchResult:
        return BatchResult(
            endpoint="income", version="1", batch_index=3, n_rows=40,
            estimated_score=0.81, smoothed_score=0.8, expected_score=0.82,
            alarm_floor=0.77, alarm=False, sustained_alarm=False,
            interval=(0.7, 0.81, 0.9), trusted=True, interval_coverage=0.9,
        )

    def test_mirrors_batch_result(self):
        payload = result_to_payload(self._result())
        assert payload["endpoint"] == "income"
        assert payload["estimated_score"] == 0.81
        assert payload["interval"] == [0.7, 0.81, 0.9]
        assert payload["interval_width"] == pytest.approx(0.9 - 0.7)
        assert payload["interval_coverage"] == 0.9
        assert payload["trusted"] is True
        assert "coalesced_requests" not in payload

    def test_intervalless_result_has_null_width_and_coverage(self):
        from dataclasses import replace

        bare = replace(self._result(), interval=None, interval_coverage=None)
        payload = result_to_payload(bare)
        assert payload["interval"] is None
        assert payload["interval_width"] is None
        assert payload["interval_coverage"] is None

    def test_daemon_context_is_optional_extras(self):
        payload = result_to_payload(
            self._result(),
            coalesced_requests=4,
            coalesced_rows=160,
            queued_seconds=0.012,
        )
        assert payload["coalesced_requests"] == 4
        assert payload["coalesced_rows"] == 160
        assert payload["queued_seconds"] == 0.012
        json.dumps(payload)  # stays wire-serializable
