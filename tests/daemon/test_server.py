"""HTTP front-end behavior: routes, status codes, admission control."""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.daemon import DaemonClient, frame_from_payload
from repro.exceptions import QueueFullError


@pytest.fixture
def running_daemon(make_daemon):
    daemon = make_daemon(queue_depth=16, max_batch_rows=256)
    daemon.start()
    return daemon


@pytest.fixture
def client(running_daemon):
    return DaemonClient(running_daemon.url, timeout=30.0)


class TestScoreRoute:
    def test_score_returns_batch_result_with_daemon_context(
        self, client, serving_frame
    ):
        response = client.score("income", serving_frame.head(20))
        assert response.status == 200
        payload = response.payload
        assert payload["endpoint"] == "income"
        assert payload["n_rows"] >= 20  # may have coalesced with others
        assert 0.0 <= payload["estimated_score"] <= 1.0
        assert payload["coalesced_requests"] >= 1
        assert payload["queued_seconds"] >= 0.0

    def test_version_query_parameter_is_honored(self, client, serving_frame):
        assert client.score("income", serving_frame.head(5), version="1").status == 200
        response = client.score("income", serving_frame.head(5), version="9")
        assert response.status == 404
        assert "version" in response.payload["error"]

    def test_unknown_endpoint_is_404(self, client, serving_frame):
        response = client.score("nope", serving_frame.head(5))
        assert response.status == 404

    def test_unknown_route_is_404(self, running_daemon):
        request = urllib.request.Request(
            running_daemon.url + "/v2/score", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_malformed_json_is_400(self, running_daemon):
        request = urllib.request.Request(
            running_daemon.url + "/v1/endpoints/income/score",
            data=b"{not json",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_empty_body_is_400(self, running_daemon):
        request = urllib.request.Request(
            running_daemon.url + "/v1/endpoints/income/score",
            data=b"",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_schema_mismatch_at_scoring_time_is_400(self, client):
        # A well-formed frame that doesn't match the endpoint's fit-time
        # schema fails inside the worker — still the caller's fault.
        body = {"columns": {"x": [1.0, 2.0]}, "types": {"x": "numeric"}}
        response = client.score("income", frame_from_payload(body))
        assert response.status == 400
        assert "schema" in response.payload["error"]

    def test_invalid_frame_payload_is_400(self, running_daemon):
        body = json.dumps({"columns": {"x": [1]}, "types": {"x": "wat"}}).encode()
        request = urllib.request.Request(
            running_daemon.url + "/v1/endpoints/income/score",
            data=body,
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400


class TestAdmissionControl:
    def test_burst_over_queue_bound_gets_429_with_retry_after(
        self, make_daemon, serving_frame
    ):
        # max_batch_rows == one request's rows: the worker closes its
        # first group immediately and blocks on the held score lock, so
        # the rest of the burst must fit the depth-2 queue or be shed —
        # a bigger row budget would let the worker coalesce the whole
        # burst out of the queue and nothing would ever reach the bound.
        daemon = make_daemon(queue_depth=2, max_batch_rows=4,
                             max_wait_seconds=0.001, retry_after_seconds=3.0)
        daemon.start()
        client = DaemonClient(daemon.url, timeout=30.0)
        frame = serving_frame.head(4)
        # Hold scoring so the queue genuinely fills instead of draining.
        responses = []
        lock = daemon._score_locks["income@1"]
        with lock:
            # The worker parks at most one closed group pre-lock; the
            # queue bound itself admits 2. Burst far past both.
            barrier = threading.Barrier(8)

            def post():
                barrier.wait()
                responses.append(client.score("income", frame))

            threads = [threading.Thread(target=post) for _ in range(8)]
            for thread in threads:
                thread.start()
            # Wait until rejections surface while scoring stays blocked.
            for _ in range(100):
                if any(r.status == 429 for r in responses):
                    break
                threading.Event().wait(0.05)
        for thread in threads:
            thread.join(timeout=30.0)

        statuses = sorted(response.status for response in responses)
        assert statuses.count(429) >= 1
        assert statuses.count(200) >= 2
        assert statuses.count(200) + statuses.count(429) == 8
        rejected = next(r for r in responses if r.status == 429)
        assert rejected.retry_after == 3
        assert "full" in rejected.payload["error"]

    def test_draining_daemon_answers_503(self, make_daemon, serving_frame):
        daemon = make_daemon()
        daemon.start()
        client = DaemonClient(daemon.url, timeout=30.0)
        daemon._accepting = False  # drain starts: admission closed
        response = client.score("income", serving_frame.head(4))
        assert response.status == 503


class TestIntrospectionRoutes:
    def test_healthz_ok(self, client):
        response = client.health()
        assert response.status == 200
        assert response.payload["status"] == "ok"
        detail = response.payload["endpoints"]["income@1"]
        assert detail["breaker"] == "closed"
        assert detail["accepting"] is True

    def test_healthz_degraded_when_queue_saturated(
        self, make_daemon, serving_frame
    ):
        # One-request row budget: the worker blocks on the held lock
        # with its first group, so submits accumulate until the depth-1
        # queue is genuinely full — and stays full while the lock is held.
        daemon = make_daemon(queue_depth=1, max_batch_rows=4,
                             max_wait_seconds=0.001)
        daemon.start()
        client = DaemonClient(daemon.url, timeout=30.0)
        frame = serving_frame.head(4)
        with daemon._score_locks["income@1"]:
            queue = daemon._queues["income@1"]
            for _ in range(200):
                if queue.saturated:
                    break
                try:
                    daemon.submit("income", frame)
                except QueueFullError:
                    break  # full counts as saturated
                threading.Event().wait(0.01)
            assert queue.saturated
            response = client.health()
            assert response.status == 503
            assert response.payload["status"] == "degraded"
            assert response.payload["endpoints"]["income@1"]["queue_saturated"]

    def test_metrics_exposition_includes_daemon_families(
        self, client, serving_frame
    ):
        client.score("income", serving_frame.head(5))
        text = client.metrics()
        assert "# TYPE daemon_accepted_total counter" in text
        assert 'daemon_accepted_total{endpoint="income@1"}' in text
        assert "daemon_coalesced_requests_bucket" in text
        assert "serving_requests_total" in text
        # Span aggregates bridged into the same exposition.
        assert "trace_span_wall_seconds" in text

    def test_spans_route_shows_request_lifecycle(self, client, serving_frame):
        client.score("income", serving_frame.head(5))
        names = {span["name"] for span in client.spans()}
        assert {"daemon.accept", "daemon.enqueue", "daemon.coalesce",
                "serving.score"} <= names

    def test_http_responses_counted(self, client, serving_frame):
        client.score("income", serving_frame.head(5))
        client.health()
        text = client.metrics()
        assert 'daemon_http_responses_total{method="POST",code="200"}' in text
