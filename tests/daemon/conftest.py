"""Fixtures for the daemon suite: a fitted endpoint plus daemon factories.

One predictor fit per test package (over the session-scoped income black
box), with factories for registries and in-process daemons. Every daemon
built through ``make_daemon`` is drained at teardown so no worker thread
or bound port outlives its test.
"""

from __future__ import annotations

import pytest

from repro.core.predictor import PerformancePredictor
from repro.daemon import ServingDaemon
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.serving.config import DaemonSettings
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry


@pytest.fixture(scope="package")
def daemon_predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), Scaling()],
        n_samples=30,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture
def make_registry(daemon_predictor):
    """Factory for registries over the shared fitted predictor."""

    def factory(names=("income",), version="1", **policy_kwargs) -> ModelRegistry:
        policy_kwargs.setdefault("interval_coverage", None)
        registry = ModelRegistry()
        for name in names:
            registry.register(
                Endpoint(
                    name=name,
                    version=version,
                    predictor=daemon_predictor,
                    policy=EndpointPolicy(**policy_kwargs),
                )
            )
        return registry

    return factory


@pytest.fixture
def serving_frame(income_splits):
    return income_splits.serving


@pytest.fixture
def make_daemon(make_registry):
    """Factory for in-process daemons on ephemeral ports; drains on teardown."""
    created: list[ServingDaemon] = []

    def factory(registry=None, **settings_kwargs) -> ServingDaemon:
        settings_kwargs.setdefault("port", 0)
        settings_kwargs.setdefault("max_wait_seconds", 0.02)
        settings_kwargs.setdefault("drain_timeout_seconds", 20.0)
        daemon = ServingDaemon(
            registry if registry is not None else make_registry(),
            settings=DaemonSettings(**settings_kwargs),
        )
        created.append(daemon)
        return daemon

    yield factory
    for daemon in created:
        if not daemon._drained:
            daemon.drain()
