"""Tests for alert events, sinks, and the retrying router."""

import io
import json

import pytest

from repro.exceptions import DataValidationError
from repro.serving.events import (
    AlertEvent,
    CallbackSink,
    EventRouter,
    JsonlFileSink,
    StdoutSink,
)


def make_event(severity="alarm", batch_index=3):
    return AlertEvent(
        endpoint="income@1",
        severity=severity,
        batch_index=batch_index,
        n_rows=100,
        estimated_score=0.61,
        expected_score=0.78,
        alarm_floor=0.741,
        message="estimated score dropped",
    )


class FlakySink:
    """Fails the first ``failures`` emits, then accepts everything."""

    def __init__(self, failures: int, name: str = "flaky"):
        self.name = name
        self.failures = failures
        self.calls = 0
        self.received: list[AlertEvent] = []

    def emit(self, event: AlertEvent) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError("pager service unavailable")
        self.received.append(event)


class TestAlertEvent:
    def test_invalid_severity_raises(self):
        with pytest.raises(DataValidationError):
            make_event(severity="panic")

    def test_json_round_trip(self):
        event = make_event()
        decoded = json.loads(event.to_json())
        assert decoded["endpoint"] == "income@1"
        assert decoded["severity"] == "alarm"
        assert decoded["estimated_score"] == pytest.approx(0.61)

    def test_describe_mentions_severity_and_endpoint(self):
        text = make_event(severity="sustained").describe()
        assert "SUSTAINED" in text
        assert "income@1" in text


class TestSinks:
    def test_stdout_sink_writes_description(self):
        stream = io.StringIO()
        StdoutSink(stream=stream).emit(make_event())
        assert "income@1" in stream.getvalue()

    def test_jsonl_sink_appends_one_line_per_event(self, tmp_path):
        sink = JsonlFileSink(tmp_path / "alerts.jsonl")
        sink.emit(make_event(batch_index=1))
        sink.emit(make_event(batch_index=2))
        lines = (tmp_path / "alerts.jsonl").read_text().splitlines()
        assert [json.loads(line)["batch_index"] for line in lines] == [1, 2]

    def test_callback_sink_invokes_callable(self):
        received = []
        CallbackSink(received.append).emit(make_event())
        assert len(received) == 1


class TestEventRouter:
    def test_delivers_to_every_sink(self):
        a, b = FlakySink(0, "a"), FlakySink(0, "b")
        router = EventRouter([a, b], sleep=lambda _: None)
        assert router.publish(make_event()) == 2
        assert len(a.received) == len(b.received) == 1

    def test_flaky_sink_recovers_via_retry_with_empty_dead_letters(self):
        sink = FlakySink(2)
        router = EventRouter([sink], max_retries=3, sleep=lambda _: None)
        assert router.publish(make_event()) == 1
        assert sink.calls == 3  # two failures + one success
        assert len(sink.received) == 1
        assert list(router.dead_letters) == []
        assert router.delivered_count == 1
        assert router.failed_count == 0

    def test_exhausted_retries_park_event_in_dead_letters(self):
        sink = FlakySink(100)
        router = EventRouter([sink], max_retries=2, sleep=lambda _: None)
        event = make_event()
        assert router.publish(event) == 0
        assert sink.calls == 3  # first try + 2 retries
        letter = router.dead_letters[0]
        assert letter.sink == "flaky"
        assert letter.event is event
        assert letter.attempts == 3
        assert "ConnectionError" in letter.error

    def test_one_dead_sink_does_not_block_others(self):
        dead, healthy = FlakySink(100, "dead"), FlakySink(0, "healthy")
        router = EventRouter([dead, healthy], max_retries=1, sleep=lambda _: None)
        assert router.publish(make_event()) == 1
        assert len(healthy.received) == 1
        assert len(router.dead_letters) == 1

    def test_backoff_is_exponential(self):
        sleeps = []
        sink = FlakySink(3)
        router = EventRouter([sink], max_retries=3, backoff=0.1, sleep=sleeps.append)
        router.publish(make_event())
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_dead_letter_buffer_is_bounded(self):
        sink = FlakySink(10**6)
        router = EventRouter(
            [sink], max_retries=0, dead_letter_capacity=2, sleep=lambda _: None
        )
        for index in range(5):
            router.publish(make_event(batch_index=index))
        assert [letter.event.batch_index for letter in router.dead_letters] == [3, 4]

    def test_drain_returns_and_clears(self):
        sink = FlakySink(10)
        router = EventRouter([sink], max_retries=0, sleep=lambda _: None)
        router.publish(make_event())
        drained = router.drain_dead_letters()
        assert len(drained) == 1
        assert list(router.dead_letters) == []

    def test_parameter_validation(self):
        with pytest.raises(DataValidationError):
            EventRouter(max_retries=-1)
        with pytest.raises(DataValidationError):
            EventRouter(backoff=-0.1)
        with pytest.raises(DataValidationError):
            EventRouter(dead_letter_capacity=0)


class AlwaysFailingSink:
    name = "broken"

    def emit(self, event: AlertEvent) -> None:
        raise ConnectionError("permanently down")


class TestConcurrentDrain:
    """Drain must be atomic against publishers racing into dead letters."""

    def test_no_letter_lost_or_double_drained(self):
        import threading

        n_publishers = 4
        events_per_publisher = 200
        total = n_publishers * events_per_publisher
        router = EventRouter(
            [AlwaysFailingSink()],
            max_retries=0,
            backoff=0.0,
            dead_letter_capacity=total,
            sleep=lambda _: None,
        )
        start = threading.Barrier(n_publishers + 2)
        drains: list[list] = [[], []]

        def publish(worker: int) -> None:
            start.wait()
            for i in range(events_per_publisher):
                router.publish(
                    make_event(batch_index=worker * events_per_publisher + i)
                )

        def drain(slot: int) -> None:
            start.wait()
            for _ in range(300):
                drains[slot].extend(router.drain_dead_letters())

        threads = [
            threading.Thread(target=publish, args=(w,)) for w in range(n_publishers)
        ] + [threading.Thread(target=drain, args=(s,)) for s in (0, 1)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        remainder = router.drain_dead_letters()
        seen = [
            letter.event.batch_index
            for letter in drains[0] + drains[1] + remainder
        ]
        # Every parked event is drained exactly once: none lost to a
        # clear() racing a publisher, none handed to both drainers.
        assert len(seen) == total
        assert sorted(seen) == list(range(total))
