"""Tests for the declarative serving configuration."""

import json

import pytest

from repro import persistence
from repro.exceptions import DataValidationError
from repro.serving.config import (
    ModelSettings,
    ObservabilitySettings,
    ParallelSettings,
    ResilienceSettings,
    load_model_settings,
    load_observability_settings,
    load_parallel_settings,
    load_resilience_settings,
    load_serving_config,
    parse_model,
    parse_observability,
    parse_parallel,
    parse_policy,
    parse_resilience,
    registry_from_config,
    write_serving_config,
)
from repro.serving.registry import EndpointPolicy, ModelRegistry


@pytest.fixture
def artifact_dir(serving_predictor, tmp_path):
    directory = tmp_path / "deployed"
    directory.mkdir()
    persistence.save_model(serving_predictor, directory / "predictor.npz")
    return directory


def write_config(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestParsePolicy:
    def test_defaults_and_overrides(self):
        assert parse_policy({}) == EndpointPolicy()
        assert parse_policy({"threshold": 0.1}).threshold == 0.1

    def test_unknown_keys_raise(self):
        with pytest.raises(DataValidationError) as excinfo:
            parse_policy({"thresold": 0.1})
        assert "thresold" in str(excinfo.value)


class TestLoadServingConfig:
    def test_valid_config(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [
                    {
                        "name": "income",
                        "artifacts": "deployed",
                        "version": "2",
                        "policy": {"micro_batch_size": 100},
                    }
                ]
            },
        )
        specs = load_serving_config(path)
        assert len(specs) == 1
        assert specs[0].name == "income"
        assert specs[0].version == "2"
        assert specs[0].policy.micro_batch_size == 100

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DataValidationError):
            load_serving_config(tmp_path / "nope.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "serving.json"
        path.write_text("{not json")
        with pytest.raises(DataValidationError):
            load_serving_config(path)

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"endpoints": []},
            {"endpoints": [{"name": "income"}]},
            {"endpoints": [{"name": "a", "artifacts": "d", "extra": 1}]},
            {"endpoints": [{"name": "a", "artifacts": "d", "policy": ["x"]}]},
        ],
    )
    def test_malformed_configs_raise(self, tmp_path, payload):
        path = write_config(tmp_path / "serving.json", payload)
        with pytest.raises(DataValidationError):
            load_serving_config(path)


class TestRegistryFromConfig:
    def test_relative_paths_resolve_against_config_dir(self, artifact_dir, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "income", "artifacts": "deployed"}]},
        )
        registry = registry_from_config(path)
        assert len(registry) == 1
        assert registry.get("income").expected_score > 0.5

    def test_config_written_by_write_serving_config_round_trips(
        self, artifact_dir, make_endpoint, tmp_path
    ):
        endpoint = make_endpoint(
            threshold=0.08,
            micro_batch_size=50,
            interval_coverage=0.9,
            interval_method="cqr",
            alarm_on="interval_lower",
        )
        config_path = tmp_path / "serving.json"
        write_serving_config(config_path, [(endpoint, str(artifact_dir))])
        registry = registry_from_config(config_path)
        loaded = registry.get("income")
        assert loaded.policy.threshold == 0.08
        assert loaded.policy.micro_batch_size == 50
        assert loaded.policy.interval_coverage == 0.9
        assert loaded.policy.interval_method == "cqr"
        assert loaded.policy.alarm_on == "interval_lower"

    def test_duplicate_endpoint_keys_raise(self, artifact_dir, tmp_path):
        entry = {"name": "income", "artifacts": "deployed"}
        path = write_config(tmp_path / "serving.json", {"endpoints": [entry, entry]})
        with pytest.raises(DataValidationError):
            registry_from_config(path)

    def test_unknown_top_level_keys_raise(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "a", "artifacts": "d"}], "paralel": {}},
        )
        with pytest.raises(DataValidationError) as excinfo:
            load_serving_config(path)
        assert "paralel" in str(excinfo.value)


class TestModelBlock:
    def test_parse_defaults_and_overrides(self):
        assert parse_model({}) == ModelSettings()
        settings = parse_model({"tree_method": "hist", "max_bins": 64})
        assert settings.tree_method == "hist"
        assert settings.max_bins == 64

    def test_unknown_keys_raise(self):
        with pytest.raises(DataValidationError) as excinfo:
            parse_model({"treemethod": "hist"})
        assert "treemethod" in str(excinfo.value)

    def test_invalid_tree_method_raises(self):
        with pytest.raises(DataValidationError):
            ModelSettings(tree_method="approx")

    def test_invalid_max_bins_raises(self):
        with pytest.raises(DataValidationError):
            ModelSettings(max_bins=1)

    def test_load_model_settings(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "model": {"tree_method": "hist"},
            },
        )
        assert load_model_settings(path) == ModelSettings("hist", 256)

    def test_absent_block_yields_defaults(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "a", "artifacts": "d"}]},
        )
        assert load_model_settings(path) == ModelSettings()

    def test_model_block_accepted_at_top_level(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "model": {"tree_method": "exact", "max_bins": 128},
            },
        )
        specs = load_serving_config(path)
        assert len(specs) == 1


class TestObservabilityBlock:
    def test_parse_defaults_and_overrides(self):
        assert parse_observability({}) == ObservabilitySettings()
        settings = parse_observability(
            {"enabled": True, "metrics_bridge": False, "export_path": "spans.json"}
        )
        assert settings.enabled is True
        assert settings.metrics_bridge is False
        assert settings.export_path == "spans.json"

    def test_defaults_are_off_and_bridge_on(self):
        settings = ObservabilitySettings()
        assert settings.enabled is False
        assert settings.metrics_bridge is True
        assert settings.export_path is None

    def test_unknown_keys_raise(self):
        with pytest.raises(DataValidationError) as excinfo:
            parse_observability({"enbled": True})
        assert "enbled" in str(excinfo.value)

    def test_non_object_block_raises(self):
        with pytest.raises(DataValidationError):
            parse_observability("on")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enabled": "yes"},
            {"metrics_bridge": 1},
            {"export_path": 42},
        ],
    )
    def test_invalid_types_raise(self, kwargs):
        with pytest.raises(DataValidationError):
            ObservabilitySettings(**kwargs)

    def test_load_observability_settings(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "observability": {"enabled": True, "export_path": "trace.json"},
            },
        )
        settings = load_observability_settings(path)
        assert settings.enabled is True
        assert settings.metrics_bridge is True
        assert settings.export_path == "trace.json"

    def test_absent_block_yields_defaults(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "a", "artifacts": "d"}]},
        )
        assert load_observability_settings(path) == ObservabilitySettings()

    def test_observability_block_accepted_at_top_level(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "observability": {"enabled": True},
            },
        )
        assert len(load_serving_config(path)) == 1


class TestParallelBlock:
    def test_parse_defaults_and_overrides(self):
        assert parse_parallel({}) == ParallelSettings()
        settings = parse_parallel({"n_jobs": 4, "backend": "process"})
        assert settings.n_jobs == 4
        assert settings.backend == "process"

    def test_unknown_keys_raise(self):
        with pytest.raises(DataValidationError) as excinfo:
            parse_parallel({"njobs": 4})
        assert "njobs" in str(excinfo.value)

    def test_invalid_backend_raises(self):
        with pytest.raises(DataValidationError):
            ParallelSettings(backend="greenlet")

    def test_zero_jobs_raises(self):
        with pytest.raises(DataValidationError):
            ParallelSettings(n_jobs=0)

    def test_load_parallel_settings(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "parallel": {"n_jobs": 2, "backend": "thread"},
            },
        )
        assert load_parallel_settings(path) == ParallelSettings(2, "thread")

    def test_absent_block_yields_defaults(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "a", "artifacts": "d"}]},
        )
        assert load_parallel_settings(path) == ParallelSettings()

    def test_registry_loads_endpoints_concurrently(self, artifact_dir, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [
                    {"name": "income", "artifacts": "deployed"},
                    {"name": "income-b", "artifacts": "deployed"},
                ],
                "parallel": {"n_jobs": 2, "backend": "thread"},
            },
        )
        registry = registry_from_config(path)
        assert len(registry) == 2
        # Registration order follows the config order despite the pool.
        assert [e.name for e in registry.endpoints()] == ["income", "income-b"]


class TestResilienceBlock:
    def test_parse_defaults_and_overrides(self):
        assert parse_resilience({}) == ResilienceSettings()
        settings = parse_resilience(
            {"enabled": True, "max_retries": 2, "fallback": "static"}
        )
        assert settings.enabled is True
        assert settings.max_retries == 2
        assert settings.fallback == "static"

    def test_defaults_are_disabled_with_bbseh_fallback(self):
        settings = ResilienceSettings()
        assert settings.enabled is False
        assert settings.fallback == "bbseh"
        assert settings.timeout_seconds is None

    def test_unknown_keys_raise(self):
        with pytest.raises(DataValidationError) as excinfo:
            parse_resilience({"max_retrys": 2})
        assert "max_retrys" in str(excinfo.value)

    def test_non_object_block_raises(self):
        with pytest.raises(DataValidationError):
            parse_resilience("on")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"enabled": "yes"},
            {"max_retries": -1},
            {"backoff_seconds": -0.1},
            {"timeout_seconds": 0.0},
            {"breaker_failure_threshold": 0},
            {"breaker_window": 2, "breaker_failure_threshold": 5},
            {"breaker_cooldown_seconds": 0.0},
            {"fallback": "parachute"},
        ],
    )
    def test_invalid_settings_raise(self, kwargs):
        with pytest.raises(DataValidationError):
            ResilienceSettings(**kwargs)

    def test_load_resilience_settings(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "resilience": {
                    "enabled": True,
                    "max_retries": 2,
                    "backoff_seconds": 0.0,
                    "breaker_failure_threshold": 3,
                    "breaker_window": 6,
                    "fallback": "bbse",
                },
            },
        )
        settings = load_resilience_settings(path)
        assert settings.enabled is True
        assert settings.max_retries == 2
        assert settings.breaker_failure_threshold == 3
        assert settings.fallback == "bbse"

    def test_absent_block_yields_defaults(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {"endpoints": [{"name": "a", "artifacts": "d"}]},
        )
        assert load_resilience_settings(path) == ResilienceSettings()

    def test_resilience_block_accepted_at_top_level(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "endpoints": [{"name": "a", "artifacts": "d"}],
                "resilience": {"enabled": True},
            },
        )
        assert len(load_serving_config(path)) == 1


class TestRegistryBlock:
    def test_parse_defaults_and_overrides(self):
        from repro.serving.config import RegistrySettings, parse_registry

        assert parse_registry({}) == RegistrySettings()
        settings = parse_registry(
            {"store_dir": "store", "cache_bytes": 1024, "shards": 4, "mmap": False}
        )
        assert settings.store_dir == "store"
        assert settings.cache_bytes == 1024
        assert settings.shards == 4
        assert settings.mmap is False

    def test_unknown_keys_raise(self):
        from repro.serving.config import parse_registry

        with pytest.raises(DataValidationError, match="unknown registry keys"):
            parse_registry({"stored_ir": "typo"})

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"store_dir": ""},
            {"cache_bytes": -1},
            {"cache_bytes": "1MB"},
            {"shards": 0},
            {"mmap": "yes"},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        from repro.serving.config import RegistrySettings

        with pytest.raises(DataValidationError):
            RegistrySettings(**kwargs)

    def test_store_dir_and_endpoints_are_mutually_exclusive(self, tmp_path):
        path = write_config(
            tmp_path / "serving.json",
            {
                "registry": {"store_dir": "store"},
                "endpoints": [{"name": "a", "artifacts": "d"}],
            },
        )
        with pytest.raises(DataValidationError, match="store_dir"):
            load_serving_config(path)

    def test_config_requires_endpoints_or_store_dir(self, tmp_path):
        path = write_config(tmp_path / "serving.json", {})
        with pytest.raises(DataValidationError, match="store_dir"):
            load_serving_config(path)

    def test_relative_store_dir_resolves_against_config_dir(self, tmp_path):
        from repro.serving.config import (
            load_registry_settings,
            resolve_store_dir,
        )

        path = write_config(
            tmp_path / "serving.json", {"registry": {"store_dir": "store"}}
        )
        settings = load_registry_settings(path)
        assert resolve_store_dir(path, settings) == tmp_path / "store"

    def test_registry_from_config_restores_lazy_registry(
        self, make_endpoint, tmp_path
    ):
        from repro.serving.store import ArtifactStore, LazyModelRegistry

        registry = LazyModelRegistry(ArtifactStore(tmp_path / "store"))
        registry.register(make_endpoint(name="lazy-a"))
        path = write_config(
            tmp_path / "serving.json",
            {"registry": {"store_dir": "store", "cache_bytes": 10**9}},
        )
        restored = registry_from_config(path)
        assert isinstance(restored, LazyModelRegistry)
        assert restored.hydrated_keys() == []  # config load hydrates nothing
        assert [e.key for e in restored.entries()] == ["lazy-a@1"]
        assert restored.cache_capacity_bytes == 10**9
