"""Tests for the in-process metrics layer."""

import json

import pytest

from repro.exceptions import DataValidationError
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total", "requests", ("endpoint",))
        assert counter.value(endpoint="a") == 0.0
        counter.inc(endpoint="a")
        counter.inc(2, endpoint="a")
        assert counter.value(endpoint="a") == 3.0

    def test_series_are_independent(self):
        counter = Counter("requests_total", "requests", ("endpoint",))
        counter.inc(endpoint="a")
        counter.inc(5, endpoint="b")
        assert counter.value(endpoint="a") == 1.0
        assert counter.value(endpoint="b") == 5.0

    def test_negative_increment_raises(self):
        counter = Counter("requests_total", "requests")
        with pytest.raises(DataValidationError):
            counter.inc(-1)

    def test_wrong_labels_raise(self):
        counter = Counter("requests_total", "requests", ("endpoint",))
        with pytest.raises(DataValidationError):
            counter.inc(shard="a")
        with pytest.raises(DataValidationError):
            counter.inc()


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("pending_rows", "buffered rows", ("endpoint",))
        gauge.set(10, endpoint="a")
        gauge.inc(5, endpoint="a")
        gauge.dec(3, endpoint="a")
        assert gauge.value(endpoint="a") == 12.0

    def test_unlabeled_gauge(self):
        gauge = Gauge("endpoints", "count")
        gauge.set(4)
        assert gauge.value() == 4.0


class TestHistogram:
    def test_bucket_counts_are_cumulative(self):
        hist = Histogram("latency", "seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        payload = hist.to_json()["series"][0]
        assert payload["bucket_counts"] == [1, 3, 4]
        assert payload["count"] == 5
        assert payload["sum"] == pytest.approx(56.05)

    def test_count_and_sum_accessors(self):
        hist = Histogram("latency", "seconds", ("endpoint",), buckets=(1.0,))
        hist.observe(0.5, endpoint="a")
        hist.observe(2.0, endpoint="a")
        assert hist.count(endpoint="a") == 2
        assert hist.sum(endpoint="a") == pytest.approx(2.5)
        assert hist.count(endpoint="missing") == 0

    def test_unsorted_buckets_raise(self):
        with pytest.raises(DataValidationError):
            Histogram("latency", "seconds", buckets=(1.0, 0.1))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total", "requests", ("endpoint",))
        second = registry.counter("requests_total", "requests", ("endpoint",))
        assert first is second

    def test_shape_conflicts_raise(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests", ("endpoint",))
        with pytest.raises(DataValidationError):
            registry.counter("requests_total", "requests", ("endpoint", "shard"))
        with pytest.raises(DataValidationError):
            registry.gauge("requests_total", "requests", ("endpoint",))

    def test_unknown_metric_raises(self):
        with pytest.raises(DataValidationError):
            MetricsRegistry().get("nope")

    def test_json_export_parses_and_reflects_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests", ("endpoint",))
        counter.inc(3, endpoint="a@1")
        payload = json.loads(registry.to_json())
        series = payload["requests_total"]["series"]
        assert series == [{"labels": {"endpoint": "a@1"}, "value": 3.0}]

    def test_prometheus_export_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests", ("endpoint",))
        counter.inc(3, endpoint="a@1")
        hist = registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        text = registry.to_prometheus()
        assert "# HELP requests_total requests" in text
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{endpoint="a@1"} 3' in text
        assert "# TYPE latency_seconds histogram" in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 1' in text
        assert "latency_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "requests", ("endpoint",))
        counter.inc(endpoint='we"ird\nname')
        text = registry.to_prometheus()
        assert 'endpoint="we\\"ird\\nname"' in text
