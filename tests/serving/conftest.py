"""Fixtures for the serving layer: fitted artifacts and endpoint factories.

The expensive pieces (fitted predictor / validator over the session-scoped
income black box) are module-scoped per test module via the package-scoped
fixtures here, so the serving suite adds two fits total, not two per test.
"""

from __future__ import annotations

import pytest

from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry


@pytest.fixture(scope="package")
def serving_predictor(income_blackbox, income_splits):
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=60,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture(scope="package")
def serving_validator(income_blackbox, income_splits):
    return PerformanceValidator(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        threshold=0.05,
        n_samples=60,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


@pytest.fixture
def make_endpoint(serving_predictor, serving_validator):
    """Factory for endpoints around the shared fitted artifacts."""

    def factory(
        name: str = "income",
        version: str = "1",
        with_validator: bool = False,
        **policy_kwargs,
    ) -> Endpoint:
        return Endpoint(
            name=name,
            version=version,
            predictor=serving_predictor,
            validator=serving_validator if with_validator else None,
            policy=EndpointPolicy(**policy_kwargs),
        )

    return factory


@pytest.fixture
def registry(make_endpoint):
    reg = ModelRegistry()
    reg.register(make_endpoint())
    return reg
