"""Interval-aware serving: methods, telemetry, and lower-bound alarming."""

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import GaussianOutliers, MissingValues, Scaling
from repro.exceptions import DataValidationError
from repro.resilience import FakeClock, FaultyCallable
from repro.serving import ResilienceSettings, ValidationService
from repro.serving.registry import EndpointPolicy, ModelRegistry


@pytest.fixture(scope="module")
def uncalibrated_predictor(income_blackbox, income_splits):
    """Fitted predictor whose meta-corpus is below the calibration floor:
    point estimates work, but no interval of any method can be served."""
    return PerformancePredictor(
        income_blackbox,
        [MissingValues(), GaussianOutliers(), Scaling()],
        n_samples=8,
        random_state=0,
    ).fit(income_splits.test, income_splits.y_test)


def corrupt(batch, income_splits, rng):
    return Scaling().corrupt(
        batch, rng,
        columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
    )


class TestPolicyValidation:
    def test_rejects_unknown_interval_method(self):
        with pytest.raises(DataValidationError):
            EndpointPolicy(interval_method="bootstrap")

    def test_rejects_unknown_alarm_mode(self):
        with pytest.raises(DataValidationError):
            EndpointPolicy(alarm_on="smoothed")

    def test_interval_lower_requires_coverage(self):
        with pytest.raises(DataValidationError):
            EndpointPolicy(alarm_on="interval_lower", interval_coverage=None)


class TestIntervalTelemetry:
    def test_result_carries_the_nominal_coverage(self, make_endpoint, income_splits):
        registry = ModelRegistry()
        registry.register(make_endpoint(interval_coverage=0.9))
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.interval is not None
        assert result.interval_coverage == 0.9

    def test_suppressed_interval_has_no_coverage_claim(
        self, make_endpoint, income_splits
    ):
        registry = ModelRegistry()
        registry.register(make_endpoint(interval_coverage=None))
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.interval is None
        assert result.interval_coverage is None

    def test_interval_counters_and_width_histogram(self, registry, income_splits):
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        intervals = service.metrics.get("serving_intervals_total")
        assert intervals.value(endpoint="income@1", method="conformal") == 1
        widths = service.metrics.get("serving_interval_width")
        assert widths.count(endpoint="income@1") == 1
        assert widths.sum(endpoint="income@1") == pytest.approx(
            result.interval[2] - result.interval[0]
        )

    def test_cqr_method_serves_adaptive_intervals(self, make_endpoint, income_splits):
        registry = ModelRegistry()
        registry.register(make_endpoint(interval_method="cqr"))
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.interval is not None
        assert result.interval[0] <= result.estimated_score <= result.interval[2]
        intervals = service.metrics.get("serving_intervals_total")
        assert intervals.value(endpoint="income@1", method="cqr") == 1


class TestIntervalUnavailable:
    def test_unserveable_interval_is_counted_and_warned_once(
        self, uncalibrated_predictor, income_splits
    ):
        from repro.serving.registry import Endpoint

        registry = ModelRegistry()
        registry.register(
            Endpoint(
                name="income",
                version="1",
                predictor=uncalibrated_predictor,
                policy=EndpointPolicy(interval_coverage=0.9),
            )
        )
        service = ValidationService(registry)
        batch = income_splits.serving.head(100)
        with pytest.warns(RuntimeWarning, match="interval=None"):
            [first] = service.submit("income", batch)
        assert first.interval is None
        assert first.interval_coverage is None
        # The second miss increments the counter but does not warn again.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            service.submit("income", batch)
        unavailable = service.metrics.get("serving_interval_unavailable_total")
        assert unavailable.value(endpoint="income@1", reason="no_calibration") == 2

    def test_interval_lower_policy_falls_back_to_estimate_alarming(
        self, uncalibrated_predictor, income_splits
    ):
        from repro.serving.registry import Endpoint

        registry = ModelRegistry()
        endpoint = Endpoint(
            name="income",
            version="1",
            predictor=uncalibrated_predictor,
            policy=EndpointPolicy(alarm_on="interval_lower", interval_coverage=0.9),
        )
        registry.register(endpoint)
        service = ValidationService(registry)
        assert service.interval_alarm_score(endpoint, None, 100) is None
        with pytest.warns(RuntimeWarning):
            [result] = service.submit("income", income_splits.serving.head(100))
        assert result.alarm is False  # clean batch, estimate stream


class TestDegradedIntervals:
    def test_degraded_batches_carry_no_interval(
        self, registry, income_splits, monkeypatch
    ):
        settings = ResilienceSettings(
            enabled=True, max_retries=0, backoff_seconds=0.0, fallback="static"
        )
        service = ValidationService(
            registry, resilience=settings, clock=FakeClock(), sleep=lambda _: None
        )
        predictor = registry.get("income").predictor
        monkeypatch.setattr(
            predictor,
            "predict_from_proba",
            FaultyCallable(predictor.predict_from_proba, fail_on="all"),
        )
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.degraded
        assert result.interval is None
        assert result.interval_coverage is None


class TestIntervalAlarmScore:
    def test_none_for_estimate_policy(self, registry, income_splits):
        service = ValidationService(registry)
        endpoint = registry.get("income")
        interval = (0.5, 0.6, 0.7)
        assert service.interval_alarm_score(endpoint, interval, 100) is None

    def test_lower_plus_margin_for_interval_lower_policy(
        self, make_endpoint, income_splits
    ):
        registry = ModelRegistry()
        endpoint = make_endpoint(alarm_on="interval_lower", interval_coverage=0.9)
        registry.register(endpoint)
        service = ValidationService(registry)
        interval = (0.5, 0.6, 0.7)
        score = service.interval_alarm_score(endpoint, interval, 100)
        margin = endpoint.predictor.interval_alarm_margin(0.9, 100, "conformal")
        assert score == pytest.approx(interval[0] + margin)
        assert margin > 0.0
        assert service.interval_alarm_score(endpoint, None, 100) is None

    def test_clean_traffic_alarm_score_recentered_on_estimate(
        self, make_endpoint, income_splits
    ):
        # On undrifted batches the margin cancels the interval's clean
        # half-width: the alarm stream sits near the point estimate, not
        # a half-width below it.
        registry = ModelRegistry()
        endpoint = make_endpoint(alarm_on="interval_lower", interval_coverage=0.9)
        registry.register(endpoint)
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        score = service.interval_alarm_score(endpoint, result.interval, 100)
        half_width = (result.interval[2] - result.interval[0]) / 2.0
        assert abs(score - result.estimated_score) < half_width / 2.0


class TestIntervalLowerEndToEnd:
    def test_clean_batches_stay_quiet_and_drift_alarms(
        self, make_endpoint, income_splits, rng
    ):
        registry = ModelRegistry()
        registry.register(
            make_endpoint(alarm_on="interval_lower", interval_coverage=0.9, patience=2)
        )
        service = ValidationService(registry)
        batch = income_splits.serving.head(150)
        clean = [service.submit("income", batch)[0] for _ in range(5)]
        assert not any(r.alarm for r in clean)
        corrupted = [
            service.submit("income", corrupt(batch, income_splits, rng))[0]
            for _ in range(3)
        ]
        assert all(r.alarm for r in corrupted)
        assert corrupted[-1].sustained_alarm
