"""Tests for the validation service: routing, micro-batching, telemetry.

Includes the subsystem's end-to-end acceptance test: two endpoints, a
stream of clean and corrupted batches, metrics exports that reflect the
observed counts, and alert delivery through a flaky sink that recovers
via retry.
"""

import json

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.serving.events import AlertEvent, EventRouter
from repro.serving.registry import ModelRegistry
from repro.serving.service import ValidationService
from repro.errors.tabular_errors import Scaling


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FlakySink:
    def __init__(self, failures: int, name: str = "pager"):
        self.name = name
        self.failures = failures
        self.calls = 0
        self.received: list[AlertEvent] = []

    def emit(self, event: AlertEvent) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError("pager timeout")
        self.received.append(event)


def clean_batches(income_splits, n, rows=150):
    """``n`` deterministic clean batches cycling over the serving split."""
    serving = income_splits.serving
    slices = [
        serving.select_rows(np.arange(start, start + rows))
        for start in range(0, len(serving) - rows + 1, rows)
    ]
    return [slices[i % len(slices)] for i in range(n)]


def corrupt(batch, income_splits, rng):
    return Scaling().corrupt(
        batch, rng,
        columns=income_splits.serving.numeric_columns, fraction=1.0, factor=1000.0,
    )


class TestSubmission:
    def test_immediate_endpoint_returns_one_result(self, registry, income_splits):
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(200))
        assert result.key == "income@1"
        assert result.batch_index == 0
        assert result.n_rows == 200
        assert 0.0 <= result.estimated_score <= 1.0
        assert result.interval is not None
        assert result.interval[0] <= result.estimated_score <= result.interval[2]
        assert result.trusted is None

    def test_empty_batch_raises(self, registry, income_splits):
        service = ValidationService(registry)
        with pytest.raises(DataValidationError):
            service.submit("income", income_splits.serving.select_rows([]))

    def test_unknown_endpoint_raises(self, registry, income_splits):
        service = ValidationService(registry)
        with pytest.raises(DataValidationError):
            service.submit("nope", income_splits.serving.head(10))

    def test_interval_suppressed_by_policy(self, make_endpoint, income_splits):
        registry = ModelRegistry()
        registry.register(make_endpoint(interval_coverage=None))
        service = ValidationService(registry)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.interval is None

    def test_validator_endpoint_reports_trust(self, make_endpoint, income_splits):
        registry = ModelRegistry()
        registry.register(make_endpoint(name="audited", with_validator=True))
        service = ValidationService(registry)
        [result] = service.submit("audited", income_splits.serving.head(400))
        assert result.trusted is True

    def test_monitors_are_isolated_per_endpoint(
        self, make_endpoint, income_splits, rng
    ):
        registry = ModelRegistry()
        registry.register(make_endpoint(name="sales"))
        registry.register(make_endpoint(name="fraud"))
        service = ValidationService(registry)
        batch = income_splits.serving.head(150)
        service.submit("sales", corrupt(batch, income_splits, rng))
        [fraud_result] = service.submit("fraud", batch)
        assert fraud_result.alarm is False
        assert service.monitor("sales").state.consecutive_alarms == 1
        assert service.monitor("fraud").state.consecutive_alarms == 0


class TestMicroBatching:
    @pytest.fixture
    def micro_service(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(
            make_endpoint(micro_batch_size=300, max_wait_seconds=10.0)
        )
        clock = FakeClock()
        return ValidationService(registry, clock=clock), clock

    def test_accumulates_until_target_size(self, micro_service, income_splits):
        service, _ = micro_service
        first = income_splits.serving.select_rows(np.arange(0, 150))
        second = income_splits.serving.select_rows(np.arange(150, 300))
        assert service.submit("income", first) == []
        assert service.pending_rows("income") == 150
        [result] = service.submit("income", second)
        assert result.n_rows == 300
        assert service.pending_rows("income") == 0

    def test_max_wait_flush_via_flush_expired(self, micro_service, income_splits):
        service, clock = micro_service
        service.submit("income", income_splits.serving.head(100))
        assert service.flush_expired() == []
        clock.advance(10.5)
        [result] = service.flush_expired()
        assert result.n_rows == 100
        assert service.pending_rows("income") == 0

    def test_stale_buffer_flushes_before_merging_fresh_rows(
        self, micro_service, income_splits
    ):
        service, clock = micro_service
        service.submit("income", income_splits.serving.head(100))
        clock.advance(11.0)
        results = service.submit(
            "income", income_splits.serving.select_rows(np.arange(100, 150))
        )
        assert [r.n_rows for r in results] == [100]
        assert service.pending_rows("income") == 50

    def test_manual_flush(self, micro_service, income_splits):
        service, _ = micro_service
        assert service.flush("income") is None
        service.submit("income", income_splits.serving.head(80))
        result = service.flush("income")
        assert result is not None and result.n_rows == 80
        flushes = service.metrics.get("serving_microbatch_flushes_total")
        assert flushes.value(endpoint="income@1", reason="manual") == 1

    def test_request_and_row_counters_track_submissions(
        self, micro_service, income_splits
    ):
        service, _ = micro_service
        service.submit("income", income_splits.serving.head(100))
        requests = service.metrics.get("serving_requests_total")
        rows = service.metrics.get("serving_rows_total")
        scored = service.metrics.get("serving_batches_scored_total")
        assert requests.value(endpoint="income@1") == 1
        assert rows.value(endpoint="income@1") == 100
        assert scored.value(endpoint="income@1") == 0  # still buffered


class TestEndToEnd:
    def test_two_endpoints_twenty_plus_batches_metrics_and_alerts(
        self, make_endpoint, income_splits, rng
    ):
        registry = ModelRegistry()
        registry.register(make_endpoint(name="sales", threshold=0.10, patience=2))
        registry.register(
            make_endpoint(name="fraud", with_validator=True, threshold=0.10)
        )
        pager = FlakySink(failures=2)
        router = EventRouter([pager], max_retries=3, sleep=lambda _: None)
        service = ValidationService(registry, events=router)

        batches = clean_batches(income_splits, 16)
        results = []
        for batch in batches:
            results.extend(service.submit("sales", batch))
        for batch in clean_batches(income_splits, 4):
            results.extend(service.submit("fraud", batch))
        corrupted_results = []
        for batch in clean_batches(income_splits, 8):
            corrupted_results.extend(
                service.submit("sales", corrupt(batch, income_splits, rng))
            )

        # (a) corrupted batches alarm, clean ones don't.
        assert len(results) == 20
        assert all(not r.alarm for r in results)
        assert len(corrupted_results) == 8
        assert all(r.alarm for r in corrupted_results)
        assert any(r.sustained_alarm for r in corrupted_results)
        fraud_results = [r for r in results if r.endpoint == "fraud"]
        assert all(r.trusted is True for r in fraud_results)

        # (b) metrics exports reflect the observed request/alarm counts.
        alarms = service.metrics.get("serving_alarms_total")
        alarm_total = alarms.value(endpoint="sales@1", severity="alarm") + alarms.value(
            endpoint="sales@1", severity="sustained"
        )
        assert alarm_total == 8
        assert alarms.value(endpoint="fraud@1", severity="alarm") == 0

        payload = json.loads(service.metrics.to_json())
        requests_series = {
            s["labels"]["endpoint"]: s["value"]
            for s in payload["serving_requests_total"]["series"]
        }
        assert requests_series == {"sales@1": 24.0, "fraud@1": 4.0}
        latency = payload["serving_scoring_latency_seconds"]["series"]
        assert sum(s["count"] for s in latency) == 28

        text = service.metrics.to_prometheus()
        assert 'serving_requests_total{endpoint="sales@1"} 24' in text
        assert 'serving_requests_total{endpoint="fraud@1"} 4' in text
        assert 'serving_batches_scored_total{endpoint="sales@1"} 24' in text
        assert "# TYPE serving_alarms_total counter" in text

        # (c) the flaky sink recovered via retry: every alert delivered,
        # nothing in the dead-letter buffer.
        assert pager.calls == len(pager.received) + 2
        assert len(pager.received) == 8
        assert list(router.dead_letters) == []
        severities = [event.severity for event in pager.received]
        assert severities[0] == "alarm"
        assert "sustained" in severities

        summary = service.summary()
        assert "2 endpoint(s)" in summary
        assert "sales@1" in summary and "fraud@1" in summary
