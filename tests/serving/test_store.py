"""Tests for the content-addressed store, lazy registry and fleet scoring."""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import persistence
from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import GaussianOutliers, MissingValues
from repro.exceptions import DataValidationError
from repro.persistence import array_to_npy_bytes, content_digest
from repro.serving.registry import EndpointPolicy
from repro.serving.service import ValidationService
from repro.serving.store import (
    ArtifactStore,
    ByteBudgetLRU,
    LazyModelRegistry,
    read_store_manifest,
    score_fleet,
    shard_for,
)


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture
def lazy_registry(tmp_path):
    return LazyModelRegistry(ArtifactStore(tmp_path / "store"))


@pytest.fixture(scope="module")
def hist_artifacts(income_blackbox, income_splits):
    """A second fitted pair on the histogram tree engine, for the
    tree_method × kernel parity matrix."""
    predictor = PerformancePredictor(
        income_blackbox, [MissingValues(), GaussianOutliers()],
        n_samples=12, random_state=0, tree_method="hist",
    ).fit(income_splits.test, income_splits.y_test)
    validator = PerformanceValidator(
        income_blackbox, [MissingValues(), GaussianOutliers()],
        threshold=0.05, n_samples=12, random_state=0, tree_method="hist",
    ).fit(income_splits.test, income_splits.y_test)
    return predictor, validator


class TestBlobHelpers:
    def test_npy_bytes_are_layout_canonical(self):
        base = np.arange(12, dtype=np.float64).reshape(3, 4)
        fortran = np.asfortranarray(base)
        assert array_to_npy_bytes(base) == array_to_npy_bytes(fortran)
        assert content_digest(array_to_npy_bytes(base)) == content_digest(
            array_to_npy_bytes(fortran)
        )

    def test_object_arrays_rejected(self):
        with pytest.raises(DataValidationError):
            array_to_npy_bytes(np.array(["a", None], dtype=object))

    @given(
        st.lists(
            st.floats(allow_nan=True, allow_infinity=True, width=64),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_numeric_npy_round_trip_bitwise(self, values):
        """NaN-missing numerics survive the blob format bit-for-bit."""
        import io

        array = np.array(values, dtype=np.float64)
        loaded = np.load(io.BytesIO(array_to_npy_bytes(array)), allow_pickle=False)
        assert loaded.dtype == array.dtype
        assert array_to_npy_bytes(loaded) == array_to_npy_bytes(array)

    @given(
        st.lists(
            st.one_of(st.none(), st.text(max_size=12)),
            min_size=1, max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_object_column_encode_decode_round_trip(self, values):
        """The None-mask string encoding is lossless for object columns."""
        column = np.array(values, dtype=object)
        strings, missing = persistence._encode_object_column(column)
        decoded = persistence._decode_object_column(strings, missing)
        assert list(decoded) == list(column)


class TestArtifactStore:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_model_round_trip(self, store, serving_predictor, income_splits, mmap):
        record = store.put_model(serving_predictor)
        loaded = store.load_model(
            record, mmap=mmap, expected_class=PerformancePredictor
        )
        frame = income_splits.test
        assert loaded.predict(frame) == serving_predictor.predict(frame)

    def test_mmap_round_trip_of_frame_arrays(self, store, small_frame):
        """Object/string columns and NaN numerics survive externalized
        storage: numeric columns become mmap-able blobs (threshold 0),
        object columns stay in the pickle stream."""
        store.array_threshold_bytes = 0
        record = store.put_model(small_frame)
        assert record.array_digests  # numeric columns were externalized
        loaded = store.load_model(record, mmap=True)
        assert loaded == small_frame
        assert isinstance(loaded["age"], np.memmap)

    def test_content_addressing_dedups_shared_models(
        self, store, serving_predictor
    ):
        first = store.put_model(serving_predictor)
        count_after_first = store.blob_count()
        second = store.put_model(serving_predictor)
        assert first == second
        assert store.blob_count() == count_after_first

    def test_load_checks_class(self, store, serving_predictor):
        record = store.put_model(serving_predictor)
        with pytest.raises(DataValidationError):
            store.load_model(record, expected_class=PerformanceValidator)

    def test_aliasing_survives_hydration(self, store):
        shared = np.arange(4096, dtype=np.float64)
        record = store.put_model({"a": shared, "b": shared})
        loaded = store.load_model(record, mmap=True)
        assert loaded["a"] is loaded["b"]


class TestByteBudgetLRU:
    def test_evicts_least_recently_used_past_budget(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", "A", 40)
        cache.put("b", "B", 40)
        cache.get("a")  # refresh: b is now LRU
        evicted = cache.put("c", "C", 40)
        assert [key for key, _ in evicted] == ["b"]
        assert cache.keys() == ["a", "c"]

    def test_oversized_entry_is_admitted(self):
        cache = ByteBudgetLRU(10)
        cache.put("small", "s", 5)
        evicted = cache.put("huge", "H", 50)
        assert [key for key, _ in evicted] == ["small"]
        assert cache.get("huge") == "H"

    def test_pinned_entries_survive_pressure(self):
        cache = ByteBudgetLRU(100)
        cache.put("a", "A", 60)
        assert cache.pin("a")
        evicted = cache.put("b", "B", 60)
        assert evicted == []  # a is pinned, b is the fresh insert
        assert cache.get("a") == "A"  # refresh: b is now LRU
        evicted = cache.unpin("a")  # over budget: trim now evicts the LRU
        assert [key for key, _ in evicted] == ["b"]
        assert cache.keys() == ["a"]

    def test_evict_overrides_pins(self):
        cache = ByteBudgetLRU(None)
        cache.put("a", "A", 10)
        cache.pin("a")
        assert cache.evict("a") == "A"
        assert not cache.pinned("a")
        assert "a" not in cache

    def test_unbounded_cache_never_evicts(self):
        cache = ByteBudgetLRU(None)
        for i in range(20):
            assert cache.put(str(i), i, 10**9) == []
        assert len(cache) == 20


class TestLazyModelRegistry:
    def test_restore_reads_manifest_only(self, lazy_registry, make_endpoint):
        lazy_registry.register(make_endpoint(name="a", with_validator=True))
        lazy_registry.register(make_endpoint(name="b"))
        restored = LazyModelRegistry.restore(lazy_registry.store.root)
        assert [e.key for e in restored.entries()] == ["a@1", "b@1"]
        assert restored.hydrated_keys() == []
        assert restored.hydrated_bytes() == 0
        entry = restored.resolve("a")
        assert entry.has_validator and entry.stored_bytes > 0

    def test_get_hydrates_and_caches(self, lazy_registry, make_endpoint):
        lazy_registry.register(make_endpoint(name="a"))
        restored = LazyModelRegistry.restore(lazy_registry.store.root)
        endpoint = restored.get("a")
        assert restored.hydrated_keys() == ["a@1"]
        assert restored.get("a") is endpoint  # cached, not re-hydrated

    def test_byte_budget_evicts_cold_endpoints(self, lazy_registry, make_endpoint):
        for name in ("a", "b", "c"):
            lazy_registry.register(make_endpoint(name=name))
        per_endpoint = lazy_registry.resolve("a").stored_bytes
        restored = LazyModelRegistry.restore(
            lazy_registry.store.root, cache_bytes=2 * per_endpoint
        )
        for name in ("a", "b", "c"):
            restored.get(name)
        assert restored.hydrated_keys() == ["b@1", "c@1"]
        assert restored.hydrated_bytes() <= 2 * per_endpoint

    def test_pinned_endpoint_survives_cache_pressure(
        self, lazy_registry, make_endpoint
    ):
        for name in ("a", "b", "c"):
            lazy_registry.register(make_endpoint(name=name))
        per_endpoint = lazy_registry.resolve("a").stored_bytes
        restored = LazyModelRegistry.restore(
            lazy_registry.store.root, cache_bytes=per_endpoint
        )
        restored.get("a")
        with restored.pinned("a@1"):
            restored.get("b")
            restored.get("c")
            assert "a@1" in restored.hydrated_keys()
        # After unpin the over-budget cache trims back down.
        assert restored.hydrated_bytes() <= per_endpoint

    def test_eviction_notifies_listeners(self, lazy_registry, make_endpoint):
        lazy_registry.register(make_endpoint(name="a"))
        evicted = []
        lazy_registry.add_eviction_listener(evicted.append)
        lazy_registry.get("a")
        assert lazy_registry.evict("a@1")
        assert evicted == ["a@1"]
        assert not lazy_registry.evict("a@1")  # already cold: no double fire
        assert evicted == ["a@1"]

    def test_replacing_entry_evicts_stale_hydration(
        self, lazy_registry, make_endpoint
    ):
        lazy_registry.register(make_endpoint(name="a"))
        old = lazy_registry.get("a")
        lazy_registry.register(
            make_endpoint(name="a", threshold=0.1), replace_existing=True
        )
        refreshed = lazy_registry.get("a")
        assert refreshed is not old
        assert refreshed.policy.threshold == 0.1

    def test_deregister_updates_manifest(self, lazy_registry, make_endpoint):
        lazy_registry.register(make_endpoint(name="a"))
        lazy_registry.register(make_endpoint(name="b"))
        lazy_registry.deregister("a")
        assert [e.key for e in read_store_manifest(lazy_registry.store.root)] == [
            "b@1"
        ]

    def test_duplicate_registration_raises_unless_replacing(
        self, lazy_registry, make_endpoint
    ):
        lazy_registry.register(make_endpoint(name="a"))
        with pytest.raises(DataValidationError):
            lazy_registry.register(make_endpoint(name="a"))


class TestHydrationParity:
    @pytest.mark.parametrize("tree_method", ["exact", "hist"])
    @pytest.mark.parametrize("kernel", ["fused", "reference"])
    def test_mmap_scores_bitwise_identical_to_resident(
        self,
        tmp_path,
        tree_method,
        kernel,
        serving_predictor,
        serving_validator,
        hist_artifacts,
        income_splits,
    ):
        """The full tree_method × kernel matrix: a memory-mapped
        hydration must be indistinguishable from a resident one."""
        if tree_method == "exact":
            predictor, validator = serving_predictor, serving_validator
        else:
            predictor, validator = hist_artifacts
        from repro.serving.registry import Endpoint

        registry = LazyModelRegistry(ArtifactStore(tmp_path / "store"))
        registry.register(
            Endpoint(
                name="m", version="1", predictor=predictor, validator=validator
            )
        )
        frame = income_splits.test.select_rows(np.arange(60))
        results = {}
        for mmap in (True, False):
            restored = LazyModelRegistry.restore(registry.store.root, mmap=mmap)
            service = ValidationService(restored, kernel=kernel)
            results[mmap] = [service.score_now("m", frame) for _ in range(3)]
        assert results[True] == results[False]


class TestServiceIntegration:
    def test_eviction_drops_fused_kernel_cache(
        self, lazy_registry, make_endpoint, income_splits
    ):
        lazy_registry.register(make_endpoint(name="a", with_validator=True))
        service = ValidationService(lazy_registry, kernel="fused")
        frame = income_splits.test.select_rows(np.arange(40))
        service.score_now("a", frame)
        assert "a@1" in service._kernels
        lazy_registry.evict("a@1")
        assert "a@1" not in service._kernels
        # Re-hydration rebuilds the kernel against the fresh models.
        service.score_now("a", frame)
        assert service._kernels["a@1"].predictor is lazy_registry.get("a").predictor

    def test_concurrent_scoring_under_tiny_cache_is_deterministic(
        self, lazy_registry, make_endpoint, income_splits
    ):
        names = ("a", "b", "c")
        for name in names:
            lazy_registry.register(make_endpoint(name=name))
        per_endpoint = lazy_registry.resolve("a").stored_bytes
        frame = income_splits.test.select_rows(np.arange(30))
        rounds = 4

        baseline_registry = LazyModelRegistry.restore(
            lazy_registry.store.root, cache_bytes=per_endpoint
        )
        baseline = ValidationService(baseline_registry)
        expected = {
            name: [baseline.score_now(name, frame) for _ in range(rounds)]
            for name in names
        }

        registry = LazyModelRegistry.restore(
            lazy_registry.store.root, cache_bytes=per_endpoint
        )
        service = ValidationService(registry)
        results = {name: [] for name in names}
        errors = []

        def worker(name):
            try:
                for _ in range(rounds):
                    results[name].append(service.score_now(name, frame))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in names]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        # Constant eviction pressure (three tenants, one-endpoint budget)
        # must not change a single scored bit.
        assert results == expected


class TestSharding:
    def test_shard_for_is_stable_and_in_range(self):
        assert shard_for("income", 4) == shard_for("income", 4)
        for n_shards in (1, 2, 7):
            for name in ("a", "b", "tenant-0042"):
                assert 0 <= shard_for(name, n_shards) < n_shards
        with pytest.raises(DataValidationError):
            shard_for("a", 0)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_score_fleet_bit_identical_across_parallelism(
        self, lazy_registry, make_endpoint, income_splits, backend, n_jobs
    ):
        for name in ("a", "b", "c"):
            lazy_registry.register(make_endpoint(name=name))
        frame = income_splits.test.select_rows(np.arange(30))
        batches = [(name, frame) for name in ("a", "b", "c") for _ in range(2)]
        store_dir = lazy_registry.store.root
        serial = score_fleet(store_dir, batches, n_shards=2, n_jobs=1)
        parallel = score_fleet(
            store_dir, batches, n_shards=2, n_jobs=n_jobs, backend=backend
        )
        assert serial == parallel

    def test_score_fleet_shard_count_does_not_change_results(
        self, lazy_registry, make_endpoint, income_splits
    ):
        for name in ("a", "b"):
            lazy_registry.register(make_endpoint(name=name))
        frame = income_splits.test.select_rows(np.arange(30))
        batches = [(name, frame) for name in ("a", "b") for _ in range(3)]
        store_dir = lazy_registry.store.root
        reference = score_fleet(store_dir, batches, n_shards=1, n_jobs=1)
        for n_shards in (2, 5):
            assert score_fleet(store_dir, batches, n_shards=n_shards, n_jobs=2) == reference

    def test_score_fleet_empty_batches(self, lazy_registry):
        assert score_fleet(lazy_registry.store.root, []) == []


class TestManifest:
    def test_manifest_round_trips_policy(self, lazy_registry, make_endpoint):
        lazy_registry.register(
            make_endpoint(name="a", threshold=0.07, micro_batch_size=64)
        )
        entry = read_store_manifest(lazy_registry.store.root)[0]
        assert entry.policy == EndpointPolicy(threshold=0.07, micro_batch_size=64)

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(DataValidationError):
            read_store_manifest(tmp_path)
