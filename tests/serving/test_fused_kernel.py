"""Fused vs reference serving kernel: bit-identical ``BatchResult`` streams.

The matrix below refits the meta-models under every combination of tree
engine, worker count and parallel backend the predictor/validator expose,
then scores the same micro-batch stream through two services that differ
only in ``kernel=``. ``BatchResult`` is a frozen dataclass, so ``==`` is
an exact, field-by-field comparison — any drift in the fused arithmetic
fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.errors.tabular_errors import MissingValues, Scaling
from repro.exceptions import DataValidationError
from repro.serving.registry import Endpoint, EndpointPolicy, ModelRegistry
from repro.serving.service import ValidationService

MATRIX = [
    ("exact", 1, "auto"),
    ("exact", 2, "thread"),
    ("exact", 2, "process"),
    ("hist", 1, "auto"),
    ("hist", 2, "thread"),
    ("hist", 2, "process"),
]


def _batches(income_splits, count=3, rows=40):
    rng = np.random.default_rng(5)
    return [
        income_splits.serving.select_rows(
            rng.choice(len(income_splits.serving), size=rows, replace=True)
        )
        for _ in range(count)
    ]


def _service(predictor, validator, kernel):
    registry = ModelRegistry()
    registry.register(
        Endpoint(
            name="income",
            version="1",
            predictor=predictor,
            validator=validator,
            policy=EndpointPolicy(interval_coverage=0.8),
        )
    )
    return ValidationService(registry, kernel=kernel)


@pytest.mark.parametrize("tree_method,n_jobs,backend", MATRIX)
def test_batch_results_bit_identical_across_engines(
    income_blackbox, income_splits, tree_method, n_jobs, backend
):
    generators = [MissingValues(), Scaling()]
    fit_kwargs = dict(
        n_samples=12,
        random_state=0,
        n_jobs=n_jobs,
        backend=backend,
        tree_method=tree_method,
    )
    predictor = PerformancePredictor(
        income_blackbox, generators, **fit_kwargs
    ).fit(income_splits.test, income_splits.y_test)
    validator = PerformanceValidator(
        income_blackbox, generators, threshold=0.05, **fit_kwargs
    ).fit(income_splits.test, income_splits.y_test)
    batches = _batches(income_splits)
    reference_service = _service(predictor, validator, "reference")
    fused_service = _service(predictor, validator, "fused")
    reference = [reference_service.score_now("income", b) for b in batches]
    fused = [fused_service.score_now("income", b) for b in batches]
    assert fused == reference


def test_fused_matches_reference_without_validator(
    serving_predictor, income_splits
):
    batches = _batches(income_splits)
    reference_service = _service(serving_predictor, None, "reference")
    fused_service = _service(serving_predictor, None, "fused")
    reference = [reference_service.score_now("income", b) for b in batches]
    assert [fused_service.score_now("income", b) for b in batches] == reference


def test_unknown_kernel_rejected(registry):
    with pytest.raises(DataValidationError, match="unknown kernel"):
        ValidationService(registry, kernel="turbo")


def test_hot_swapped_endpoint_rebuilds_fused_scorer(
    serving_predictor, serving_validator, income_splits
):
    """Re-registering under the same key must not serve a stale kernel.

    Both services traverse the identical register → score → hot-swap →
    score trajectory; only ``kernel=`` differs, so any disagreement on
    the post-swap batch means the fused scorer cached the old artifacts.
    """
    batches = _batches(income_splits, count=2)
    fresh = PerformanceValidator(
        serving_predictor.blackbox,
        [MissingValues(), Scaling()],
        percentile_step=10,
        n_samples=12,
        random_state=1,
    ).fit(income_splits.test, income_splits.y_test)

    def endpoint(validator):
        return Endpoint(
            name="income",
            version="1",
            predictor=serving_predictor,
            validator=validator,
            policy=EndpointPolicy(interval_coverage=0.8),
        )

    results = {}
    for kernel in ("reference", "fused"):
        registry = ModelRegistry()
        registry.register(endpoint(serving_validator))
        service = ValidationService(registry, kernel=kernel)
        service.score_now("income", batches[0])  # caches the fused scorer
        registry.register(endpoint(fresh), replace_existing=True)
        results[kernel] = service.score_now("income", batches[1])
    assert results["fused"] == results["reference"]
