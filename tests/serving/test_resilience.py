"""Degraded-mode serving: faults in, answers out — never an unhandled crash."""

import pytest

from repro.exceptions import ResilienceError
from repro.resilience import FakeClock, FaultyCallable, InjectedFault
from repro.serving import ResilienceSettings, ValidationService


def make_service(registry, resilience=None, clock=None):
    return ValidationService(
        registry,
        resilience=resilience,
        clock=clock if clock is not None else FakeClock(),
        sleep=lambda _: None,
    )


@pytest.fixture
def inject(monkeypatch):
    """Like ``repro.resilience.wrap_method``, but undone at teardown —
    the fitted predictor fixtures are shared across the package."""

    def _inject(obj, method_name, **fault_kwargs):
        faulty = FaultyCallable(getattr(obj, method_name), **fault_kwargs)
        monkeypatch.setattr(obj, method_name, faulty)
        return faulty

    return _inject


@pytest.fixture
def settings():
    return ResilienceSettings(
        enabled=True,
        max_retries=1,
        backoff_seconds=0.0,
        breaker_failure_threshold=2,
        breaker_window=4,
        breaker_cooldown_seconds=30.0,
        fallback="bbseh",
    )


class TestDegradedServing:
    def test_healthy_endpoint_serves_undegraded(self, registry, income_splits, settings):
        service = make_service(registry, resilience=settings)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert not result.degraded
        assert result.fallback is None

    def test_predictor_fault_degrades_to_bbseh(self, inject, registry, income_splits, settings):
        service = make_service(registry, resilience=settings)
        endpoint = registry.get("income")
        faulty = inject(endpoint.predictor, "predict_from_proba", fail_on=2)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.degraded
        assert result.fallback == "bbseh"
        assert result.trusted is True  # clean serving rows: no shift
        assert result.estimated_score == pytest.approx(endpoint.expected_score)
        assert faulty.calls == 2  # first attempt + one retry
        key = endpoint.key
        assert service.metrics.get("resilience_fallback_total").value(
            endpoint=key, fallback="bbseh"
        ) == 1.0
        assert service.metrics.get("resilience_retries_total").value(
            endpoint=key
        ) == 1.0
        assert service.metrics.get("resilience_primary_failures_total").value(
            endpoint=key, reason="exception"
        ) == 1.0

    def test_retry_recovers_single_transient_fault(self, inject, registry, income_splits, settings):
        service = make_service(registry, resilience=settings)
        faulty = inject(
            registry.get("income").predictor, "predict_from_proba", fail_on=1
        )
        [result] = service.submit("income", income_splits.serving.head(100))
        assert not result.degraded
        assert faulty.calls == 2

    def test_blackbox_fault_falls_through_to_static(
        self, inject, registry, income_splits, settings
    ):
        # A broken predict_proba takes the bbseh fallback down with it —
        # the static layer still answers.
        service = make_service(registry, resilience=settings)
        endpoint = registry.get("income")
        inject(endpoint.predictor.blackbox, "predict_proba", fail_on=99)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert result.degraded
        assert result.fallback == "static"
        assert result.trusted is None
        assert result.estimated_score == pytest.approx(endpoint.expected_score)

    def test_degraded_result_is_marked_in_describe(
        self, inject, registry, income_splits, settings
    ):
        service = make_service(registry, resilience=settings)
        inject(registry.get("income").predictor, "predict_from_proba", fail_on=2)
        [result] = service.submit("income", income_splits.serving.head(100))
        assert "degraded=bbseh" in result.describe()

    def test_disabled_resilience_propagates_faults(self, inject, registry, income_splits):
        service = make_service(registry, resilience=None)
        inject(registry.get("income").predictor, "predict_from_proba", fail_on=1)
        with pytest.raises(InjectedFault):
            service.submit("income", income_splits.serving.head(100))

    def test_fallback_none_propagates_after_retry(
        self, inject, registry, income_splits, settings
    ):
        from dataclasses import replace

        service = make_service(registry, resilience=replace(settings, fallback="none"))
        inject(registry.get("income").predictor, "predict_from_proba", fail_on=99)
        with pytest.raises(ResilienceError):
            service.submit("income", income_splits.serving.head(100))


class TestBreakerLifecycle:
    def test_breaker_opens_sheds_and_recovers(self, inject, registry, income_splits, settings):
        clock = FakeClock()
        service = make_service(registry, resilience=settings, clock=clock)
        endpoint = registry.get("income")
        # Each degraded batch records max_retries + 1 = 2 primary
        # failures, so one batch trips the threshold-2 breaker.
        faulty = inject(endpoint.predictor, "predict_from_proba", fail_on=2)
        batch = income_splits.serving.head(100)

        [first] = service.submit("income", batch)
        assert first.degraded
        assert service.breaker_state("income") == "open"

        calls_before = faulty.calls
        [shed] = service.submit("income", batch)
        assert shed.degraded
        assert faulty.calls == calls_before  # load shed: primary skipped
        key = endpoint.key
        assert service.metrics.get("resilience_primary_failures_total").value(
            endpoint=key, reason="breaker_open"
        ) == 1.0

        clock.advance(settings.breaker_cooldown_seconds)
        [recovered] = service.submit("income", batch)  # half-open probe succeeds
        assert not recovered.degraded
        assert service.breaker_state("income") == "closed"
        transitions = service.metrics.get("resilience_breaker_transitions_total")
        assert transitions.value(endpoint=key, state="open") == 1.0
        assert transitions.value(endpoint=key, state="half_open") == 1.0
        assert transitions.value(endpoint=key, state="closed") == 1.0

    def test_breaker_state_gauge_tracks_current_state(
        self, inject, registry, income_splits, settings
    ):
        clock = FakeClock()
        service = make_service(registry, resilience=settings, clock=clock)
        endpoint = registry.get("income")
        inject(endpoint.predictor, "predict_from_proba", fail_on=2)
        service.submit("income", income_splits.serving.head(100))
        gauge = service.metrics.get("resilience_breaker_state")
        assert gauge.value(endpoint=endpoint.key) == 1.0  # open

    def test_breaker_state_is_none_before_first_use(self, registry, settings):
        service = make_service(registry, resilience=settings)
        assert service.breaker_state("income") is None


class TestMonitorContinuity:
    def test_degraded_batches_keep_the_monitor_stream_intact(
        self, inject, registry, income_splits, settings
    ):
        # Batch indices must stay contiguous across degraded batches, and
        # the fallback's expected-score estimate must not trip the alarm.
        service = make_service(registry, resilience=settings)
        inject(
            registry.get("income").predictor, "predict_from_proba", fail_on=[2, 3]
        )
        batch = income_splits.serving.head(60)
        results = [service.submit("income", batch)[0] for _ in range(4)]
        assert [r.batch_index for r in results] == [0, 1, 2, 3]
        degraded = [r.batch_index for r in results if r.degraded]
        # Batch 2 exhausts its retry budget (calls 2 and 3), which also
        # trips the threshold-2 breaker, so batch 3 is shed while open.
        assert degraded == [2, 3]
        assert not any(r.alarm for r in results)

    def test_degraded_estimates_leave_monitor_accounting_untouched(
        self, inject, registry, income_splits, settings
    ):
        # Regression: fallback estimates used to feed the smoothing
        # stream and the consecutive-alarm streak, so a predictor outage
        # skewed detection metrics exactly like drift would.
        service = make_service(registry, resilience=settings)
        batch = income_splits.serving.head(60)
        service.submit("income", batch)  # healthy batch seeds smoothing
        monitor = service.monitor("income")
        smoothed_before = monitor._smoothed
        streak_before = monitor.state.consecutive_alarms

        inject(
            registry.get("income").predictor, "predict_from_proba", fail_on="all"
        )
        outage = [service.submit("income", batch)[0] for _ in range(2)]
        assert all(r.degraded for r in outage)
        assert not any(r.alarm for r in outage)
        assert monitor._smoothed == smoothed_before
        assert monitor.state.consecutive_alarms == streak_before
        assert monitor.state.total_degraded == 2
        assert monitor.state.total_alarms == 0
        assert monitor.state.total_batches == 3


class TestRehydrationStaleness:
    def test_rehydration_rebuilds_scorer_but_keeps_breaker_history(
        self, serving_predictor, income_splits, settings, tmp_path
    ):
        """Evicting and re-hydrating an endpoint must rebuild the
        resilient scorer (its closures capture the old hydration's
        models) while keeping the circuit breaker — failure history
        belongs to the endpoint, not to one hydration of it."""
        from repro.serving.registry import Endpoint
        from repro.serving.store import ArtifactStore, LazyModelRegistry

        registry = LazyModelRegistry(ArtifactStore(tmp_path / "store"))
        registry.register(
            Endpoint(name="income", version="1", predictor=serving_predictor)
        )
        service = make_service(registry, resilience=settings)
        frame = income_splits.serving.head(100)

        [before] = service.submit("income", frame)
        _, old_scorer = service._scorers["income@1"]
        old_breaker = service._breakers["income@1"]

        registry.evict("income@1")
        assert "income@1" not in service._scorers  # invalidated with eviction

        [after] = service.submit("income", frame)
        _, new_scorer = service._scorers["income@1"]
        assert new_scorer is not old_scorer
        assert service._breakers["income@1"] is old_breaker
        assert after.estimated_score == before.estimated_score
