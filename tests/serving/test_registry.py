"""Tests for endpoints, policies and the model registry."""

import pytest

from repro.core.predictor import PerformancePredictor
from repro.errors.tabular_errors import Scaling
from repro.exceptions import DataValidationError
from repro.serving.registry import (
    Endpoint,
    EndpointPolicy,
    ModelRegistry,
    endpoint_from_artifacts,
)


class TestEndpointPolicy:
    def test_defaults_are_valid(self):
        policy = EndpointPolicy()
        assert policy.threshold == 0.05
        assert policy.micro_batch_size is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"threshold": 0.0},
            {"threshold": 1.0},
            {"micro_batch_size": 0},
            {"max_wait_seconds": -1.0},
            {"interval_coverage": 1.5},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(DataValidationError):
            EndpointPolicy(**kwargs)


class TestEndpoint:
    def test_key_and_expected_score(self, make_endpoint, serving_predictor):
        endpoint = make_endpoint(name="income", version="2")
        assert endpoint.key == "income@2"
        assert endpoint.expected_score == serving_predictor.test_score_

    def test_unfitted_predictor_rejected(self, income_blackbox):
        unfitted = PerformancePredictor(income_blackbox, [Scaling()])
        with pytest.raises(DataValidationError):
            Endpoint(name="income", version="1", predictor=unfitted)

    @pytest.mark.parametrize("bad_name", ["", "with space", "a/b", "@v"])
    def test_invalid_names_rejected(self, serving_predictor, bad_name):
        with pytest.raises(DataValidationError):
            Endpoint(name=bad_name, version="1", predictor=serving_predictor)

    def test_describe_mentions_policy(self, make_endpoint):
        text = make_endpoint(micro_batch_size=100).describe()
        assert "micro-batch 100" in text
        assert "income@1" in text


class TestModelRegistry:
    def test_register_and_get(self, make_endpoint):
        registry = ModelRegistry()
        endpoint = registry.register(make_endpoint())
        assert registry.get("income") is endpoint
        assert registry.get("income", "1") is endpoint
        assert len(registry) == 1
        assert "income" in registry

    def test_get_without_version_returns_latest(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(make_endpoint(version="1"))
        v2 = registry.register(make_endpoint(version="2"))
        assert registry.get("income") is v2
        assert registry.get("income", "1").version == "1"

    def test_duplicate_registration_raises_unless_replacing(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(make_endpoint())
        with pytest.raises(DataValidationError):
            registry.register(make_endpoint())
        replacement = make_endpoint(threshold=0.10)
        registry.register(replacement, replace_existing=True)
        assert registry.get("income").policy.threshold == 0.10

    def test_unknown_lookups_raise(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(make_endpoint())
        with pytest.raises(DataValidationError):
            registry.get("missing")
        with pytest.raises(DataValidationError):
            registry.get("income", "99")

    def test_deregister_version_and_name(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(make_endpoint(version="1"))
        registry.register(make_endpoint(version="2"))
        registry.deregister("income", "1")
        assert len(registry) == 1
        registry.deregister("income")
        assert "income" not in registry

    def test_endpoints_listing_is_sorted_by_name(self, make_endpoint):
        registry = ModelRegistry()
        registry.register(make_endpoint(name="zeta"))
        registry.register(make_endpoint(name="alpha"))
        assert [e.name for e in registry.endpoints()] == ["alpha", "zeta"]


class TestSnapshotRestore:
    def test_round_trip_preserves_predictions_and_policy(
        self, make_endpoint, income_splits, tmp_path
    ):
        registry = ModelRegistry()
        registry.register(make_endpoint(threshold=0.07, micro_batch_size=250))
        registry.register(make_endpoint(name="audited", with_validator=True))
        registry.snapshot(tmp_path / "snap")

        restored = ModelRegistry.restore(tmp_path / "snap")
        assert len(restored) == 2
        original = registry.get("income")
        copy = restored.get("income")
        assert copy.policy == original.policy
        batch = income_splits.serving.head(200)
        assert copy.predictor.predict(batch) == pytest.approx(
            original.predictor.predict(batch)
        )
        audited = restored.get("audited")
        assert audited.validator is not None
        assert audited.validator.validate(batch) == registry.get(
            "audited"
        ).validator.validate(batch)

    def test_restore_requires_manifest(self, tmp_path):
        with pytest.raises(DataValidationError):
            ModelRegistry.restore(tmp_path)

    def test_crash_mid_snapshot_leaves_no_trace(
        self, make_endpoint, tmp_path, monkeypatch
    ):
        """A crash while writing artifacts must leave neither a torn
        target directory nor a staging directory behind."""
        from repro import persistence
        from repro.serving import registry as registry_module

        registry = ModelRegistry()
        registry.register(make_endpoint())

        def boom(model, path):
            raise OSError("disk full")

        monkeypatch.setattr(registry_module.persistence, "save_model", boom)
        target = tmp_path / "snap"
        with pytest.raises(OSError):
            registry.snapshot(target)
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []  # no .tmp-* staging leftovers

    def test_crash_mid_overwrite_preserves_previous_snapshot(
        self, make_endpoint, income_splits, tmp_path, monkeypatch
    ):
        """Re-snapshotting over an existing directory is atomic: a crash
        during staging leaves the previous snapshot fully restorable."""
        from repro.serving import registry as registry_module

        registry = ModelRegistry()
        registry.register(make_endpoint(threshold=0.07))
        target = tmp_path / "snap"
        registry.snapshot(target)

        registry.register(make_endpoint(name="second"))
        calls = {"n": 0}
        real_save = registry_module.persistence.save_model

        def flaky(model, path):
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("disk full")
            return real_save(model, path)

        monkeypatch.setattr(registry_module.persistence, "save_model", flaky)
        with pytest.raises(OSError):
            registry.snapshot(target)

        restored = ModelRegistry.restore(target)
        assert [e.key for e in restored.endpoints()] == ["income@1"]
        assert restored.get("income").policy.threshold == 0.07
        assert [p.name for p in tmp_path.iterdir()] == ["snap"]

    def test_overwrite_snapshot_replaces_contents(self, make_endpoint, tmp_path):
        registry = ModelRegistry()
        registry.register(make_endpoint())
        target = tmp_path / "snap"
        registry.snapshot(target)

        replacement = ModelRegistry()
        replacement.register(make_endpoint(name="other"))
        replacement.snapshot(target)

        restored = ModelRegistry.restore(target)
        assert [e.name for e in restored.endpoints()] == ["other"]
        assert [p.name for p in tmp_path.iterdir()] == ["snap"]


class TestEndpointFromArtifacts:
    def test_missing_predictor_raises(self, tmp_path):
        with pytest.raises(DataValidationError):
            endpoint_from_artifacts(tmp_path, name="income")

    def test_loads_train_style_directory(
        self, serving_predictor, income_splits, tmp_path
    ):
        from repro import persistence

        persistence.save_model(serving_predictor, tmp_path / "predictor.npz")
        endpoint = endpoint_from_artifacts(tmp_path, name="income", version="3")
        assert endpoint.key == "income@3"
        assert endpoint.validator is None
        batch = income_splits.serving.head(100)
        assert endpoint.predictor.predict(batch) == pytest.approx(
            serving_predictor.predict(batch)
        )
