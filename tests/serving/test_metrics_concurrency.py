"""Concurrency hammers for the metrics registry and span store.

The daemon drives these structures from many threads at once — worker
threads observing histograms, HTTP handler threads incrementing
counters, scrape requests rendering the whole registry mid-flight.
These tests assert the two invariants that matter:

* totals are exact — no lost increments, no double counts,
* a Prometheus scrape never tears — every histogram series renders
  from one consistent state (``_count`` equals the ``+Inf`` bucket,
  buckets stay monotone, ``sum`` matches the arithmetic of what was
  observed so far).
"""

from __future__ import annotations

import re
import threading

from repro.obs import Span, SpanStore
from repro.serving.metrics import MetricsRegistry

THREADS = 8
ITERATIONS = 500


def _hammer(worker, n_threads=THREADS):
    """Run ``worker(thread_index)`` in ``n_threads`` threads, barrier-aligned."""
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def run(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # surfaced below, not swallowed
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not any(thread.is_alive() for thread in threads)
    assert not errors, errors


class TestCounterExactness:
    def test_concurrent_increments_land_exactly(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "hammered", ("shard",))

        def worker(index):
            shard = str(index % 2)
            for _ in range(ITERATIONS):
                counter.inc(shard=shard)

        _hammer(worker)
        expected_per_shard = THREADS // 2 * ITERATIONS
        assert counter.value(shard="0") == expected_per_shard
        assert counter.value(shard="1") == expected_per_shard

    def test_concurrent_gauge_incdec_nets_to_zero(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "hammered")

        def worker(_index):
            for _ in range(ITERATIONS):
                gauge.inc()
                gauge.dec()

        _hammer(worker)
        assert gauge.value() == 0.0

    def test_concurrent_histogram_count_and_sum_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "work_seconds", "hammered", buckets=(0.5, 1.0)
        )

        def worker(_index):
            for _ in range(ITERATIONS):
                histogram.observe(0.25)

        _hammer(worker)
        total = THREADS * ITERATIONS
        assert histogram.count() == total
        assert histogram.sum() == total * 0.25


class TestScrapeNeverTears:
    def test_histogram_scrape_is_internally_consistent_under_writes(self):
        """Every scrape of a hammered histogram must be self-consistent.

        A torn read would show a ``+Inf`` bucket (== count) that
        disagrees with ``_count``, a non-monotone bucket ladder, or a
        ``sum`` that is not a multiple of the constant observed value.
        """
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", "hammered", ("endpoint",), buckets=(0.01, 0.1, 1.0)
        )
        stop = threading.Event()
        violations: list[str] = []

        def scrape_loop():
            pattern_bucket = re.compile(
                r'lat_seconds_bucket\{endpoint="a",le="([^"]+)"\} (\d+)'
            )
            pattern_count = re.compile(r'lat_seconds_count\{endpoint="a"\} (\d+)')
            pattern_sum = re.compile(r'lat_seconds_sum\{endpoint="a"\} (\S+)')
            while not stop.is_set():
                text = registry.to_prometheus()
                buckets = pattern_bucket.findall(text)
                counts = pattern_count.findall(text)
                sums = pattern_sum.findall(text)
                if not counts:
                    continue  # first observation not landed yet
                count = int(counts[0])
                ladder = [int(value) for _le, value in buckets]
                if ladder != sorted(ladder):
                    violations.append(f"non-monotone buckets: {buckets}")
                if ladder and ladder[-1] != count:
                    violations.append(
                        f"+Inf bucket {ladder[-1]} != count {count}"
                    )
                total = float(sums[0])
                if abs(total - count * 0.05) > 1e-6:
                    violations.append(f"sum {total} != {count} * 0.05")

        scrapers = [threading.Thread(target=scrape_loop) for _ in range(2)]
        for scraper in scrapers:
            scraper.start()
        try:
            _hammer(
                lambda _i: [
                    histogram.observe(0.05, endpoint="a")
                    for _ in range(ITERATIONS)
                ]
            )
        finally:
            stop.set()
            for scraper in scrapers:
                scraper.join(timeout=30.0)
        assert not violations, violations[:5]
        assert histogram.count(endpoint="a") == THREADS * ITERATIONS

    def test_registry_json_export_renders_during_writes(self):
        import json

        registry = MetricsRegistry()
        counter = registry.counter("events_total", "hammered")
        stop = threading.Event()
        failures: list[BaseException] = []

        def export_loop():
            try:
                while not stop.is_set():
                    json.loads(registry.to_json())
            except BaseException as exc:
                failures.append(exc)

        exporter = threading.Thread(target=export_loop)
        exporter.start()
        try:
            _hammer(lambda _i: [counter.inc() for _ in range(ITERATIONS)])
        finally:
            stop.set()
            exporter.join(timeout=30.0)
        assert not failures, failures
        assert counter.value() == THREADS * ITERATIONS


class TestSpanStoreConcurrency:
    @staticmethod
    def _span(name: str) -> Span:
        return Span(
            span_id=1, parent_id=None, name=name, started_at=0.0,
            wall_seconds=0.001, cpu_seconds=0.001, counters={},
        )

    def test_adds_are_never_lost_only_evicted(self):
        store = SpanStore(capacity=256)

        def worker(index):
            for i in range(ITERATIONS):
                store.add(self._span(f"t{index}.{i}"))

        _hammer(worker)
        total = THREADS * ITERATIONS
        assert len(store) + store.dropped == total
        assert len(store) == 256  # ring stayed at capacity

    def test_snapshot_during_adds_is_a_consistent_list(self):
        store = SpanStore(capacity=128)
        stop = threading.Event()
        failures: list[str] = []

        def snapshot_loop():
            while not stop.is_set():
                snapshot = store.spans()
                if len(snapshot) > 128:
                    failures.append(f"snapshot over capacity: {len(snapshot)}")
                if any(span is None for span in snapshot):
                    failures.append("snapshot contained a hole")

        reader = threading.Thread(target=snapshot_loop)
        reader.start()
        try:
            _hammer(
                lambda index: [
                    store.add(self._span(f"t{index}.{i}"))
                    for i in range(ITERATIONS)
                ]
            )
        finally:
            stop.set()
            reader.join(timeout=30.0)
        assert not failures, failures[:5]
        assert len(store) + store.dropped == THREADS * ITERATIONS
