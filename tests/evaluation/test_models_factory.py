"""Tests for the black box model factory."""

import pytest

from repro.evaluation.models import LINEAR_MODELS, MODEL_NAMES, NONLINEAR_MODELS, make_model
from repro.exceptions import DataValidationError
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.conv import ConvNetClassifier
from repro.ml.linear import SGDClassifier
from repro.ml.model_selection import GridSearchCV
from repro.ml.neural import MLPClassifier


class TestMakeModel:
    def test_model_families(self):
        assert isinstance(make_model("lr"), SGDClassifier)
        assert isinstance(make_model("dnn"), MLPClassifier)
        assert isinstance(make_model("xgb"), GradientBoostingClassifier)
        assert isinstance(make_model("conv"), ConvNetClassifier)

    def test_names_partition(self):
        assert set(LINEAR_MODELS) | set(NONLINEAR_MODELS) <= set(MODEL_NAMES)
        assert not set(LINEAR_MODELS) & set(NONLINEAR_MODELS)

    def test_unknown_raises(self):
        with pytest.raises(DataValidationError):
            make_model("svm")

    @pytest.mark.parametrize("name", ["lr", "dnn", "xgb"])
    def test_grid_search_wrapping(self, name):
        wrapped = make_model(name, grid_search=True)
        assert isinstance(wrapped, GridSearchCV)
        assert wrapped.param_grid  # non-empty grid

    def test_grid_searched_lr_trains(self, binary_matrix_problem):
        X_train, y_train, X_test, y_test = binary_matrix_problem
        search = make_model("lr", grid_search=True)
        search.param_grid = {"learning_rate": [0.1]}  # trim for test speed
        search.fit(X_train, y_train)
        assert (search.predict(X_test) == y_test).mean() > 0.8

    def test_random_state_threading(self):
        model = make_model("lr", random_state=7)
        assert model.random_state == 7
