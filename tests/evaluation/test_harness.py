"""Tests for the experiment harness (small-scale versions of each protocol)."""

import numpy as np
import pytest

from repro.errors.tabular_errors import MissingValues
from repro.evaluation.harness import (
    cloud_experiment,
    known_error_generators,
    prepare_splits,
    sample_size_errors,
    score_estimation_errors,
    train_black_box,
    unknown_error_generators,
    unknown_fraction_errors,
    validation_comparison,
)
from repro.exceptions import DataValidationError


class TestPrepareSplits:
    def test_partitions_are_disjoint_and_balanced(self, income_splits):
        total = (
            len(income_splits.train) + len(income_splits.test) + len(income_splits.serving)
        )
        # Balancing discards some rows; splits must not overlap in size terms.
        assert total <= 1500
        for labels in (income_splits.y_train, income_splits.y_serving):
            _, counts = np.unique(labels, return_counts=True)
            assert counts.min() / counts.max() > 0.7

    def test_image_dataset_splits(self):
        splits = prepare_splits("digits", n_rows=100, seed=0)
        assert splits.train.image_columns == ["image"]


class TestTrainBlackBox:
    @pytest.mark.parametrize("model_name", ["lr", "xgb", "dnn"])
    def test_models_reach_sane_accuracy(self, income_splits, model_name):
        blackbox = train_black_box(model_name, income_splits, seed=0)
        score = blackbox.score(income_splits.test, income_splits.y_test)
        assert score > 0.65

    def test_unknown_model_raises(self, income_splits):
        with pytest.raises(DataValidationError):
            train_black_box("svm", income_splits)


class TestGeneratorSelection:
    def test_tabular_known_errors(self):
        generators = known_error_generators("tabular")
        assert set(generators) == {"missing_values", "outliers", "swapped_values", "scaling"}

    def test_text_known_errors(self):
        assert set(known_error_generators("text")) == {"adversarial"}

    def test_image_known_errors(self):
        assert set(known_error_generators("image")) == {"image_noise", "image_rotation"}

    def test_unknown_task_raises(self):
        with pytest.raises(DataValidationError):
            known_error_generators("audio")

    def test_unknown_errors_are_the_paper_trio(self):
        assert set(unknown_error_generators()) == {"typos", "smearing", "sign_flip"}


class TestScoreEstimation:
    def test_small_run_produces_low_errors(self, income_blackbox, income_splits):
        generators = [MissingValues()]
        errors = score_estimation_errors(
            income_blackbox, income_splits, generators, generators,
            n_train_samples=30, n_eval_rounds=6, seed=0,
        )
        assert errors.shape == (6,)
        assert np.median(errors) < 0.08


class TestUnknownFraction:
    def test_runs_and_bounds(self, income_blackbox, income_splits):
        errors = unknown_fraction_errors(
            income_blackbox, income_splits, unknown_fraction=0.5,
            n_train_samples=25, n_eval_rounds=4, seed=0,
        )
        assert errors.shape == (4,)
        assert np.all(errors >= 0)

    def test_invalid_fraction_raises(self, income_blackbox, income_splits):
        with pytest.raises(DataValidationError):
            unknown_fraction_errors(income_blackbox, income_splits, unknown_fraction=1.5)


class TestSampleSize:
    def test_runs_with_small_dtest(self, income_blackbox, income_splits):
        errors = sample_size_errors(
            income_blackbox, income_splits, MissingValues(), test_size=60,
            n_train_samples=20, n_eval_rounds=4, seed=0,
        )
        assert errors.shape == (4,)

    def test_oversized_test_size_raises(self, income_blackbox, income_splits):
        with pytest.raises(DataValidationError):
            sample_size_errors(
                income_blackbox, income_splits, MissingValues(),
                test_size=10_000,
            )


class TestValidationComparison:
    def test_returns_f1_for_all_approaches(self, income_blackbox, income_splits):
        known = list(known_error_generators("tabular").values())
        scores = validation_comparison(
            income_blackbox, income_splits, known, known, threshold=0.05,
            n_train_samples=60, n_eval_rounds=12, seed=0,
        )
        table = scores.as_dict()
        assert set(table) == {"PPM", "BBSE", "BBSE-h", "REL"}
        for value in table.values():
            assert value is None or 0.0 <= value <= 1.0

    def test_rel_is_none_for_image_data(self):
        splits = prepare_splits("digits", n_rows=120, seed=0)
        blackbox = train_black_box("conv", splits, seed=0)
        generators = list(known_error_generators("image").values())
        scores = validation_comparison(
            blackbox, splits, generators, generators, threshold=0.05,
            n_train_samples=10, n_eval_rounds=4, seed=0,
        )
        assert scores.rel is None


class TestCloudExperiment:
    def test_runs_against_opaque_service(self, income_splits):
        from repro.automl.cloud import CloudModelService

        service = CloudModelService(random_state=0)
        model_id = service.train(income_splits.train, income_splits.y_train)
        result = cloud_experiment(
            service.as_blackbox(model_id), income_splits,
            n_train_samples=25, n_eval_rounds=5, seed=0,
        )
        assert result.predicted.shape == (5,)
        assert 0.0 <= result.mae <= 1.0
