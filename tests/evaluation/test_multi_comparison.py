"""Tests for the shared-corpus multi-threshold validation comparison."""

import numpy as np
import pytest

from repro.errors.tabular_errors import MissingValues, Scaling
from repro.evaluation.harness import (
    known_error_generators,
    validation_comparison,
    validation_comparison_multi,
)


class TestValidationComparisonMulti:
    @pytest.fixture(scope="class")
    def results(self, income_blackbox, income_splits):
        generators = list(known_error_generators("tabular").values())
        return validation_comparison_multi(
            income_blackbox, income_splits, generators, generators,
            thresholds=(0.03, 0.05, 0.10),
            n_train_samples=60, n_eval_rounds=10, seed=0,
        )

    def test_one_result_per_threshold(self, results):
        assert set(results) == {0.03, 0.05, 0.10}

    def test_baseline_scores_differ_only_through_truth_labels(self, results):
        # The baselines do not depend on the threshold except through the
        # ground-truth labeling, so their alarms are shared; F1 values may
        # differ across thresholds but are all within [0, 1].
        for scores in results.values():
            for value in (scores.ppm, scores.bbse, scores.bbse_h, scores.rel):
                assert value is None or 0.0 <= value <= 1.0

    def test_single_threshold_wrapper_matches_multi(self, income_blackbox, income_splits):
        generators = [MissingValues(), Scaling()]
        single = validation_comparison(
            income_blackbox, income_splits, generators, generators,
            threshold=0.05, n_train_samples=40, n_eval_rounds=8, seed=3,
        )
        multi = validation_comparison_multi(
            income_blackbox, income_splits, generators, generators,
            thresholds=(0.05,), n_train_samples=40, n_eval_rounds=8, seed=3,
        )[0.05]
        assert single.ppm == multi.ppm
        assert single.bbse == multi.bbse
        assert single.bbse_h == multi.bbse_h
        assert single.rel == multi.rel
