"""Tests for result formatting."""

import numpy as np
import pytest

from repro.evaluation.reporting import DistributionSummary, format_f1_cell, format_table
from repro.exceptions import DataValidationError


class TestDistributionSummary:
    def test_summary_of_known_sample(self):
        values = np.arange(101, dtype=float)
        summary = DistributionSummary.of(values)
        assert summary.median == 50.0
        assert summary.mean == 50.0
        assert summary.p5 == 5.0
        assert summary.p95 == 95.0

    def test_row_formatting(self):
        summary = DistributionSummary.of(np.array([0.01, 0.02, 0.03]))
        row = summary.row("income (lr)")
        assert row.startswith("income (lr)")
        assert "median=0.0200" in row

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            DistributionSummary.of(np.array([]))


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["name", "f1"], [["ppm", "0.9"], ["bbse", "0.85"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1].replace(" ", "")) == {"-"}

    def test_uneven_row_raises(self):
        with pytest.raises(DataValidationError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows_ok(self):
        assert "a" in format_table(["a"], [])


class TestFormatF1Cell:
    def test_number_formatting(self):
        assert format_f1_cell(0.87654) == "0.877"

    def test_none_is_na(self):
        assert format_f1_cell(None) == "n/a"
