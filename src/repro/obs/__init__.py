"""Observability: structured tracing and profiling for the pipeline.

Zero-dependency spans over the four hot paths (corruption sampling,
forest/boosting fits, grid search, serving validation), with a no-op
default whose cost is one cached-singleton method call. See
:mod:`repro.obs.trace` for the span model, :mod:`repro.obs.report` for
the ``repro trace`` span-tree report and JSON export, and
:mod:`repro.obs.bridge` for the Prometheus-compatible metrics bridge.
"""

from repro.obs.report import (
    SpanNode,
    aggregate_spans,
    check_well_nested,
    format_span_tree,
    span_percentiles,
    span_tree,
)
from repro.obs.trace import (
    NOOP_TRACER,
    NoopTracer,
    Span,
    SpanStore,
    Tracer,
    current_tracer,
    set_tracer,
    spans_from_json,
    spans_to_json,
    use_tracer,
)

_BRIDGE_EXPORTS = ("SPAN_BUCKETS", "bridge_spans")


def __getattr__(name: str):
    # The bridge imports repro.serving.metrics, whose package init reaches
    # back into repro.ml (and from there into this package); loading it
    # lazily keeps the instrumented hot-path modules importable first.
    if name in _BRIDGE_EXPORTS:
        from repro.obs import bridge

        return getattr(bridge, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "NOOP_TRACER",
    "NoopTracer",
    "SPAN_BUCKETS",
    "Span",
    "SpanNode",
    "SpanStore",
    "Tracer",
    "aggregate_spans",
    "bridge_spans",
    "check_well_nested",
    "current_tracer",
    "format_span_tree",
    "set_tracer",
    "span_percentiles",
    "span_tree",
    "spans_from_json",
    "spans_to_json",
    "use_tracer",
]
