"""Bridge span telemetry into the serving metrics registry.

The serving layer already exports a Prometheus-compatible
:class:`~repro.serving.metrics.MetricsRegistry`; this module folds span
data into it so traced hot-path timings ride the same scrape endpoint as
request counters — one observability surface, two signal sources::

    registry = MetricsRegistry()
    bridge_spans(tracer.store.spans(), registry)
    print(registry.to_prometheus())

Per span, the bridge observes one histogram sample
(``trace_span_wall_seconds{span="forest.fit"}``) and increments one
counter (``trace_spans_total{span="forest.fit", outcome="ok"}``); CPU
time accumulates in ``trace_span_cpu_seconds_total``.
"""

from __future__ import annotations

from repro.obs.trace import Span
from repro.serving.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry

#: Span durations range from sub-millisecond serving scores to multi-second
#: fits, so the bridge reuses the serving latency buckets by default.
SPAN_BUCKETS = DEFAULT_LATENCY_BUCKETS


def bridge_spans(
    spans: list[Span],
    registry: MetricsRegistry,
    buckets: tuple[float, ...] = SPAN_BUCKETS,
) -> MetricsRegistry:
    """Fold ``spans`` into ``registry``; returns the registry for chaining.

    Idempotent per span list, not per span: calling twice with the same
    spans double-counts (the bridge has no ids), so callers bridge each
    store snapshot exactly once — e.g. after a replay, or on a scrape
    interval paired with ``store.clear()``.
    """
    wall = registry.histogram(
        "trace_span_wall_seconds",
        "Wall-clock duration of traced spans",
        ("span",),
        buckets=buckets,
    )
    cpu_total = registry.counter(
        "trace_span_cpu_seconds_total",
        "Cumulative CPU time of traced spans",
        ("span",),
    )
    outcomes = registry.counter(
        "trace_spans_total",
        "Finished traced spans by outcome",
        ("span", "outcome"),
    )
    for span in spans:
        wall.observe(span.wall_seconds, span=span.name)
        cpu_total.inc(max(0.0, span.cpu_seconds), span=span.name)
        outcomes.inc(span=span.name, outcome=span.outcome)
    return registry
