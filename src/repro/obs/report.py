"""Span-tree reporting: turn collected spans into something readable.

Three consumers share these helpers:

* ``repro trace <cmd>`` prints :func:`format_span_tree` — an indented
  tree with cumulative wall time, *self* time (cumulative minus direct
  children) and CPU time per span,
* the CI trace-smoke step loads a JSON export and asserts
  :func:`check_well_nested` finds no violations,
* :func:`aggregate_spans` feeds the metrics bridge
  (:mod:`repro.obs.bridge`) per-span-name totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import DataValidationError
from repro.obs.trace import Span

#: Tolerance when comparing child/parent time windows: wall-clock reads
#: for the child and parent happen a few instructions apart.
_NESTING_SLACK_SECONDS = 0.005


@dataclass
class SpanNode:
    """One span plus its resolved children, ordered by start time."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def self_seconds(self) -> float:
        """Wall time not accounted for by direct children."""
        return max(
            0.0,
            self.span.wall_seconds
            - sum(child.span.wall_seconds for child in self.children),
        )


def span_tree(spans: list[Span]) -> list[SpanNode]:
    """Resolve parent ids into a forest of :class:`SpanNode` roots.

    Spans whose parent is missing from the list (e.g. trimmed by a
    bounded store) become roots, so a partial export still renders.
    """
    nodes = {span.span_id: SpanNode(span) for span in spans}
    if len(nodes) != len(spans):
        raise DataValidationError("span ids must be unique within a report")
    roots: list[SpanNode] = []
    for span in spans:
        node = nodes[span.span_id]
        parent = None if span.parent_id is None else nodes.get(span.parent_id)
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span.started_at)
    roots.sort(key=lambda node: node.span.started_at)
    return roots


def check_well_nested(spans: list[Span]) -> list[str]:
    """Violations of the span-tree invariants (empty list = well nested).

    Checks that every child starts no earlier and ends no later than its
    parent (within clock-read slack), lives on the parent's thread, and
    that no span's parent chain loops.
    """
    by_id = {span.span_id: span for span in spans}
    problems: list[str] = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in by_id:
            continue
        parent = by_id[span.parent_id]
        if span.thread_id != parent.thread_id:
            problems.append(
                f"span {span.span_id} ({span.name}) crosses threads from "
                f"parent {parent.span_id} ({parent.name})"
            )
        if span.started_at < parent.started_at - _NESTING_SLACK_SECONDS:
            problems.append(
                f"span {span.span_id} ({span.name}) starts before "
                f"parent {parent.span_id} ({parent.name})"
            )
        if span.ended_at > parent.ended_at + _NESTING_SLACK_SECONDS:
            problems.append(
                f"span {span.span_id} ({span.name}) ends after "
                f"parent {parent.span_id} ({parent.name})"
            )
        # Parent-chain loop detection (a corrupt export, never a Tracer).
        seen = {span.span_id}
        cursor = span
        while cursor.parent_id is not None and cursor.parent_id in by_id:
            if cursor.parent_id in seen:
                problems.append(f"span {span.span_id} ({span.name}) has a parent cycle")
                break
            seen.add(cursor.parent_id)
            cursor = by_id[cursor.parent_id]
    return problems


def aggregate_spans(spans: list[Span]) -> dict[str, dict]:
    """Per-span-name totals: count, wall/CPU sums, max wall, error count."""
    totals: dict[str, dict] = {}
    for span in spans:
        entry = totals.setdefault(
            span.name,
            {"count": 0, "wall_seconds": 0.0, "cpu_seconds": 0.0,
             "max_wall_seconds": 0.0, "errors": 0},
        )
        entry["count"] += 1
        entry["wall_seconds"] += span.wall_seconds
        entry["cpu_seconds"] += span.cpu_seconds
        entry["max_wall_seconds"] = max(entry["max_wall_seconds"], span.wall_seconds)
        if span.outcome == "error":
            entry["errors"] += 1
    return totals


def span_percentiles(
    spans: list[Span],
    name: str,
    quantiles: tuple[float, ...] = (0.5, 0.99),
) -> dict[str, float] | None:
    """Wall-time quantiles over every span named ``name``.

    Returns ``{"p50": ..., "p99": ..., "count": ...}`` (seconds) using
    linear interpolation over the sorted sample, or ``None`` when no
    span matches — the daemon throughput bench derives its latency
    figures from this.
    """
    walls = sorted(span.wall_seconds for span in spans if span.name == name)
    if not walls:
        return None
    result: dict[str, float] = {"count": len(walls)}
    for quantile in quantiles:
        if not 0.0 <= quantile <= 1.0:
            raise DataValidationError(
                f"quantile must be in [0, 1], got {quantile}"
            )
        position = quantile * (len(walls) - 1)
        lower = int(position)
        upper = min(lower + 1, len(walls) - 1)
        fraction = position - lower
        value = walls[lower] * (1.0 - fraction) + walls[upper] * fraction
        result[f"p{quantile * 100:g}"] = value
    return result


def _format_counters(counters: dict) -> str:
    if not counters:
        return ""
    rendered = " ".join(f"{key}={value}" for key, value in sorted(counters.items()))
    return f"  [{rendered}]"


def _format_node(node: SpanNode, depth: int, lines: list[str]) -> None:
    span = node.span
    marker = "" if span.outcome == "ok" else "  !ERROR"
    lines.append(
        f"{'  ' * depth}{span.name:<{max(1, 36 - 2 * depth)}} "
        f"wall {span.wall_seconds * 1e3:>9.2f}ms  "
        f"self {node.self_seconds * 1e3:>9.2f}ms  "
        f"cpu {span.cpu_seconds * 1e3:>9.2f}ms"
        f"{_format_counters(span.counters)}{marker}"
    )
    for child in node.children:
        _format_node(child, depth + 1, lines)


def format_span_tree(spans: list[Span]) -> str:
    """The ``repro trace`` report: indented tree plus per-name totals."""
    if not spans:
        return "trace: no spans recorded"
    lines = [f"trace: {len(spans)} span(s)"]
    for root in span_tree(spans):
        _format_node(root, 0, lines)
    lines.append("")
    lines.append("by span name (cumulative):")
    totals = aggregate_spans(spans)
    width = max(len(name) for name in totals)
    for name, entry in sorted(
        totals.items(), key=lambda item: -item[1]["wall_seconds"]
    ):
        errors = f"  errors {entry['errors']}" if entry["errors"] else ""
        lines.append(
            f"  {name:<{width}}  count {entry['count']:>4}  "
            f"wall {entry['wall_seconds'] * 1e3:>9.2f}ms  "
            f"cpu {entry['cpu_seconds'] * 1e3:>9.2f}ms  "
            f"max {entry['max_wall_seconds'] * 1e3:>9.2f}ms{errors}"
        )
    return "\n".join(lines)
