"""Structured tracing: nested spans over the validation pipeline.

The pipeline that audits a black box model should not be a black box
itself. A :class:`Tracer` produces nested :class:`Span` records — name,
wall/CPU time, counters (rows, trees, corruptions, ...), parent id and
outcome — through a context-manager API::

    tracer = Tracer()
    with use_tracer(tracer):
        with current_tracer().span("forest.fit", trees=50, rows=1200):
            ...

Spans land in a thread-safe in-memory :class:`SpanStore`; the report
helpers in :mod:`repro.obs.report` turn a store into a span-tree report
or a JSON export, and :mod:`repro.obs.bridge` folds span aggregates into
a :class:`~repro.serving.metrics.MetricsRegistry`.

Tracing is **off by default**: the module-level current tracer starts as
:data:`NOOP_TRACER`, whose ``span()`` hands back one shared do-nothing
context manager — the disabled hot path costs a method call returning a
cached singleton, no allocation, no locking. Instrumented code never
checks a flag; it always writes ``with current_tracer().span(...)``.

Nesting is tracked per thread (a thread-local span stack), so spans
created inside thread-backend parallel workers become well-nested roots
of their own thread rather than corrupting the caller's stack. Spans
created inside *process*-backend workers live in another interpreter and
are not collected — instrumentation therefore sits at orchestration
level (the fit/sample/score calls), not inside per-task closures.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.exceptions import DataValidationError

#: Span outcomes: "ok" on clean exit, "error" when the block raised.
OUTCOMES = ("ok", "error")


def _coerce_counter(value):
    """Counters are JSON scalars: numbers stay numeric, the rest stringify."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    try:  # numpy scalars
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(value)


@dataclass(frozen=True)
class Span:
    """One finished traced operation."""

    span_id: int
    parent_id: int | None
    name: str
    started_at: float
    wall_seconds: float
    cpu_seconds: float
    counters: dict
    outcome: str = "ok"
    error: str | None = None
    thread_id: int = 0

    def __post_init__(self):
        if self.outcome not in OUTCOMES:
            raise DataValidationError(
                f"outcome must be one of {OUTCOMES}, got {self.outcome!r}"
            )

    @property
    def ended_at(self) -> float:
        return self.started_at + self.wall_seconds

    def to_dict(self) -> dict:
        payload = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_at": self.started_at,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "counters": dict(self.counters),
            "outcome": self.outcome,
            "thread_id": self.thread_id,
        }
        if self.error is not None:
            payload["error"] = self.error
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        missing = {"span_id", "name", "started_at", "wall_seconds"} - set(payload)
        if missing:
            raise DataValidationError(f"span record is missing {sorted(missing)}")
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(
                None if payload.get("parent_id") is None else int(payload["parent_id"])
            ),
            name=str(payload["name"]),
            started_at=float(payload["started_at"]),
            wall_seconds=float(payload["wall_seconds"]),
            cpu_seconds=float(payload.get("cpu_seconds", 0.0)),
            counters=dict(payload.get("counters", {})),
            outcome=str(payload.get("outcome", "ok")),
            error=payload.get("error"),
            thread_id=int(payload.get("thread_id", 0)),
        )


class SpanStore:
    """Thread-safe append-only buffer of finished spans.

    ``capacity`` bounds memory for long-running services: once full, the
    oldest spans are discarded (the store is an inspection window, not a
    durable log).
    """

    def __init__(self, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise DataValidationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._dropped = 0

    def add(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            if self._capacity is not None and len(self._spans) > self._capacity:
                excess = len(self._spans) - self._capacity
                del self._spans[:excess]
                self._dropped += excess

    def spans(self) -> list[Span]:
        """Snapshot of the collected spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    @property
    def dropped(self) -> int:
        """Spans discarded to honor the capacity bound."""
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class _ActiveSpan:
    """Context manager measuring one span; created by :meth:`Tracer.span`."""

    __slots__ = (
        "_tracer", "name", "counters", "_span_id", "_parent_id",
        "_started_at", "_wall_start", "_cpu_start",
    )

    def __init__(self, tracer: "Tracer", name: str, counters: dict):
        self._tracer = tracer
        self.name = name
        self.counters = counters

    def add(self, **counters) -> "_ActiveSpan":
        """Attach or update counters while the span is running."""
        for key, value in counters.items():
            self.counters[key] = _coerce_counter(value)
        return self

    def __enter__(self) -> "_ActiveSpan":
        stack = self._tracer._stack()
        self._parent_id = stack[-1] if stack else None
        self._span_id = next(self._tracer._ids)
        stack.append(self._span_id)
        self._started_at = self._tracer.wall_clock()
        self._cpu_start = time.thread_time()
        self._wall_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, _tb) -> bool:
        wall = time.perf_counter() - self._wall_start
        cpu = time.thread_time() - self._cpu_start
        stack = self._tracer._stack()
        if stack and stack[-1] == self._span_id:
            stack.pop()
        self._tracer.store.add(
            Span(
                span_id=self._span_id,
                parent_id=self._parent_id,
                name=self.name,
                started_at=self._started_at,
                wall_seconds=wall,
                cpu_seconds=cpu,
                counters=self.counters,
                outcome="error" if exc_type is not None else "ok",
                error=None if exc is None else f"{exc_type.__name__}: {exc}",
                thread_id=threading.get_ident(),
            )
        )
        return False


class Tracer:
    """Produces nested spans into a :class:`SpanStore`.

    One tracer serves all threads: span ids are globally unique within
    the tracer and the nesting stack is thread-local, so concurrently
    traced work on different threads yields independent span trees.

    ``wall_clock`` stamps ``started_at`` on every span (wall time, for
    correlating spans with external logs); durations always come from
    ``time.perf_counter``, so a jumping wall clock can mislabel a span's
    start but never corrupt its measured length. Inject a fake to make
    span timestamps deterministic under test.
    """

    enabled = True

    def __init__(
        self,
        store: SpanStore | None = None,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.store = store if store is not None else SpanStore()
        self.wall_clock = wall_clock
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **counters) -> _ActiveSpan:
        """A context manager that records one span on exit."""
        return _ActiveSpan(
            self, name, {k: _coerce_counter(v) for k, v in counters.items()}
        )


class _NoopSpan:
    """Shared do-nothing span; the entire disabled-tracing hot path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, **_counters) -> "_NoopSpan":
        return self


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """Default tracer: every ``span()`` call returns one cached no-op."""

    enabled = False

    def span(self, name: str, **counters) -> _NoopSpan:  # noqa: ARG002
        return _NOOP_SPAN


NOOP_TRACER = NoopTracer()
_current: Tracer | NoopTracer = NOOP_TRACER
_current_lock = threading.Lock()


def current_tracer() -> Tracer | NoopTracer:
    """The process-wide tracer instrumented code writes spans to."""
    return _current


def set_tracer(tracer: Tracer | NoopTracer | None) -> Tracer | NoopTracer:
    """Install ``tracer`` (``None`` restores the no-op); returns the old one."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer if tracer is not None else NOOP_TRACER
    return previous


class use_tracer:
    """Context manager installing a tracer for the duration of a block::

        with use_tracer(Tracer()) as tracer:
            run_pipeline()
        report = format_span_tree(tracer.store.spans())
    """

    def __init__(self, tracer: Tracer | NoopTracer):
        self.tracer = tracer
        self._previous: Tracer | NoopTracer | None = None

    def __enter__(self) -> Tracer | NoopTracer:
        self._previous = set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *_exc) -> bool:
        set_tracer(self._previous)
        return False


def spans_to_json(spans: Iterator[Span] | list[Span], indent: int | None = None) -> str:
    """Serialize spans (or a store snapshot) to a JSON document."""
    records = [span.to_dict() for span in spans]
    return json.dumps({"schema_version": 1, "spans": records}, indent=indent)


def spans_from_json(text: str) -> list[Span]:
    """Inverse of :func:`spans_to_json`."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise DataValidationError(f"invalid span JSON: {error}") from error
    if not isinstance(payload, dict) or "spans" not in payload:
        raise DataValidationError("span JSON must be an object with a 'spans' list")
    records = payload["spans"]
    if not isinstance(records, list):
        raise DataValidationError("'spans' must be a list")
    return [Span.from_dict(record) for record in records]
