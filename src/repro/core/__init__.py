"""The paper's core contribution: performance prediction and validation
for black box classifiers on unseen, unlabeled serving data."""

from repro.core.alarms import ValidationReport, check_serving_batch
from repro.core.blackbox import BlackBoxModel, SupportsPredictProba
from repro.core.corruption import CorruptionSample, CorruptionSampler
from repro.core.featurize import (
    ks_output_features,
    predicted_class_fractions,
    prediction_statistics,
)
from repro.core.predictor import PerformancePredictor, default_regressor
from repro.core.validator import PerformanceValidator, default_validator_model

__all__ = [
    "BlackBoxModel",
    "CorruptionSample",
    "CorruptionSampler",
    "PerformancePredictor",
    "PerformanceValidator",
    "SupportsPredictProba",
    "ValidationReport",
    "check_serving_batch",
    "default_regressor",
    "default_validator_model",
    "ks_output_features",
    "predicted_class_fractions",
    "prediction_statistics",
]
