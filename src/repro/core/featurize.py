"""Featurization of black box model outputs.

``prediction_statistics`` is the function of the same name in the paper's
Algorithms 1 & 2: a univariate non-parametric summary (class-wise
percentiles) of the model's output distribution. The validator augments it
with Kolmogorov-Smirnov statistics comparing serving-time outputs against
the retained test-time outputs (following Lipton et al.'s BBSE signal).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.stats.descriptive import matrix_moments, matrix_percentiles
from repro.stats.tests import ks_two_sample, ks_two_sample_matrix

FEATURIZERS = ("percentiles", "moments")


def prediction_statistics(
    proba: np.ndarray, step: int = 5, featurizer: str = "percentiles"
) -> np.ndarray:
    """Summarize an (n, m) probability matrix into a fixed-width vector.

    The default collects the 0th, 5th, ..., 100th percentile of each class
    column (the paper's featurization); ``featurizer="moments"`` is the
    coarser ablation (mean / std / min / max per class).
    """
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2:
        raise DataValidationError(f"expected (n, m) probabilities, got {proba.shape}")
    if featurizer == "percentiles":
        return matrix_percentiles(proba, step=step)
    if featurizer == "moments":
        return matrix_moments(proba)
    raise DataValidationError(f"unknown featurizer {featurizer!r}; have {FEATURIZERS}")


def ks_output_features(proba: np.ndarray, proba_reference: np.ndarray) -> np.ndarray:
    """Per-class KS statistic and p-value between two output distributions.

    Compares the model's class-probability columns on (potentially
    corrupted) serving data against its columns on the clean held-out test
    data — the hypothesis-test features the performance validator adds on
    top of the percentiles.
    """
    proba = np.asarray(proba, dtype=np.float64)
    proba_reference = np.asarray(proba_reference, dtype=np.float64)
    if proba.ndim != 2 or proba_reference.ndim != 2:
        raise DataValidationError("both probability matrices must be 2-d")
    if proba.shape[1] != proba_reference.shape[1]:
        raise DataValidationError(
            f"class count mismatch: {proba.shape[1]} vs {proba_reference.shape[1]}"
        )
    if proba.shape[1] == 0:
        return np.asarray([])
    if np.isnan(proba).any() or np.isnan(proba_reference).any():
        # NaN drops shrink per-column sample sizes independently, which
        # the shared-merge vectorization cannot express; keep the
        # per-column tests for those matrices.
        features = []
        for column in range(proba.shape[1]):
            result = ks_two_sample(proba[:, column], proba_reference[:, column])
            features.append(result.statistic)
            features.append(result.p_value)
        return np.asarray(features)
    # One vectorized merge across all class columns; bit-identical to the
    # per-column loop (see repro.stats.tests.ks_matrix_from_sorted).
    return ks_two_sample_matrix(proba, proba_reference).ravel()


def predicted_class_fractions(proba: np.ndarray) -> np.ndarray:
    """Fraction of rows argmax-assigned to each class (BBSEh-style signal)."""
    proba = np.asarray(proba, dtype=np.float64)
    if proba.ndim != 2 or proba.shape[0] == 0:
        raise DataValidationError(f"expected a non-empty (n, m) matrix, got {proba.shape}")
    assignments = np.argmax(proba, axis=1)
    counts = np.bincount(assignments, minlength=proba.shape[1])
    return counts / proba.shape[0]
