"""The performance predictor (paper Algorithms 1 & 2).

Learns a regression model ``h`` mapping statistics of the black box
model's outputs to the score the black box achieves, by training on
synthetically corrupted copies of held-out labeled data. At serving time,
``h`` estimates the score on unseen *unlabeled* data from the same output
statistics.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.core.corruption import CorruptionSample, CorruptionSampler
from repro.core.featurize import prediction_statistics
from repro.errors.base import ErrorGen
from repro.exceptions import DataValidationError, NotFittedError
from repro.ml.base import Estimator, as_rng
from repro.ml.forest import RandomForestRegressor
from repro.ml.model_selection import GridSearchCV
from repro.obs import current_tracer
from repro.tabular.frame import DataFrame
from repro.uncertainty.conformal import (
    INTERVAL_METHODS,
    conformal_quantile,
    normal_quantile,
)
from repro.uncertainty.cqr import MIN_CALIBRATION_SAMPLES, CQRIntervalModel

DEFAULT_FOREST_GRID = (20, 50, 100)


def default_regressor(
    random_state: int | None = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
    max_bins: int = 256,
) -> GridSearchCV:
    """The paper's choice of ``h``: a random forest regressor whose number
    of trees is grid-searched with five-fold cross-validation.

    ``n_jobs`` parallelizes the candidate×fold grid (the inner forests
    stay serial to avoid nested pools). ``tree_method="hist"`` switches
    every candidate forest to the histogram tree engine, which removes
    the per-node feature sorts — the speedup is real even at
    ``n_jobs=1`` (see :mod:`repro.ml.binning`)."""
    return GridSearchCV(
        RandomForestRegressor(
            max_features="third",
            random_state=random_state,
            tree_method=tree_method,
            max_bins=max_bins,
        ),
        param_grid={"n_trees": list(DEFAULT_FOREST_GRID)},
        n_splits=5,
        random_state=random_state,
        n_jobs=n_jobs,
        backend=backend,
    )


class PerformancePredictor:
    """Estimates a black box classifier's score on unlabeled serving data.

    Parameters
    ----------
    blackbox:
        The deployed model, wrapped as a :class:`BlackBoxModel`.
    error_generators:
        The user's programmatic specification of expected error types.
    metric:
        Score to predict: ``"accuracy"`` (default) or ``"roc_auc"``.
    n_samples:
        Number of corrupted copies of the held-out data used to train ``h``.
    mode:
        Corruption protocol: ``"single"`` (one error type per copy) or
        ``"mixture"`` (random subsets of error types per copy).
    featurizer / percentile_step:
        Output featurization; the paper uses class-wise percentiles at
        step 5.
    regressor:
        Estimator used for ``h``; defaults to the paper's CV-tuned random
        forest. Anything with fit/predict over matrices works (ablations
        pass gradient boosting or a linear model here).
    n_jobs / backend:
        Parallelism for the corruption episodes and the default
        regressor's grid search (see :mod:`repro.parallel`). The fitted
        state is bit-identical for every ``n_jobs`` and backend.
    tree_method / max_bins:
        Split-finding engine for the default regressor's forests
        (``"exact"`` or ``"hist"``; see :mod:`repro.ml.binning`).
        Ignored when an explicit ``regressor`` is passed.
    """

    def __init__(
        self,
        blackbox: BlackBoxModel,
        error_generators: Sequence[ErrorGen],
        metric: str = "accuracy",
        n_samples: int = 150,
        mode: str = "single",
        featurizer: str = "percentiles",
        percentile_step: int = 5,
        regressor: Estimator | None = None,
        include_clean: bool = True,
        fire_prob: float = 0.6,
        random_state: int | None = 0,
        n_jobs: int | None = 1,
        backend: str = "auto",
        tree_method: str = "exact",
        max_bins: int = 256,
    ):
        self.blackbox = blackbox
        self.error_generators = list(error_generators)
        self.metric = metric
        self.n_samples = n_samples
        self.mode = mode
        self.featurizer = featurizer
        self.percentile_step = percentile_step
        self.regressor = regressor
        self.include_clean = include_clean
        self.fire_prob = fire_prob
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.backend = backend
        self.tree_method = tree_method
        self.max_bins = max_bins

    # ------------------------------------------------------------------ #
    # Algorithm 1: training
    # ------------------------------------------------------------------ #

    def _featurize(self, proba: np.ndarray) -> np.ndarray:
        return prediction_statistics(
            proba, step=self.percentile_step, featurizer=self.featurizer
        )

    def fit(
        self,
        test_frame: DataFrame,
        test_labels: np.ndarray,
        samples: list[CorruptionSample] | None = None,
    ) -> "PerformancePredictor":
        """Train ``h`` on corrupted copies of the held-out test data.

        ``samples`` allows callers that already ran a
        :class:`CorruptionSampler` (e.g. to share corruptions between a
        predictor and a validator) to skip regeneration.
        """
        if len(test_frame) != len(test_labels):
            raise DataValidationError("test frame and labels must be aligned")
        rng = as_rng(self.random_state)
        tracer = current_tracer()
        with tracer.span(
            "predictor.fit", rows=len(test_frame), corruptions=self.n_samples
        ):
            self.test_score_ = self.blackbox.score(test_frame, test_labels, self.metric)
            # Size of the batches the calibration residuals were measured
            # on: the sampling-noise inflation for small serving batches
            # subtracts this scale's own variance.
            self.calibration_rows_ = len(test_frame)
            # Retain the clean test-time outputs: degraded-mode serving
            # fits its BBSE/BBSEh fallback detectors against them.
            self.reference_proba_ = self.blackbox.predict_proba(test_frame)
            if samples is None:
                sampler = CorruptionSampler(
                    self.blackbox,
                    self.error_generators,
                    metric=self.metric,
                    mode=self.mode,
                    include_clean=self.include_clean,
                    fire_prob=self.fire_prob,
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                )
                samples = sampler.sample(test_frame, test_labels, self.n_samples, rng)
            with tracer.span("predictor.featurize", corruptions=len(samples)):
                self.meta_features_ = np.stack(
                    [self._featurize(s.proba) for s in samples]
                )
            self.meta_scores_ = np.asarray([s.score for s in samples])
            regressor = (
                self.regressor
                if self.regressor is not None
                else default_regressor(
                    self.random_state,
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                    tree_method=self.tree_method,
                    max_bins=self.max_bins,
                )
            )
            self.regressor_ = regressor
            with tracer.span("predictor.calibrate"):
                self._calibrate(rng)
            self.regressor_.fit(self.meta_features_, self.meta_scores_)  # type: ignore[attr-defined]
        return self

    def _calibrate(self, rng: np.random.Generator) -> None:
        """Cross-conformal calibration of the estimate's error quantiles.

        The corrupted meta-examples are split into two folds; a clone of
        the regressor fitted on each fold scores the other, so *every*
        meta-example contributes an out-of-fold absolute residual (the
        cross-conformal scheme of Vovk). Compared to a single small
        holdout, the residual quantiles behind :meth:`predict_interval`
        are far less sensitive to how the split falls. The final
        regressor is then refitted on everything.
        """
        from repro.ml.base import clone as clone_estimator

        n = len(self.meta_scores_)
        if n < MIN_CALIBRATION_SAMPLES:
            self.calibration_residuals_ = None
            return
        order = rng.permutation(n)
        residuals = np.empty(n)
        for fold in np.array_split(order, 2):
            mask = np.ones(n, dtype=bool)
            mask[fold] = False
            proxy = clone_estimator(self.regressor_)
            proxy.fit(self.meta_features_[mask], self.meta_scores_[mask])  # type: ignore[attr-defined]
            predictions = np.clip(proxy.predict(self.meta_features_[fold]), 0.0, 1.0)  # type: ignore[attr-defined]
            residuals[fold] = np.abs(predictions - self.meta_scores_[fold])
        self.calibration_residuals_ = residuals

    # ------------------------------------------------------------------ #
    # Algorithm 2: serving-time estimation
    # ------------------------------------------------------------------ #

    def predict(self, serving_frame: DataFrame) -> float:
        """Estimated score of the black box on an unlabeled serving batch."""
        if not hasattr(self, "regressor_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        proba = self.blackbox.predict_proba(serving_frame)
        return self.predict_from_proba(proba)

    def predict_from_proba(
        self, proba: np.ndarray, features: np.ndarray | None = None
    ) -> float:
        """Estimated score from an already-computed probability matrix.

        ``features`` lets a fused serving kernel pass the featurization it
        already derived from the shared column sort (see
        :class:`repro.perf.kernels.FusedScorer`); it must equal
        ``self._featurize(proba)``.
        """
        if not hasattr(self, "regressor_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        with current_tracer().span("predictor.estimate", rows=proba.shape[0]):
            if features is None:
                features = self._featurize(proba)
            features = np.asarray(features).reshape(1, -1)
            estimate = float(self.regressor_.predict(features)[0])  # type: ignore[attr-defined]
            # Scores live in [0, 1]; keep the regressor honest at the borders.
            return float(np.clip(estimate, 0.0, 1.0))

    def predict_interval(
        self, serving_frame: DataFrame, coverage: float = 0.8, method: str = "conformal"
    ) -> tuple[float, float, float]:
        """(lower, estimate, upper) calibrated interval for the score.

        ``method="conformal"`` (default) is the fixed-width split-conformal
        interval: the width is the finite-sample conformal ``coverage``
        quantile of the calibration residuals collected during
        :meth:`fit`, so under exchangeability of the corruption episodes
        it covers the true score with at least the requested probability.
        ``method="cqr"`` uses learned quantile heads conformalized with
        the CQR correction instead (see :meth:`interval_model`): the width
        adapts to the batch's output statistics.
        """
        if not hasattr(self, "regressor_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        proba = self.blackbox.predict_proba(serving_frame)
        features = self._featurize(proba)
        estimate = self.predict_from_proba(proba, features)
        return self.interval_from_features(
            features, estimate, coverage, method, n_rows=len(serving_frame)
        )

    def interval_model(self, coverage: float = 0.8) -> CQRIntervalModel:
        """The CQR interval model for ``coverage``, fit lazily and cached.

        The heads train on the same meta-dataset as ``h`` (features
        retained from :meth:`fit`), one model per requested coverage
        level; fitting is deterministic given ``random_state``.
        """
        if not hasattr(self, "meta_features_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        if len(self.meta_scores_) < MIN_CALIBRATION_SAMPLES:
            raise NotFittedError(
                "no calibration residuals available; fit with enough meta-samples"
            )
        cache: dict[float, CQRIntervalModel] = getattr(self, "interval_models_", None) or {}
        model = cache.get(coverage)
        if model is None:
            with current_tracer().span("predictor.fit_interval_model", coverage=coverage):
                model = CQRIntervalModel(
                    coverage=coverage,
                    random_state=0 if self.random_state is None else self.random_state,
                ).fit(self.meta_features_, self.meta_scores_)
            cache[coverage] = model
            self.interval_models_ = cache
        return model

    def interval_from_features(
        self,
        features: np.ndarray,
        estimate: float,
        coverage: float = 0.8,
        method: str = "conformal",
        n_rows: int | None = None,
    ) -> tuple[float, float, float]:
        """Interval around an estimate from already-computed features."""
        if method not in INTERVAL_METHODS:
            raise DataValidationError(
                f"interval method must be one of {INTERVAL_METHODS}, got {method!r}"
            )
        if method == "conformal":
            return self.interval_from_estimate(estimate, coverage, n_rows=n_rows)
        lower, upper = self.interval_model(coverage).predict_interval(
            np.asarray(features).reshape(1, -1)
        )
        # The heads learned score quantiles at the calibration batch
        # size; a smaller serving batch's observed score carries extra
        # binomial noise the meta-dataset never saw, so both bounds get
        # the same sampling inflation as the conformal path.
        inflation = self._sampling_inflation(estimate, coverage, n_rows)
        return (
            float(np.clip(min(float(lower[0]) - inflation, estimate), 0.0, 1.0)),
            float(estimate),
            float(np.clip(max(float(upper[0]) + inflation, estimate), 0.0, 1.0)),
        )

    def _sampling_inflation(
        self, estimate: float, coverage: float, n_rows: int | None
    ) -> float:
        """Binomial sampling-noise term for a batch of ``n_rows``.

        The calibration residuals measure the meta-regressor's error at
        the *calibration* batch size (a corrupted copy of the full test
        split). A small serving batch's observed score additionally
        fluctuates around its distribution-level value with binomial
        scale ``sqrt(p(1-p)/n)``; without this term the conformal
        interval undercovers exactly when batches are small, which is
        the regime serving lives in. The calibration batches' own (much
        smaller) sampling variance is subtracted so large serving
        batches get no spurious inflation.
        """
        if n_rows is None or n_rows < 1:
            return 0.0
        p = min(max(float(estimate), 1e-6), 1.0 - 1e-6)
        calibration_rows = getattr(self, "calibration_rows_", None)
        variance = p * (1.0 - p) * max(
            0.0,
            1.0 / n_rows - (1.0 / calibration_rows if calibration_rows else 0.0),
        )
        if variance <= 0.0:
            return 0.0
        return normal_quantile(0.5 + coverage / 2.0) * math.sqrt(variance)

    def interval_from_estimate(
        self, estimate: float, coverage: float = 0.8, n_rows: int | None = None
    ) -> tuple[float, float, float]:
        """Split-conformal interval around an already-computed estimate.

        Lets serving-layer callers that hold one ``predict_proba`` result
        derive estimate, interval and monitor update in a single pass
        instead of re-scoring the batch per question. The width is the
        finite-sample conformal quantile (rank ``ceil((n+1)*coverage)``)
        of the cross-conformal residuals — the plug-in ``np.quantile``
        undercovers for small calibration sets — plus, when ``n_rows``
        is given, the batch-size sampling-noise term of
        :meth:`_sampling_inflation`.
        """
        if not 0.0 < coverage < 1.0:
            raise DataValidationError(f"coverage must be in (0, 1), got {coverage}")
        if getattr(self, "calibration_residuals_", None) is None:
            raise NotFittedError(
                "no calibration residuals available; fit with enough meta-samples"
            )
        width = conformal_quantile(self.calibration_residuals_, coverage)
        width += self._sampling_inflation(estimate, coverage, n_rows)
        return (
            float(np.clip(estimate - width, 0.0, 1.0)),
            float(estimate),
            float(np.clip(estimate + width, 0.0, 1.0)),
        )

    def interval_alarm_margin(
        self,
        coverage: float,
        n_rows: int | None = None,
        method: str = "conformal",
    ) -> float:
        """Clean-traffic interval half-width for interval-lower alarming.

        An interval lower bound sits a half-width below the estimate
        *even on clean traffic*, so comparing it against the point
        alarm floor would page on calibration uncertainty alone. The
        monitor therefore widens the floor by this margin — the
        half-width the method assigns to undrifted traffic: for
        ``conformal``, the width at the held-out test score for this
        batch size; for ``cqr``, the mean conformalized half-width over
        the calibration meta-features plus the same batch-size
        sampling inflation the served interval gets, so the clean
        cancellation holds at any batch size. What remains of the lower bound
        after adding the margin back is drift evidence: score drops
        *and* interval widening both pull it under the floor.
        """
        if method not in INTERVAL_METHODS:
            raise DataValidationError(
                f"interval method must be one of {INTERVAL_METHODS}, got {method!r}"
            )
        if method == "cqr":
            if not hasattr(self, "test_score_"):
                raise NotFittedError(
                    "PerformancePredictor is not fitted; call fit() first"
                )
            return self.interval_model(
                coverage
            ).baseline_halfwidth_ + self._sampling_inflation(
                self.test_score_, coverage, n_rows
            )
        if not hasattr(self, "test_score_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        if getattr(self, "calibration_residuals_", None) is None:
            raise NotFittedError(
                "no calibration residuals available; fit with enough meta-samples"
            )
        # Unclipped width: [0, 1] clipping near the borders would shrink
        # the margin and make the lower-bound stream spuriously sensitive.
        return conformal_quantile(
            self.calibration_residuals_, coverage
        ) + self._sampling_inflation(self.test_score_, coverage, n_rows)

    def expected_drop(self, serving_frame: DataFrame) -> float:
        """Estimated relative drop vs. the held-out test score (>= 0 means a drop)."""
        if not hasattr(self, "test_score_"):
            raise NotFittedError("PerformancePredictor is not fitted; call fit() first")
        estimate = self.predict(serving_frame)
        if self.test_score_ == 0.0:
            return 0.0
        return (self.test_score_ - estimate) / self.test_score_
