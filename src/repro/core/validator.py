"""The performance validator (§2 / §3 of the paper).

Turns performance prediction into binary classification: given a
user-defined tolerance ``t`` (e.g. 5%), decide whether the black box
model's score on an unlabeled serving batch stays within ``(1 - t)`` of
its held-out test score. A gradient-boosted tree classifier consumes the
percentile features *plus* Kolmogorov-Smirnov statistics between the
model's serving-time and test-time output distributions (the feature the
paper borrows from Lipton et al.'s label-shift work), which requires
retaining the test-time predictions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.core.corruption import CorruptionSample, CorruptionSampler
from repro.core.featurize import (
    ks_output_features,
    predicted_class_fractions,
    prediction_statistics,
)
from repro.stats.tests import chi2_from_counts
from repro.errors.base import ErrorGen
from repro.exceptions import DataValidationError, NotFittedError
from repro.ml.base import Estimator, as_rng, clone
from repro.ml.boosting import GradientBoostingClassifier
from repro.obs import current_tracer
from repro.tabular.frame import DataFrame


def default_validator_model(
    random_state: int | None = 0,
    tree_method: str = "exact",
    max_bins: int = 256,
) -> GradientBoostingClassifier:
    """The paper's validator learner: gradient-boosted decision trees.

    Feature subsampling (colsample) matters here: the percentile features
    and the hypothesis-test features often separate the *training*
    corruptions equally well, but only the test statistics transfer to
    error types never seen in training. Subsampling forces the ensemble to
    spread its splits over both groups. ``tree_method="hist"`` bins the
    meta-features once and shares the codes across all boosting stages.
    """
    return GradientBoostingClassifier(
        n_stages=80, max_depth=3, learning_rate=0.1, max_features=8,
        random_state=random_state, tree_method=tree_method, max_bins=max_bins,
    )


class PerformanceValidator:
    """Predicts whether the serving-time score drop exceeds a tolerance.

    Parameters
    ----------
    threshold:
        Acceptable relative quality loss ``t`` (0.05 = tolerate up to a 5%
        relative drop below the held-out test score).
    use_ks_features:
        Include per-class KS statistics between serving and retained test
        outputs (the paper's extra hypothesis-test features). Disabling
        them is an ablation.
    mode:
        Corruption protocol used to build training examples; validation
        experiments in the paper use mixtures.
    tree_method / max_bins:
        Split-finding engine for the default gradient-boosting model
        (``"exact"`` or ``"hist"``). Ignored when ``model`` is passed.
    """

    def __init__(
        self,
        blackbox: BlackBoxModel,
        error_generators: Sequence[ErrorGen],
        threshold: float = 0.05,
        metric: str = "accuracy",
        n_samples: int = 200,
        mode: str = "mixture",
        percentile_step: int = 5,
        use_ks_features: bool = True,
        model: Estimator | None = None,
        fire_prob: float = 0.6,
        random_state: int | None = 0,
        n_jobs: int | None = 1,
        backend: str = "auto",
        tree_method: str = "exact",
        max_bins: int = 256,
    ):
        if not 0.0 < threshold < 1.0:
            raise DataValidationError(f"threshold must be in (0, 1), got {threshold}")
        self.blackbox = blackbox
        self.error_generators = list(error_generators)
        self.threshold = threshold
        self.metric = metric
        self.n_samples = n_samples
        self.mode = mode
        self.percentile_step = percentile_step
        self.use_ks_features = use_ks_features
        self.model = model
        self.fire_prob = fire_prob
        self.random_state = random_state
        self.n_jobs = n_jobs
        self.backend = backend
        self.tree_method = tree_method
        self.max_bins = max_bins

    def _featurize(self, proba: np.ndarray) -> np.ndarray:
        features = prediction_statistics(proba, step=self.percentile_step)
        if self.use_ks_features:
            # The paper's "results of hypothesis tests on model outputs":
            # per-class KS statistics on the soft outputs (the BBSE signal)
            # and a chi-squared test on the hard predicted-class counts
            # (the BBSEh signal), both against the retained test outputs.
            ks = ks_output_features(proba, self._test_proba)
            fractions = predicted_class_fractions(proba)
            counts = fractions * proba.shape[0]
            test_counts = (
                predicted_class_fractions(self._test_proba) * self._test_proba.shape[0]
            )
            chi2 = chi2_from_counts(counts, test_counts)
            features = np.concatenate(
                [features, ks, fractions, [chi2.statistic, chi2.p_value]]
            )
        return features

    def fit(
        self,
        test_frame: DataFrame,
        test_labels: np.ndarray,
        samples: list[CorruptionSample] | None = None,
    ) -> "PerformanceValidator":
        """Train the validator on corrupted copies of held-out test data.

        Labels are derived from the paper's acceptance rule: a corrupted
        copy is "acceptable" when its true score stays at or above
        ``(1 - t) * test_score``.
        """
        if len(test_frame) != len(test_labels):
            raise DataValidationError("test frame and labels must be aligned")
        rng = as_rng(self.random_state)
        with current_tracer().span(
            "validator.fit", rows=len(test_frame), corruptions=self.n_samples
        ):
            # Retain the test-time predictions: the KS features need them,
            # both here and at serving time.
            self._test_proba = self.blackbox.predict_proba(test_frame)
            self.test_score_ = self.blackbox.score(
                test_frame, test_labels, self.metric
            )
            if samples is None:
                sampler = CorruptionSampler(
                    self.blackbox,
                    self.error_generators,
                    metric=self.metric,
                    mode=self.mode,
                    include_clean=True,
                    fire_prob=self.fire_prob,
                    n_jobs=self.n_jobs,
                    backend=self.backend,
                )
                samples = sampler.sample(test_frame, test_labels, self.n_samples, rng)
            features = np.stack([self._featurize(s.proba) for s in samples])
            acceptable = np.asarray(
                [s.score >= (1.0 - self.threshold) * self.test_score_ for s in samples],
                dtype=np.int64,
            )
            self.meta_features_ = features
            self.meta_labels_ = acceptable
            base = self.model if self.model is not None else default_validator_model(
                self.random_state, tree_method=self.tree_method, max_bins=self.max_bins
            )
            if len(np.unique(acceptable)) < 2:
                # Degenerate corpus (e.g. a model so robust nothing violates
                # the threshold): fall back to a constant decision.
                self._constant_decision = int(acceptable[0])
                self.model_ = None
                return self
            self._constant_decision = None
            self.model_ = clone(base)
            self.model_.fit(features, acceptable)  # type: ignore[attr-defined]
        return self

    @property
    def reference_proba(self) -> np.ndarray:
        """The retained test-time probability outputs (for degraded-mode
        serving, which fits BBSE/BBSEh fallbacks against them)."""
        if not hasattr(self, "_test_proba"):
            raise NotFittedError("PerformanceValidator is not fitted; call fit() first")
        return self._test_proba

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving batch can be trusted."""
        proba = self.blackbox.predict_proba(serving_frame)
        return self.validate_from_proba(proba)

    def validate_from_proba(
        self, proba: np.ndarray, features: np.ndarray | None = None
    ) -> bool:
        """Validation decision from an already-computed probability matrix.

        ``features`` lets a fused serving kernel pass the featurization it
        already derived from the shared column sort (see
        :class:`repro.perf.kernels.FusedScorer`); it must equal
        ``self._featurize(proba)``.
        """
        if not hasattr(self, "meta_features_"):
            raise NotFittedError("PerformanceValidator is not fitted; call fit() first")
        with current_tracer().span("validator.validate", rows=proba.shape[0]):
            if self._constant_decision is not None:
                return bool(self._constant_decision)
            if features is None:
                features = self._featurize(proba)
            features = np.asarray(features).reshape(1, -1)
            decision = self.model_.predict(features)[0]  # type: ignore[union-attr]
            return bool(decision == 1)

    def decision_proba(self, serving_frame: DataFrame) -> float:
        """Probability that the serving batch is acceptable."""
        if not hasattr(self, "meta_features_"):
            raise NotFittedError("PerformanceValidator is not fitted; call fit() first")
        proba = self.blackbox.predict_proba(serving_frame)
        if self._constant_decision is not None:
            return float(self._constant_decision)
        features = self._featurize(proba).reshape(1, -1)
        class_proba = self.model_.predict_proba(features)[0]  # type: ignore[union-attr]
        positive_column = int(np.flatnonzero(self.model_.classes_ == 1)[0])  # type: ignore[union-attr]
        return float(class_proba[positive_column])
