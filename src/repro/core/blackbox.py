"""Black box model wrapper.

The approach only ever touches a deployed model through this interface:
``predict_proba`` on relational data, the list of classes, and nothing
else — no feature map, no weights, no training internals. Anything
exposing those two members (our :class:`~repro.ml.pipeline.Pipeline`, an
AutoML result, or the emulated cloud service) can be wrapped.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

import numpy as np

from repro.exceptions import DataValidationError
from repro.ml.metrics import accuracy_score, roc_auc_score
from repro.tabular.frame import DataFrame


@runtime_checkable
class SupportsPredictProba(Protocol):
    """Anything that can produce class probabilities for a typed frame."""

    classes_: np.ndarray

    def predict_proba(self, frame: DataFrame) -> np.ndarray: ...


class BlackBoxModel:
    """Opaque handle on a deployed classifier.

    Parameters
    ----------
    predict_proba:
        Callable mapping a frame to an ``(n, m)`` probability matrix, or an
        object with a ``predict_proba`` method.
    classes:
        Class labels aligned with the probability columns.
    """

    def __init__(
        self,
        predict_proba: Callable[[DataFrame], np.ndarray] | SupportsPredictProba,
        classes: np.ndarray | None = None,
    ):
        if callable(predict_proba) and not hasattr(predict_proba, "predict_proba"):
            if classes is None:
                raise DataValidationError(
                    "wrapping a bare callable requires explicit class labels"
                )
            self._predict_proba = predict_proba
            self.classes = np.asarray(classes)
        else:
            model = predict_proba
            self._predict_proba = model.predict_proba  # type: ignore[union-attr]
            self.classes = np.asarray(
                classes if classes is not None else model.classes_  # type: ignore[union-attr]
            )
        if len(self.classes) < 2:
            raise DataValidationError("black box model must have at least two classes")

    @classmethod
    def wrap(cls, model: SupportsPredictProba) -> "BlackBoxModel":
        """Wrap a fitted pipeline / estimator exposing predict_proba + classes_."""
        return cls(model)

    @property
    def n_classes(self) -> int:
        return len(self.classes)

    def predict_proba(self, frame: DataFrame) -> np.ndarray:
        proba = np.asarray(self._predict_proba(frame), dtype=np.float64)
        if proba.ndim != 2 or proba.shape[0] != len(frame):
            raise DataValidationError(
                f"model returned shape {proba.shape} for {len(frame)} rows"
            )
        if proba.shape[1] != self.n_classes:
            raise DataValidationError(
                f"model returned {proba.shape[1]} columns for {self.n_classes} classes"
            )
        return proba

    def predict(self, frame: DataFrame) -> np.ndarray:
        return self.classes[np.argmax(self.predict_proba(frame), axis=1)]

    def score(self, frame: DataFrame, labels: np.ndarray, metric: str = "accuracy") -> float:
        """True score on labeled data — computable only in the training sandbox."""
        proba = self.predict_proba(frame)
        predictions = self.classes[np.argmax(proba, axis=1)]
        if metric == "accuracy":
            return accuracy_score(labels, predictions)
        if metric == "roc_auc":
            if self.n_classes != 2:
                raise DataValidationError("roc_auc scoring requires a binary task")
            return roc_auc_score(labels, proba[:, 1], positive=self.classes[1])
        raise DataValidationError(f"unknown metric {metric!r}; use accuracy or roc_auc")
