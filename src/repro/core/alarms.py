"""Serving-time alarm helpers.

The end of the paper's pipeline: a serving system inspects the estimated
score for each incoming batch and raises an alarm when the estimate falls
significantly below the expected (held-out test) score. These helpers
package that decision with enough context to act on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predictor import PerformancePredictor
from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame


def alarm_floor(expected_score: float, threshold: float) -> float:
    """The score below which a serving batch alarms.

    One definition shared by :func:`check_serving_batch`,
    :class:`repro.monitoring.BatchMonitor` and the serving layer: a batch
    alarms when its estimated score falls more than ``threshold``
    (relative) below the expected held-out test score.
    """
    if not 0.0 < threshold < 1.0:
        raise DataValidationError(f"threshold must be in (0, 1), got {threshold}")
    return (1.0 - threshold) * expected_score


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of checking one serving batch."""

    estimated_score: float
    expected_score: float
    threshold: float
    alarm: bool

    @property
    def relative_drop(self) -> float:
        """Estimated relative score drop (positive = degradation)."""
        if self.expected_score == 0.0:
            return 0.0
        return (self.expected_score - self.estimated_score) / self.expected_score

    def describe(self) -> str:
        state = "ALARM" if self.alarm else "ok"
        return (
            f"[{state}] estimated={self.estimated_score:.4f} "
            f"expected={self.expected_score:.4f} "
            f"drop={100 * self.relative_drop:+.2f}% "
            f"(tolerance {100 * self.threshold:.0f}%)"
        )


def check_serving_batch(
    predictor: PerformancePredictor,
    serving_frame: DataFrame,
    threshold: float = 0.05,
) -> ValidationReport:
    """Estimate the score on a serving batch and decide whether to alarm.

    Alarms when the estimate drops more than ``threshold`` (relative)
    below the score observed on held-out test data at training time.
    """
    floor = alarm_floor(predictor.test_score_, threshold)
    estimate = predictor.predict(serving_frame)
    expected = predictor.test_score_
    alarm = estimate < floor
    return ValidationReport(
        estimated_score=estimate,
        expected_score=expected,
        threshold=threshold,
        alarm=alarm,
    )
