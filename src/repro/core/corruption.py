"""Meta-dataset construction: corrupt held-out data, score the black box.

This implements the loop in the paper's Algorithm 1 (lines 3-12): apply
each user-specified error generator to the held-out test data with random
magnitudes, record the black box model's output statistics and its true
score on every corrupted copy, and collect them as supervised examples
``(features, score)`` for the performance predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.errors.base import CorruptionReport, ErrorGen
from repro.errors.mixture import ErrorMixture
from repro.exceptions import DataValidationError
from repro.obs import current_tracer
from repro.parallel import Executor, pmap, spawn_seeds
from repro.tabular.frame import DataFrame


@dataclass(frozen=True)
class CorruptionSample:
    """One corrupted copy of the test data and the black box's behaviour on it."""

    proba: np.ndarray
    score: float
    reports: tuple[CorruptionReport, ...]


@dataclass(frozen=True)
class _Episode:
    """Per-episode payload for one corrupt→predict→score episode.

    Module-level and dataclass-based so the process backend can pickle
    it. Deliberately slim — only what varies between episodes; the heavy
    invariants (black box, frame, labels) live in :class:`_EpisodeContext`
    and ride the executor's broadcast ``shared`` payload, pickled once
    per worker instead of once per episode.
    """

    generator: ErrorGen | None
    mixture: ErrorMixture | None


@dataclass(frozen=True)
class _EpisodeContext:
    """Read-only state shared by every episode of one ``sample()`` call."""

    blackbox: BlackBoxModel
    frame: DataFrame
    labels: np.ndarray
    metric: str


def _run_episode(
    episode: _Episode, rng: np.random.Generator, context: _EpisodeContext
) -> CorruptionSample:
    """Corrupt one copy with the episode's private RNG and score the black box."""
    if episode.generator is not None:
        corrupted, report = episode.generator.corrupt_random(context.frame, rng)
        reports: tuple[CorruptionReport, ...] = (report,)
    else:
        assert episode.mixture is not None
        corrupted, report_list = episode.mixture.corrupt_random(context.frame, rng)
        reports = tuple(report_list)
    proba = context.blackbox.predict_proba(corrupted)
    score = context.blackbox.score(corrupted, context.labels, context.metric)
    return CorruptionSample(proba=proba, score=score, reports=reports)


class CorruptionSampler:
    """Draws corrupted copies of held-out data and scores the black box.

    Parameters
    ----------
    blackbox:
        The wrapped deployed model.
    error_generators:
        The user's specification of expected error types.
    mode:
        ``"single"`` applies one generator per sample, cycling through the
        generators (the §6.1 known-error protocol); ``"mixture"`` applies a
        random subset of generators per sample (the §6.2 validation
        protocol).
    include_clean:
        Always include an uncorrupted copy (the ``p_err = 0`` case).
    n_jobs / backend:
        Parallelism for the corruption episodes (see
        :mod:`repro.parallel`). Episodes receive independent spawned
        RNGs, so the samples are bit-identical for every ``n_jobs`` and
        backend choice.
    task_retries:
        Per-episode retry budget for transient worker failures (see
        :class:`repro.parallel.Executor`).
    """

    def __init__(
        self,
        blackbox: BlackBoxModel,
        error_generators: Sequence[ErrorGen],
        metric: str = "accuracy",
        mode: str = "single",
        include_clean: bool = True,
        fire_prob: float = 0.6,
        n_jobs: int | None = 1,
        backend: str = "auto",
        task_retries: int = 0,
    ):
        if not error_generators:
            raise DataValidationError("need at least one error generator")
        if mode not in ("single", "mixture"):
            raise DataValidationError(f"unknown mode {mode!r}; use single or mixture")
        self.blackbox = blackbox
        self.error_generators = list(error_generators)
        self.metric = metric
        self.mode = mode
        self.include_clean = include_clean
        self.fire_prob = fire_prob
        self.n_jobs = n_jobs
        self.backend = backend
        self.task_retries = task_retries

    def sample(
        self,
        test_frame: DataFrame,
        test_labels: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
        n_jobs: int | None = None,
        backend: str | None = None,
        checkpoint: "CheckpointStore | str | Path | None" = None,
        checkpoint_every: int = 16,
    ) -> list[CorruptionSample]:
        """Generate ``n_samples`` corrupted copies plus optional clean ones.

        Each episode runs on its own RNG spawned from ``rng`` (one draw
        is consumed from ``rng`` regardless of ``n_samples``), so the
        returned samples do not depend on worker count or backend.
        ``n_jobs`` / ``backend`` override the sampler-level settings.

        With ``checkpoint`` (a :class:`repro.resilience.CheckpointStore`
        or a path), finished episodes are persisted every
        ``checkpoint_every`` episodes; re-running the same call after a
        crash resumes from the last checkpoint and — because episode RNGs
        are derived from the root draw, never from execution order —
        produces a meta-dataset bit-identical to an uninterrupted run.
        The checkpoint is fingerprinted with the sampler configuration
        and the seed entropy, so a stale or mismatched file fails loudly
        instead of silently mixing runs. On clean completion a checkpoint
        the sampler created from a bare path is removed; a caller-supplied
        :class:`CheckpointStore` object is left intact — it belongs to the
        caller, who may be reusing it across runs.
        """
        if n_samples < 1:
            raise DataValidationError(f"n_samples must be >= 1, got {n_samples}")
        tracer = current_tracer()
        with tracer.span(
            "corruption.sample", rows=len(test_frame), corruptions=n_samples,
            generators=len(self.error_generators), mode=self.mode,
        ):
            samples: list[CorruptionSample] = []
            if self.include_clean:
                with tracer.span("corruption.clean_baseline", rows=len(test_frame)):
                    proba = self.blackbox.predict_proba(test_frame)
                    score = self.blackbox.score(test_frame, test_labels, self.metric)
                    samples.append(
                        CorruptionSample(proba=proba, score=score, reports=())
                    )
            mixture = ErrorMixture(self.error_generators, fire_prob=self.fire_prob)
            context = _EpisodeContext(
                blackbox=self.blackbox,
                frame=test_frame,
                labels=test_labels,
                metric=self.metric,
            )
            episodes = []
            for index in range(n_samples):
                if self.mode == "single":
                    generator: ErrorGen | None = self.error_generators[
                        index % len(self.error_generators)
                    ]
                    episode_mixture = None
                else:
                    generator = None
                    episode_mixture = mixture
                episodes.append(
                    _Episode(generator=generator, mixture=episode_mixture)
                )
            seeds = spawn_seeds(rng, n_samples)
            use_jobs = self.n_jobs if n_jobs is None else n_jobs
            use_backend = self.backend if backend is None else backend
            if checkpoint is None:
                with tracer.span("corruption.episodes", corruptions=n_samples):
                    samples.extend(
                        pmap(
                            _run_episode,
                            episodes,
                            n_jobs=use_jobs,
                            seeds=seeds,
                            backend=use_backend,
                            task_retries=self.task_retries,
                            shared=context,
                        )
                    )
            else:
                samples.extend(
                    self._sample_checkpointed(
                        episodes, context, seeds, checkpoint, checkpoint_every,
                        n_jobs=use_jobs, backend=use_backend,
                    )
                )
        return samples

    def _sample_checkpointed(
        self,
        episodes: list[_Episode],
        context: _EpisodeContext,
        seeds: list[np.random.SeedSequence],
        checkpoint: "CheckpointStore | str | Path",
        checkpoint_every: int,
        n_jobs: int | None,
        backend: str,
    ) -> list[CorruptionSample]:
        """Run episodes in checkpointed chunks, resuming finished work."""
        from repro.resilience.checkpoint import CheckpointStore

        if checkpoint_every < 1:
            raise DataValidationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        # A store built here from a bare path is sampler-owned and cleaned
        # up on completion; a CheckpointStore object handed in by the
        # caller is caller-owned — clearing it would delete a file the
        # caller may be reusing across runs.
        owns_store = not isinstance(checkpoint, CheckpointStore)
        store = CheckpointStore(checkpoint) if owns_store else checkpoint
        fingerprint = {
            "kind": "corruption-sample",
            "n_samples": len(episodes),
            "mode": self.mode,
            "metric": self.metric,
            "include_clean": self.include_clean,
            "fire_prob": self.fire_prob,
            "rows": len(context.frame),
            "generators": [type(g).__name__ for g in self.error_generators],
            "seed_entropy": int(seeds[0].entropy) if seeds else 0,
        }
        completed = store.load(fingerprint)
        pending = [i for i in range(len(episodes)) if i not in completed]
        executor = Executor(
            n_jobs=n_jobs, backend=backend, task_retries=self.task_retries
        )
        tracer = current_tracer()
        with tracer.span(
            "corruption.episodes",
            corruptions=len(episodes),
            resumed=len(completed),
            pending=len(pending),
        ):
            for start in range(0, len(pending), checkpoint_every):
                chunk = pending[start : start + checkpoint_every]
                chunk_results = executor.map(
                    _run_episode,
                    [episodes[i] for i in chunk],
                    seeds=[seeds[i] for i in chunk],
                    shared=context,
                )
                for index, result in zip(chunk, chunk_results):
                    completed[index] = result
                store.save(fingerprint, completed)
        if owns_store:
            store.clear()
        return [completed[i] for i in range(len(episodes))]
