"""Meta-dataset construction: corrupt held-out data, score the black box.

This implements the loop in the paper's Algorithm 1 (lines 3-12): apply
each user-specified error generator to the held-out test data with random
magnitudes, record the black box model's output statistics and its true
score on every corrupted copy, and collect them as supervised examples
``(features, score)`` for the performance predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.errors.base import CorruptionReport, ErrorGen
from repro.errors.mixture import ErrorMixture
from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame


@dataclass(frozen=True)
class CorruptionSample:
    """One corrupted copy of the test data and the black box's behaviour on it."""

    proba: np.ndarray
    score: float
    reports: tuple[CorruptionReport, ...]


class CorruptionSampler:
    """Draws corrupted copies of held-out data and scores the black box.

    Parameters
    ----------
    blackbox:
        The wrapped deployed model.
    error_generators:
        The user's specification of expected error types.
    mode:
        ``"single"`` applies one generator per sample, cycling through the
        generators (the §6.1 known-error protocol); ``"mixture"`` applies a
        random subset of generators per sample (the §6.2 validation
        protocol).
    include_clean:
        Always include an uncorrupted copy (the ``p_err = 0`` case).
    """

    def __init__(
        self,
        blackbox: BlackBoxModel,
        error_generators: Sequence[ErrorGen],
        metric: str = "accuracy",
        mode: str = "single",
        include_clean: bool = True,
        fire_prob: float = 0.6,
    ):
        if not error_generators:
            raise DataValidationError("need at least one error generator")
        if mode not in ("single", "mixture"):
            raise DataValidationError(f"unknown mode {mode!r}; use single or mixture")
        self.blackbox = blackbox
        self.error_generators = list(error_generators)
        self.metric = metric
        self.mode = mode
        self.include_clean = include_clean
        self.fire_prob = fire_prob

    def sample(
        self,
        test_frame: DataFrame,
        test_labels: np.ndarray,
        n_samples: int,
        rng: np.random.Generator,
    ) -> list[CorruptionSample]:
        """Generate ``n_samples`` corrupted copies plus optional clean ones."""
        if n_samples < 1:
            raise DataValidationError(f"n_samples must be >= 1, got {n_samples}")
        samples: list[CorruptionSample] = []
        if self.include_clean:
            proba = self.blackbox.predict_proba(test_frame)
            score = self.blackbox.score(test_frame, test_labels, self.metric)
            samples.append(CorruptionSample(proba=proba, score=score, reports=()))
        mixture = ErrorMixture(self.error_generators, fire_prob=self.fire_prob)
        for index in range(n_samples):
            if self.mode == "single":
                generator = self.error_generators[index % len(self.error_generators)]
                corrupted, report = generator.corrupt_random(test_frame, rng)
                reports: tuple[CorruptionReport, ...] = (report,)
            else:
                corrupted, report_list = mixture.corrupt_random(test_frame, rng)
                reports = tuple(report_list)
            proba = self.blackbox.predict_proba(corrupted)
            score = self.blackbox.score(corrupted, test_labels, self.metric)
            samples.append(CorruptionSample(proba=proba, score=score, reports=reports))
        return samples
