"""Command-line interface: generate data, train, validate, monitor.

Exposes the library's end-to-end workflow without writing Python::

    python -m repro datasets
    python -m repro generate --dataset income --rows 2000 --out income.npz
    python -m repro train --data income.npz --model xgb --out deployed/
    python -m repro check --artifacts deployed/ --data income.npz --corrupt scaling
    python -m repro monitor --artifacts deployed/ --data income.npz --batches 10
    python -m repro endpoints --config serving.json [--json]
    python -m repro serve --config serving.json --port 8099
    python -m repro health --config serving.json
    python -m repro serve-batch --config serving.json --endpoint income --data income.npz
    python -m repro replay --config serving.json --endpoint income --data income.npz
    python -m repro trace --trace-out spans.json train --data income.npz --out deployed/

``train`` persists three artifacts into the output directory: the fitted
pipeline (``model.npz``), the performance predictor (``predictor.npz``)
and the held-out evaluation summary (``info.json``). ``endpoints`` and
``serve-batch`` consume a declarative serving config (see
:mod:`repro.serving.config`) whose entries point at such directories.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager, nullcontext
from pathlib import Path

import numpy as np

from repro import persistence
from repro.core.alarms import check_serving_batch
from repro.core.blackbox import BlackBoxModel
from repro.core.predictor import PerformancePredictor
from repro.datasets.base import dataset_names, load_dataset
from repro.errors.base import ErrorGen
from repro.evaluation.harness import known_error_generators
from repro.evaluation.models import MODEL_NAMES, make_model
from repro.exceptions import ReproError
from repro.ml.binning import TREE_METHODS
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.monitoring import BatchMonitor
from repro.obs import Tracer, format_span_tree, spans_to_json, use_tracer
from repro.serving import (
    EventRouter,
    JsonlFileSink,
    StdoutSink,
    ValidationService,
    registry_from_config,
)
from repro.tabular.frame import DataFrame
from repro.tabular.ops import balance_classes, split_frame, train_test_split


def _add_datasets_command(subparsers) -> None:
    parser = subparsers.add_parser("datasets", help="list available dataset generators")
    parser.set_defaults(handler=_run_datasets)


def _run_datasets(_args) -> int:
    for name in dataset_names():
        dataset = load_dataset(name, n_rows=10, seed=0)
        print(f"{name:<10} task={dataset.task:<8} {dataset.description}")
    return 0


def _add_generate_command(subparsers) -> None:
    parser = subparsers.add_parser("generate", help="generate and serialize a dataset")
    parser.add_argument("--dataset", required=True, choices=dataset_names())
    parser.add_argument("--rows", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output .npz path")
    parser.set_defaults(handler=_run_generate)


def _run_generate(args) -> int:
    dataset = load_dataset(args.dataset, n_rows=args.rows, seed=args.seed)
    persistence.save_dataset(dataset, args.out)
    print(f"wrote {args.dataset} ({dataset.n_rows} rows) to {args.out}")
    return 0


def _add_train_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "train", help="train a black box + performance predictor from a dataset file"
    )
    parser.add_argument("--data", required=True, help="dataset .npz from `generate`")
    parser.add_argument("--model", default="lr", choices=MODEL_NAMES)
    parser.add_argument("--meta-samples", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", required=True, help="output artifact directory")
    parser.add_argument(
        "--tree-method", default="exact", choices=TREE_METHODS,
        help="split-finding engine for tree learners (hist = binned, faster)",
    )
    _add_parallel_arguments(parser)
    _add_trace_arguments(parser)
    parser.set_defaults(handler=_run_train)


def _add_trace_arguments(parser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="collect spans over the hot paths and print the span tree",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="write the collected spans as JSON to this path (implies --trace)",
    )


@contextmanager
def _traced(enabled: bool, trace_out: str | None):
    """Run the wrapped command under a collecting tracer when asked.

    The span tree prints (and the JSON export is written) even when the
    command fails, so a trace of the failing run is never lost.
    """
    if not enabled and trace_out is None:
        yield
        return
    tracer = Tracer()
    with use_tracer(tracer):
        try:
            yield
        finally:
            spans = tracer.store.spans()
            print()
            print(format_span_tree(spans))
            if trace_out:
                Path(trace_out).write_text(spans_to_json(spans, indent=2) + "\n")
                print(f"trace JSON written to {trace_out}")


def _add_parallel_arguments(parser) -> None:
    parser.add_argument(
        "--n-jobs", type=int, default=1,
        help="worker count for parallel paths (1 = serial, -1 = all cores)",
    )
    parser.add_argument(
        "--parallel-backend", default="auto",
        choices=("auto", "serial", "thread", "process"),
        help="parallel backend; results are identical on every choice",
    )


def _split(dataset, seed):
    rng = np.random.default_rng(seed + 1)
    frame, labels = balance_classes(dataset.frame, dataset.labels, rng)
    (source, y_source), (serving, y_serving) = split_frame(frame, labels, (0.6, 0.4), rng)
    train, y_train, test, y_test = train_test_split(source, y_source, 0.35, rng)
    return train, y_train, test, y_test, serving, y_serving


def _run_train(args) -> int:
    dataset = persistence.load_dataset_file(args.data)
    train, y_train, test, y_test, _, _ = _split(dataset, args.seed)
    with _traced(args.trace, args.trace_out):
        pipeline = Pipeline(
            TabularEncoder(),
            make_model(args.model, random_state=args.seed, tree_method=args.tree_method),
        )
        pipeline.fit(train, y_train)
        blackbox = BlackBoxModel.wrap(pipeline)
        test_score = blackbox.score(test, y_test)
        generators = list(known_error_generators(dataset.task).values())
        predictor = PerformancePredictor(
            blackbox, generators, n_samples=args.meta_samples, random_state=args.seed,
            n_jobs=args.n_jobs, backend=args.parallel_backend,
            tree_method=args.tree_method,
        ).fit(test, y_test)

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    persistence.save_model(pipeline, out / "model.npz")
    persistence.save_model(predictor, out / "predictor.npz")
    info = {
        "dataset": dataset.name,
        "model": args.model,
        "test_score": test_score,
        "error_generators": [generator.name for generator in generators],
        "meta_samples": args.meta_samples,
        "tree_method": args.tree_method,
    }
    (out / "info.json").write_text(json.dumps(info, indent=2))
    print(f"trained {args.model} on {dataset.name}: test accuracy {test_score:.4f}")
    print(f"artifacts written to {out}/ (model.npz, predictor.npz, info.json)")
    return 0


def _corruption_by_name(name: str, task: str) -> ErrorGen:
    generators = known_error_generators(task)
    if name not in generators:
        raise ReproError(
            f"unknown corruption {name!r} for task {task!r}; have {sorted(generators)}"
        )
    return generators[name]


def _load_artifacts(artifact_dir: str):
    out = Path(artifact_dir)
    pipeline = persistence.load_model(out / "model.npz", expected_class=Pipeline)
    predictor = persistence.load_model(
        out / "predictor.npz", expected_class=PerformancePredictor
    )
    info = json.loads((out / "info.json").read_text())
    return pipeline, predictor, info


def _add_check_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "check", help="estimate accuracy on a serving batch and decide trust"
    )
    parser.add_argument("--artifacts", required=True, help="directory from `train`")
    parser.add_argument("--data", required=True, help="dataset .npz providing serving rows")
    parser.add_argument("--threshold", type=float, default=0.05)
    parser.add_argument(
        "--corrupt", default=None,
        help="optionally corrupt the batch first (e.g. scaling, missing_values)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_check)


def _run_check(args) -> int:
    _, predictor, info = _load_artifacts(args.artifacts)
    dataset = persistence.load_dataset_file(args.data)
    _, _, _, _, serving, y_serving = _split(dataset, args.seed)
    rng = np.random.default_rng(args.seed + 99)
    if args.corrupt:
        generator = _corruption_by_name(args.corrupt, dataset.task)
        serving, report = generator.corrupt_random(serving, rng)
        print(f"applied {report.error_name} with params {report.params}")
    result = check_serving_batch(predictor, serving, threshold=args.threshold)
    print(result.describe())
    truth = BlackBoxModel.wrap(
        persistence.load_model(Path(args.artifacts) / "model.npz", Pipeline)
    ).score(serving, y_serving)
    print(f"(true accuracy, available only in this sandbox: {truth:.4f})")
    return 1 if result.alarm else 0


def _add_monitor_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "monitor", help="stream serving batches through a BatchMonitor"
    )
    parser.add_argument("--artifacts", required=True)
    parser.add_argument("--data", required=True)
    parser.add_argument("--batches", type=int, default=10)
    parser.add_argument("--threshold", type=float, default=0.05)
    parser.add_argument(
        "--break-after", type=int, default=None,
        help="inject a scaling bug starting at this batch index",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_monitor)


def _run_monitor(args) -> int:
    _, predictor, _ = _load_artifacts(args.artifacts)
    dataset = persistence.load_dataset_file(args.data)
    _, _, _, _, serving, _ = _split(dataset, args.seed)
    monitor = BatchMonitor(predictor, threshold=args.threshold)
    rng = np.random.default_rng(args.seed + 7)
    batch_size = max(1, len(serving) // args.batches)
    exit_code = 0
    for index in range(args.batches):
        rows = np.arange(index * batch_size, min((index + 1) * batch_size, len(serving)))
        if rows.size == 0:
            break
        batch = serving.select_rows(rows)
        if args.break_after is not None and index >= args.break_after:
            generator = _corruption_by_name(
                "scaling" if dataset.task == "tabular" else
                ("image_noise" if dataset.task == "image" else "adversarial"),
                dataset.task,
            )
            params = generator.sample_params(batch, rng)
            params["fraction"] = 1.0
            batch = generator.corrupt(batch, rng, **params)
        record = monitor.observe(batch)
        flag = "SUSTAINED" if record.sustained_alarm else ("alarm" if record.alarm else "ok")
        print(
            f"batch {record.batch_index:>3}: estimate {record.estimated_score:.4f} "
            f"smoothed {record.smoothed_score:.4f} [{flag}]"
        )
        if record.sustained_alarm:
            exit_code = 1
    print(monitor.summary())
    return exit_code


def _add_endpoints_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "endpoints", help="list the endpoints declared in a serving config"
    )
    parser.add_argument("--config", required=True, help="serving config JSON")
    parser.add_argument(
        "--json", action="store_true",
        help="emit a machine-readable JSON document instead of text",
    )
    parser.set_defaults(handler=_run_endpoints)


def _run_endpoints(args) -> int:
    from dataclasses import asdict

    from repro.serving.config import (
        load_model_settings,
        load_registry_settings,
        resolve_store_dir,
    )

    model = load_model_settings(args.config)
    registry_settings = load_registry_settings(args.config)
    store = None
    if registry_settings.store_dir is not None:
        # Store-backed: the listing comes from the manifest alone — no
        # model is unpickled and no array blob is opened, so listing a
        # 1,000-endpoint fleet is one JSON parse.
        from repro.serving.store import ArtifactStore, read_store_manifest

        store_dir = resolve_store_dir(args.config, registry_settings)
        entries = read_store_manifest(store_dir)
        store = ArtifactStore(store_dir)
    else:
        entries = registry_from_config(args.config).entries()
    if args.json:
        document = {
            "model": {"tree_method": model.tree_method, "max_bins": model.max_bins},
            "endpoints": [],
        }
        for entry in entries:
            item = {
                "name": entry.name,
                "version": entry.version,
                "key": entry.key,
                "expected_score": entry.expected_score,
                "has_validator": entry.has_validator,
                "policy": asdict(entry.policy),
            }
            if entry.predictor_record is not None:
                item["stored_bytes"] = entry.stored_bytes
                item["blobs"] = {"predictor": entry.predictor_record.to_json()}
                if entry.validator_record is not None:
                    item["blobs"]["validator"] = entry.validator_record.to_json()
            document["endpoints"].append(item)
        if store is not None:
            document["store"] = {
                "dir": str(store.root),
                "blob_count": store.blob_count(),
                "blob_bytes": store.total_blob_bytes(),
            }
        print(json.dumps(document, indent=2))
        return 0
    print(f"model: tree_method={model.tree_method} max_bins={model.max_bins}")
    for entry in entries:
        print(entry.describe())
        if store is None:
            predictor_path = Path(persistence_dir_of(args.config, entry))
            if predictor_path.exists():
                class_path = persistence.artifact_class_path(predictor_path)
                print(f"  predictor artifact: {predictor_path} ({class_path})")
    if store is not None:
        print(
            f"store: {store.root} ({store.blob_count()} blobs, "
            f"{store.total_blob_bytes() / 1024:.1f} KiB after dedup)"
        )
    return 0


def _add_serve_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="run the persistent HTTP serving daemon",
        description=(
            "Starts the async serving daemon over the endpoints declared in a "
            "serving config: POST /v1/endpoints/<name>/score admits frames "
            "into bounded per-endpoint queues, worker threads coalesce them "
            "into micro-batches, and GET /healthz, /metrics and /spans expose "
            "daemon state. SIGTERM drains gracefully (every admitted request "
            "is answered); SIGHUP reloads the config in place."
        ),
    )
    parser.add_argument("--config", required=True, help="serving config JSON")
    parser.add_argument("--host", default=None, help="bind host (overrides config)")
    parser.add_argument("--port", type=int, default=None, help="bind port (overrides config)")
    parser.add_argument(
        "--workers", type=int, default=None,
        help="worker threads per endpoint (overrides config)",
    )
    parser.set_defaults(handler=_run_serve)


def _run_serve(args) -> int:
    from repro.daemon import ServingDaemon

    daemon = ServingDaemon.from_config(
        args.config, host=args.host, port=args.port, workers=args.workers
    )
    daemon.install_signal_handlers()
    daemon.start()
    names = ", ".join(e.key for e in daemon.service.registry.entries())
    print(f"serving {names} at {daemon.url} (SIGTERM drains, SIGHUP reloads)")
    report = daemon.run_forever()
    print(
        f"drained: {report.answered_requests} requests in "
        f"{report.scored_groups} batches, {report.unanswered_requests} unanswered"
        + (f", registry snapshot at {report.snapshot_path}" if report.snapshot_path else "")
    )
    return 0 if report.clean else 1


def _add_health_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "health",
        help="ping a running daemon's /healthz; non-zero exit when degraded",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--config", default=None,
        help="serving config whose daemon block names the host/port",
    )
    target.add_argument(
        "--url", default=None, help="daemon base URL (e.g. http://127.0.0.1:8099)"
    )
    parser.add_argument("--timeout", type=float, default=5.0)
    parser.set_defaults(handler=_run_health)


def _run_health(args) -> int:
    from repro.daemon import DaemonClient
    from repro.serving.config import load_daemon_settings

    if args.url is not None:
        base_url = args.url
    else:
        settings = load_daemon_settings(args.config)
        base_url = f"http://{settings.host}:{settings.port}"
    response = DaemonClient(base_url, timeout=args.timeout).health()
    print(json.dumps(response.payload, indent=2))
    status = response.payload.get("status")
    if response.ok and status == "ok":
        return 0
    print(f"daemon at {base_url} is {status or 'unreachable'}", file=sys.stderr)
    return 1


def persistence_dir_of(config_path: str, endpoint) -> Path:
    """The predictor artifact path behind a config endpoint entry."""
    from repro.serving.config import load_serving_config

    for spec in load_serving_config(config_path):
        if spec.name == endpoint.name and spec.version == endpoint.version:
            artifact_dir = Path(spec.artifacts)
            if not artifact_dir.is_absolute():
                artifact_dir = Path(config_path).parent / artifact_dir
            return artifact_dir / "predictor.npz"
    raise ReproError(f"endpoint {endpoint.key} not found in {config_path}")


def _add_serve_batch_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve-batch",
        help="replay serving batches through the validation service",
    )
    parser.add_argument("--config", required=True, help="serving config JSON")
    parser.add_argument("--endpoint", required=True, help="endpoint name to address")
    parser.add_argument("--version", default=None, help="endpoint version (default: latest)")
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--batch-dir", default=None,
        help="directory of .npz frame/dataset files replayed in sorted order",
    )
    source.add_argument(
        "--data", default=None,
        help="dataset .npz whose serving split is chunked into batches",
    )
    parser.add_argument("--batches", type=int, default=10, help="chunks for --data mode")
    parser.add_argument(
        "--break-after", type=int, default=None,
        help="with --data: inject a scaling bug starting at this batch index",
    )
    parser.add_argument(
        "--metrics", choices=("json", "prometheus", "none"), default="json",
        help="metrics export printed after the replay",
    )
    parser.add_argument(
        "--alerts-out", default=None,
        help="also append alert events to this JSONL file",
    )
    parser.add_argument(
        "--inject-predictor-fault", type=int, default=None, metavar="N",
        help="fault-injection harness: make the endpoint's score predictor "
        "raise on its first N calls (requires the config's resilience "
        "block to stay available)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.set_defaults(handler=_run_serve_batch)


def _iter_replay_batches(args):
    """Yield (label, frame) pairs from whichever batch source was given."""
    if args.batch_dir is not None:
        paths = sorted(Path(args.batch_dir).glob("*.npz"))
        if not paths:
            raise ReproError(f"no .npz batch files under {args.batch_dir}")
        for path in paths:
            try:
                frame = persistence.load_frame(path)
            except Exception:
                frame = persistence.load_dataset_file(path).frame
            yield path.name, frame
        return
    dataset = persistence.load_dataset_file(args.data)
    _, _, _, _, serving, _ = _split(dataset, args.seed)
    rng = np.random.default_rng(args.seed + 7)
    batch_size = max(1, len(serving) // args.batches)
    for index in range(args.batches):
        rows = np.arange(index * batch_size, min((index + 1) * batch_size, len(serving)))
        if rows.size == 0:
            return
        batch = serving.select_rows(rows)
        if args.break_after is not None and index >= args.break_after:
            generator = _corruption_by_name(
                "scaling" if dataset.task == "tabular" else
                ("image_noise" if dataset.task == "image" else "adversarial"),
                dataset.task,
            )
            params = generator.sample_params(batch, rng)
            params["fraction"] = 1.0
            batch = generator.corrupt(batch, rng, **params)
        yield f"batch-{index}", batch


def _run_serve_batch(args) -> int:
    from repro.obs import bridge_spans
    from repro.serving.config import (
        load_kernel_setting,
        load_observability_settings,
        load_resilience_settings,
    )

    observability = load_observability_settings(args.config)
    resilience = load_resilience_settings(args.config)
    kernel = load_kernel_setting(args.config)
    registry = registry_from_config(args.config)
    if args.inject_predictor_fault is not None:
        from repro.resilience import wrap_method

        endpoint = registry.get(args.endpoint, args.version)
        wrap_method(
            endpoint.predictor,
            "predict_from_proba",
            fail_on=args.inject_predictor_fault,
        )
        print(
            f"injected: predictor fails on its first "
            f"{args.inject_predictor_fault} call(s)"
        )
    sinks = [StdoutSink()]
    if args.alerts_out:
        sinks.append(JsonlFileSink(args.alerts_out))
    service = ValidationService(
        registry, events=EventRouter(sinks), resilience=resilience, kernel=kernel
    )
    tracer = Tracer() if observability.enabled else None
    exit_code = 0
    with use_tracer(tracer) if tracer is not None else nullcontext():
        for label, frame in _iter_replay_batches(args):
            if not isinstance(frame, DataFrame) or len(frame) == 0:
                continue
            results = service.submit(args.endpoint, frame, version=args.version)
            for result in results:
                print(f"{label}: {result.describe()}")
                if result.sustained_alarm:
                    exit_code = 1
        final = service.flush(args.endpoint, version=args.version)
        if final is not None:
            print(f"flush: {final.describe()}")
            if final.sustained_alarm:
                exit_code = 1
    if tracer is not None:
        spans = tracer.store.spans()
        if observability.metrics_bridge:
            bridge_spans(spans, service.metrics)
        if observability.export_path:
            Path(observability.export_path).write_text(
                spans_to_json(spans, indent=2) + "\n"
            )
        print()
        print(format_span_tree(spans))
    print()
    print(service.summary())
    if args.metrics == "json":
        print(service.metrics.to_json(indent=2))
    elif args.metrics == "prometheus":
        print(service.metrics.to_prometheus(), end="")
    return exit_code


def _add_replay_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "replay",
        help="replay drift scenarios through the serving stack and score detection",
        description=(
            "Plays declarative drift scenarios (gradual ramps, sudden label "
            "shift, seasonal recurrence, adversarial escalation) through an "
            "in-process ValidationService built from a serving config, or "
            "against a live daemon via --url, and reports detection latency, "
            "time-to-sustained-alarm and pre-onset false-alarm rate per "
            "scenario. Deterministic per --seed at any --n-jobs/backend and "
            "resumable bit-identically via --checkpoint."
        ),
    )
    parser.add_argument(
        "--scenario", default=None,
        help="scenario JSON file (one scenario or {'scenarios': [...]})",
    )
    parser.add_argument(
        "--families", default="gradual,sudden,seasonal,adversarial",
        help="comma-separated builtin families when no --scenario file is given",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument(
        "--config", default=None,
        help="serving config JSON (scores through an in-process service)",
    )
    target.add_argument(
        "--url", default=None,
        help="daemon base URL (scores through a live daemon)",
    )
    parser.add_argument("--endpoint", required=True, help="default endpoint name")
    parser.add_argument("--data", required=True, help="dataset .npz from `generate`")
    parser.add_argument("--batches", type=int, default=30, help="builtin suite length")
    parser.add_argument("--batch-size", type=int, default=100)
    parser.add_argument("--onset", type=int, default=10, help="builtin drift onset batch")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint", default=None,
        help="checkpoint path; re-running resumes bit-identically",
    )
    parser.add_argument("--checkpoint-every", type=int, default=8)
    parser.add_argument(
        "--label-budget", type=int, default=None, metavar="N",
        help="active Bayesian assessment: reveal up to N ground-truth "
        "labels per batch from the replay oracle and record the "
        "posterior-refined estimate (service mode only)",
    )
    parser.add_argument(
        "--expect-labels-spent", action="store_true",
        help="exit 3 unless the run spent at least one oracle label "
        "(guards that --label-budget was actually exercised)",
    )
    parser.add_argument(
        "--expect-detection-within", type=int, default=None, metavar="N",
        help="exit 3 unless every detectable scenario sustains an alarm "
        "within N batches of its onset (seasonal is exempt)",
    )
    parser.add_argument(
        "--expect-no-false-alarms", action="store_true",
        help="exit 3 if any scenario alarms before its drift onset",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable report instead of text",
    )
    _add_parallel_arguments(parser)
    parser.set_defaults(handler=_run_replay)


def _run_replay(args) -> int:
    from repro.scenarios import (
        ReplayHarness,
        builtin_suite,
        isolate_scenarios,
        load_scenarios,
    )

    if args.scenario is not None:
        scenarios = load_scenarios(args.scenario)
    else:
        families = [f.strip() for f in args.families.split(",") if f.strip()]
        scenarios = builtin_suite(
            n_batches=args.batches,
            batch_size=args.batch_size,
            onset=args.onset,
            families=families,
        )
    dataset = persistence.load_dataset_file(args.data)
    _, _, _, _, serving, y_serving = _split(dataset, args.seed)
    if args.config is not None:
        from repro.serving.config import (
            load_kernel_setting,
            load_resilience_settings,
        )

        service = ValidationService(
            registry_from_config(args.config),
            resilience=load_resilience_settings(args.config),
            kernel=load_kernel_setting(args.config),
        )
        # One monitor per scenario: interleaved tenants sharing a
        # monitor would reset each other's alarm streaks.
        scenarios = isolate_scenarios(service, scenarios, args.endpoint)
        harness = ReplayHarness(
            serving, y_serving, service=service, endpoint=args.endpoint,
            n_jobs=args.n_jobs, backend=args.parallel_backend,
            label_budget=args.label_budget,
        )
    else:
        from repro.daemon import DaemonClient

        if args.label_budget is not None:
            print(
                "error: --label-budget needs per-row model outputs and is "
                "available with --config (service mode) only",
                file=sys.stderr,
            )
            return 2
        harness = ReplayHarness(
            serving, y_serving, client=DaemonClient(args.url),
            endpoint=args.endpoint,
            n_jobs=args.n_jobs, backend=args.parallel_backend,
        )
    report = harness.run(
        scenarios,
        seed=args.seed,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.describe())
    failures = []
    if args.expect_labels_spent:
        spent = report.coverage()["labels_spent"]
        if spent <= 0:
            failures.append(
                "no oracle labels were spent (is --label-budget set and the "
                "target in service mode?)"
            )
    if args.expect_no_false_alarms:
        failures.extend(
            f"{m.scenario}: {m.false_alarms} false alarm(s) before onset"
            for m in report.metrics
            if m.false_alarms > 0
        )
    if args.expect_detection_within is not None:
        for metric in report.metrics:
            if metric.scenario == "seasonal" or metric.onset is None:
                continue
            if (
                metric.sustained_latency is None
                or metric.sustained_latency > args.expect_detection_within
            ):
                failures.append(
                    f"{metric.scenario}: no sustained alarm within "
                    f"{args.expect_detection_within} batches of onset "
                    f"(got {metric.sustained_latency})"
                )
    for failure in failures:
        print(f"expectation failed: {failure}", file=sys.stderr)
    return 3 if failures else 0


def _add_bench_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="time the parallel and tree-engine hot paths and write JSON",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny workload for CI (default: the full reference workload)",
    )
    parser.add_argument("--out", default="BENCH_PR10.json", help="report output path")
    parser.add_argument(
        "--baseline", default=None,
        help="committed bench report to diff detection latencies against "
        "(the drift_replay workload is profile-independent, so a smoke "
        "run is comparable to the committed full-profile report)",
    )
    _add_parallel_arguments(parser)
    _add_trace_arguments(parser)
    parser.set_defaults(handler=_run_bench, n_jobs=4)


def _run_bench(args) -> int:
    from repro.perf import format_report, run_benchmarks, write_report

    with _traced(args.trace, args.trace_out):
        payload = run_benchmarks(
            n_jobs=args.n_jobs,
            backend=args.parallel_backend,
            profile="smoke" if args.smoke else "full",
        )
    write_report(payload, args.out)
    print(format_report(payload))
    print(f"report written to {args.out}")
    failed = False
    if not payload["all_identical"]:
        print("error: parallel results diverged from serial", file=sys.stderr)
        failed = True
    if not payload["quality_parity"]:
        print("error: hist tree engine failed quality parity", file=sys.stderr)
        failed = True
    if not payload["fused_kernel_identical"]:
        print(
            "error: fused serving kernel diverged from the reference path",
            file=sys.stderr,
        )
        failed = True
    if not payload["fused_kernel_not_slower"]:
        print(
            "error: fused serving kernel was slower than the reference path",
            file=sys.stderr,
        )
        failed = True
    if not payload["registry_fleet_identical"]:
        print(
            "error: mmap-hydrated or sharded fleet scoring diverged from "
            "the resident path",
            file=sys.stderr,
        )
        failed = True
    if not payload["registry_fleet_memory_ok"]:
        print(
            "error: capped-cache fleet memory was not materially below "
            "eager restore",
            file=sys.stderr,
        )
        failed = True
    if not payload["drift_replay_identical"]:
        print(
            "error: drift replay diverged across parallelism or checkpoint "
            "resume",
            file=sys.stderr,
        )
        failed = True
    if not payload["drift_replay_diversity_ok"]:
        print(
            "error: drift replay scenario-diversity gate failed (missing "
            "family, pre-onset false alarms, or undetected drift)",
            file=sys.stderr,
        )
        failed = True
    if not payload["drift_replay_coverage_ok"]:
        print(
            "error: drift replay interval-coverage gate failed (empirical "
            "coverage below nominal - 5pp for conformal or CQR intervals)",
            file=sys.stderr,
        )
        failed = True
    if not payload["drift_replay_interval_alarm_ok"]:
        print(
            "error: interval-lower alarming gate failed (detected later "
            "than point-estimate alarming or added pre-onset false alarms)",
            file=sys.stderr,
        )
        failed = True
    if args.baseline is not None:
        from repro.perf.replay_bench import check_detection_regression

        baseline = json.loads(Path(args.baseline).read_text())
        for failure in check_detection_regression(payload, baseline):
            print(f"error: detection regression: {failure}", file=sys.stderr)
            failed = True
    return 2 if failed else 0


def _add_trace_command(subparsers) -> None:
    parser = subparsers.add_parser(
        "trace",
        help="run another repro command with span tracing enabled",
        description=(
            "Runs any repro subcommand under a collecting tracer, then prints "
            "the nested span tree (wall/self/CPU times plus counters) and the "
            "per-span-name cumulative totals. Example: "
            "repro trace --trace-out spans.json train --data d.npz --out out/"
        ),
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="also write the collected spans as JSON to this path",
    )
    parser.add_argument(
        "command_args", nargs=argparse.REMAINDER,
        help="the repro command to run (e.g. train --data d.npz --out out/)",
    )
    parser.set_defaults(handler=_run_trace)


def _run_trace(args) -> int:
    rest = list(args.command_args)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise ReproError("trace needs a command to run, e.g. `repro trace train ...`")
    if rest[0] == "trace":
        raise ReproError("cannot nest `repro trace trace`")
    inner = build_parser().parse_args(rest)
    # The wrapped command may carry its own --trace flags; the outer
    # tracer wins so spans are not double-reported.
    for attr in ("trace", "trace_out"):
        if hasattr(inner, attr):
            setattr(inner, attr, False if attr == "trace" else None)
    with _traced(True, args.trace_out):
        return inner.handler(inner)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Validate black box classifier predictions on unseen data",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_datasets_command(subparsers)
    _add_generate_command(subparsers)
    _add_train_command(subparsers)
    _add_check_command(subparsers)
    _add_monitor_command(subparsers)
    _add_endpoints_command(subparsers)
    _add_serve_command(subparsers)
    _add_health_command(subparsers)
    _add_serve_batch_command(subparsers)
    _add_replay_command(subparsers)
    _add_bench_command(subparsers)
    _add_trace_command(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
