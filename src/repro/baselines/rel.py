"""REL baseline: task-independent shift detection on the raw input data.

Applies univariate two-sample tests between every column of the held-out
test data and the serving data — Kolmogorov-Smirnov for numeric columns,
chi-squared for categorical columns — with Bonferroni correction across
tests (following Rabanser et al.'s protocol). A detected shift is treated
as "do not trust the predictions". The baseline never looks at the model,
which is exactly why the paper expects it to over- and under-fire: shifts
the model ignores still trip it, and shifts in columns it cannot test
(e.g. raw images) escape it entirely.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError, NotFittedError
from repro.stats.tests import bonferroni, chi2_two_sample, ks_two_sample
from repro.tabular.frame import DataFrame, is_missing


class RelationalShiftDetector:
    """Univariate KS / chi-squared shift tests over raw columns."""

    name = "REL"

    def __init__(self, alpha: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise DataValidationError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha

    def fit(self, test_frame: DataFrame) -> "RelationalShiftDetector":
        if not test_frame.numeric_columns and not test_frame.categorical_columns:
            raise DataValidationError(
                "REL needs numeric or categorical columns; the frame has none "
                "(the paper likewise could not apply REL to image data)"
            )
        self._reference = test_frame
        return self

    def _column_p_values(self, serving_frame: DataFrame) -> list[float]:
        reference = self._reference
        if serving_frame.schema != reference.schema:
            raise DataValidationError("serving frame schema differs from the fitted schema")
        if len(serving_frame) == 0:
            raise DataValidationError(
                "serving frame is empty; shift tests need at least one row"
            )
        p_values: list[float] = []
        for name in reference.numeric_columns:
            a = reference[name]
            b = serving_frame[name]
            a = a[~np.isnan(a)]
            b_clean = b[~np.isnan(b)]
            # Missingness change is detectable by comparing missing rates via
            # a chi-squared test on (missing, present) counts. Run it even
            # when one side is fully missing — that is exactly the case where
            # the missing-rate evidence matters most.
            p_values.append(self._missingness_p_value(reference[name], b))
            if a.size == 0 or b_clean.size == 0:
                # A fully-missing column is itself maximal evidence of shift.
                p_values.append(0.0)
                continue
            p_values.append(ks_two_sample(a, b_clean).p_value)
        for name in reference.categorical_columns:
            p_values.append(
                chi2_two_sample(reference[name], serving_frame[name]).p_value
            )
            p_values.append(
                self._missingness_p_value(reference[name], serving_frame[name])
            )
        return p_values

    @staticmethod
    def _missingness_p_value(reference: np.ndarray, serving: np.ndarray) -> float:
        from repro.stats.tests import chi2_from_counts

        ref_missing = int(is_missing(reference).sum())
        srv_missing = int(is_missing(serving).sum())
        counts_ref = np.array([ref_missing, len(reference) - ref_missing], dtype=float)
        counts_srv = np.array([srv_missing, len(serving) - srv_missing], dtype=float)
        return chi2_from_counts(counts_ref, counts_srv).p_value

    def shift_detected(self, serving_frame: DataFrame) -> bool:
        """True when any column test rejects after Bonferroni correction."""
        if not hasattr(self, "_reference"):
            raise NotFittedError("RelationalShiftDetector is not fitted; call fit() first")
        return bonferroni(self._column_p_values(serving_frame), alpha=self.alpha)

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving data should be trusted."""
        return not self.shift_detected(serving_frame)
