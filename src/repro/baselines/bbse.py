"""Black-box shift detection baselines (BBSE and BBSEh).

* :class:`BBSE` (Lipton et al. 2018): Kolmogorov-Smirnov tests between the
  black box model's softmax outputs on the held-out test data and on the
  serving data, one test per class dimension, Bonferroni-corrected.
* :class:`BBSEh` (Rabanser et al. 2019): a chi-squared test between the
  *hard* predicted-class counts on test and serving data.

Both follow the paper's protocol of comparing the p-value to 0.05 and
treating a detected shift as "do not trust the predictions".
"""

from __future__ import annotations

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.exceptions import DataValidationError, NotFittedError
from repro.stats.tests import bonferroni, chi2_from_counts, ks_two_sample
from repro.tabular.frame import DataFrame


class BBSE:
    """KS tests on the model's class-probability outputs."""

    name = "BBSE"

    def __init__(self, blackbox: BlackBoxModel, alpha: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise DataValidationError(f"alpha must be in (0, 1), got {alpha}")
        self.blackbox = blackbox
        self.alpha = alpha

    def fit(self, test_frame: DataFrame) -> "BBSE":
        self._test_proba = self.blackbox.predict_proba(test_frame)
        return self

    def shift_detected_from_proba(self, serving_proba: np.ndarray) -> bool:
        if not hasattr(self, "_test_proba"):
            raise NotFittedError("BBSE is not fitted; call fit() first")
        serving_proba = np.asarray(serving_proba, dtype=np.float64)
        if serving_proba.shape[1] != self._test_proba.shape[1]:
            raise DataValidationError("class-count mismatch between test and serving outputs")
        p_values = [
            ks_two_sample(serving_proba[:, k], self._test_proba[:, k]).p_value
            for k in range(serving_proba.shape[1])
        ]
        return bonferroni(p_values, alpha=self.alpha)

    def shift_detected(self, serving_frame: DataFrame) -> bool:
        return self.shift_detected_from_proba(self.blackbox.predict_proba(serving_frame))

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving data should be trusted."""
        return not self.shift_detected(serving_frame)


class BBSEh:
    """Chi-squared test on the model's hard predicted-class counts."""

    name = "BBSE-h"

    def __init__(self, blackbox: BlackBoxModel, alpha: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise DataValidationError(f"alpha must be in (0, 1), got {alpha}")
        self.blackbox = blackbox
        self.alpha = alpha

    def fit(self, test_frame: DataFrame) -> "BBSEh":
        proba = self.blackbox.predict_proba(test_frame)
        self._test_counts = self._class_counts(proba)
        return self

    @staticmethod
    def _class_counts(proba: np.ndarray) -> np.ndarray:
        assignments = np.argmax(proba, axis=1)
        return np.bincount(assignments, minlength=proba.shape[1]).astype(float)

    def shift_detected_from_proba(self, serving_proba: np.ndarray) -> bool:
        if not hasattr(self, "_test_counts"):
            raise NotFittedError("BBSEh is not fitted; call fit() first")
        serving_counts = self._class_counts(np.asarray(serving_proba, dtype=np.float64))
        if len(serving_counts) != len(self._test_counts):
            raise DataValidationError("class-count mismatch between test and serving outputs")
        result = chi2_from_counts(self._test_counts, serving_counts)
        return result.p_value < self.alpha

    def shift_detected(self, serving_frame: DataFrame) -> bool:
        return self.shift_detected_from_proba(self.blackbox.predict_proba(serving_frame))

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving data should be trusted."""
        return not self.shift_detected(serving_frame)
