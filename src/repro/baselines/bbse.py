"""Black-box shift detection baselines (BBSE and BBSEh).

* :class:`BBSE` (Lipton et al. 2018): Kolmogorov-Smirnov tests between the
  black box model's softmax outputs on the held-out test data and on the
  serving data, one test per class dimension, Bonferroni-corrected.
* :class:`BBSEh` (Rabanser et al. 2019): a chi-squared test between the
  *hard* predicted-class counts on test and serving data.

Both follow the paper's protocol of comparing the p-value to 0.05 and
treating a detected shift as "do not trust the predictions".

Both detectors can also be built directly from a retained reference
distribution via :meth:`BBSE.from_proba` / :meth:`BBSEh.from_proba` —
no black box handle needed — which is how the serving layer's degraded
mode (:mod:`repro.resilience.fallback`) constructs them from the
validator's retained test-time outputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.blackbox import BlackBoxModel
from repro.exceptions import DataValidationError, NotFittedError
from repro.stats.tests import bonferroni, chi2_from_counts, ks_two_sample
from repro.tabular.frame import DataFrame


def _as_proba(proba: np.ndarray, what: str) -> np.ndarray:
    """Validate a probability matrix: 2-D and non-empty, or fail loudly.

    An empty serving batch used to crash deep inside the test statistics
    (``np.argmax`` on a zero-length axis); now every baseline rejects it
    up front with a :class:`~repro.exceptions.DataValidationError`.
    """
    arr = np.asarray(proba, dtype=np.float64)
    if arr.ndim != 2:
        raise DataValidationError(
            f"{what} probabilities must be 2-D (rows, classes), got shape {arr.shape}"
        )
    if arr.shape[0] == 0:
        raise DataValidationError(
            f"{what} probabilities are empty; shift tests need at least one row"
        )
    return arr


class BBSE:
    """KS tests on the model's class-probability outputs."""

    name = "BBSE"

    def __init__(self, blackbox: BlackBoxModel | None, alpha: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise DataValidationError(f"alpha must be in (0, 1), got {alpha}")
        self.blackbox = blackbox
        self.alpha = alpha

    @classmethod
    def from_proba(cls, test_proba: np.ndarray, alpha: float = 0.05) -> "BBSE":
        """A fitted detector built from retained test-time outputs.

        No black box handle is attached, so only the ``*_from_proba``
        entry points work on the result.
        """
        detector = cls(blackbox=None, alpha=alpha)
        detector._test_proba = _as_proba(test_proba, "test")
        return detector

    def fit(self, test_frame: DataFrame) -> "BBSE":
        self._require_blackbox()
        self._test_proba = _as_proba(
            self.blackbox.predict_proba(test_frame), "test"
        )
        return self

    def _require_blackbox(self) -> None:
        if self.blackbox is None:
            raise DataValidationError(
                f"{self.name} was built from_proba without a black box; "
                "use the *_from_proba entry points"
            )

    def shift_detected_from_proba(self, serving_proba: np.ndarray) -> bool:
        if not hasattr(self, "_test_proba"):
            raise NotFittedError("BBSE is not fitted; call fit() first")
        serving_proba = _as_proba(serving_proba, "serving")
        if serving_proba.shape[1] != self._test_proba.shape[1]:
            raise DataValidationError("class-count mismatch between test and serving outputs")
        p_values = [
            ks_two_sample(serving_proba[:, k], self._test_proba[:, k]).p_value
            for k in range(serving_proba.shape[1])
        ]
        return bonferroni(p_values, alpha=self.alpha)

    def shift_detected(self, serving_frame: DataFrame) -> bool:
        self._require_blackbox()
        return self.shift_detected_from_proba(self.blackbox.predict_proba(serving_frame))

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving data should be trusted."""
        return not self.shift_detected(serving_frame)


class BBSEh:
    """Chi-squared test on the model's hard predicted-class counts."""

    name = "BBSE-h"

    def __init__(self, blackbox: BlackBoxModel | None, alpha: float = 0.05):
        if not 0.0 < alpha < 1.0:
            raise DataValidationError(f"alpha must be in (0, 1), got {alpha}")
        self.blackbox = blackbox
        self.alpha = alpha

    @classmethod
    def from_proba(cls, test_proba: np.ndarray, alpha: float = 0.05) -> "BBSEh":
        """A fitted detector built from retained test-time outputs."""
        detector = cls(blackbox=None, alpha=alpha)
        detector._test_counts = detector._class_counts(
            _as_proba(test_proba, "test")
        )
        return detector

    def fit(self, test_frame: DataFrame) -> "BBSEh":
        self._require_blackbox()
        proba = _as_proba(self.blackbox.predict_proba(test_frame), "test")
        self._test_counts = self._class_counts(proba)
        return self

    def _require_blackbox(self) -> None:
        if self.blackbox is None:
            raise DataValidationError(
                f"{self.name} was built from_proba without a black box; "
                "use the *_from_proba entry points"
            )

    @staticmethod
    def _class_counts(proba: np.ndarray) -> np.ndarray:
        assignments = np.argmax(proba, axis=1)
        return np.bincount(assignments, minlength=proba.shape[1]).astype(float)

    def shift_detected_from_proba(self, serving_proba: np.ndarray) -> bool:
        if not hasattr(self, "_test_counts"):
            raise NotFittedError("BBSEh is not fitted; call fit() first")
        serving_counts = self._class_counts(_as_proba(serving_proba, "serving"))
        if len(serving_counts) != len(self._test_counts):
            raise DataValidationError("class-count mismatch between test and serving outputs")
        result = chi2_from_counts(self._test_counts, serving_counts)
        return result.p_value < self.alpha

    def shift_detected(self, serving_frame: DataFrame) -> bool:
        self._require_blackbox()
        return self.shift_detected_from_proba(self.blackbox.predict_proba(serving_frame))

    def validate(self, serving_frame: DataFrame) -> bool:
        """True when the predictions on the serving data should be trusted."""
        return not self.shift_detected(serving_frame)
