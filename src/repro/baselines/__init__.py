"""Task-independent dataset shift detection baselines from §6.2."""

from repro.baselines.bbse import BBSE, BBSEh
from repro.baselines.rel import RelationalShiftDetector

__all__ = ["BBSE", "BBSEh", "RelationalShiftDetector"]
