"""Serving-side monitoring on top of the performance predictor.

The paper's deployment story: the learned performance predictor is
"deployed along with the original model" and a serving system inspects
its estimates batch by batch. :class:`BatchMonitor` packages that loop —
it scores every incoming batch, keeps a bounded history, smooths the
estimates, and distinguishes one-off blips from sustained degradation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.alarms import alarm_floor
from repro.core.predictor import PerformancePredictor
from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame


@dataclass(frozen=True)
class BatchRecord:
    """One monitored serving batch.

    ``degraded`` marks estimates produced by a fallback layer (see
    :mod:`repro.resilience.fallback`) rather than the real predictor: a
    predictor outage, not a statement about the data. Degraded records
    never alarm and are excluded from the smoothing stream and the
    sustained-alarm streak, so detection metrics measure drift, not
    outages.
    """

    batch_index: int
    n_rows: int
    estimated_score: float
    smoothed_score: float
    alarm: bool
    sustained_alarm: bool
    degraded: bool = False

    def __setstate__(self, state):
        # Records pickled before the degraded field existed restore
        # without it; default it so old snapshots keep loading.
        state.setdefault("degraded", False)
        for name, value in state.items():
            object.__setattr__(self, name, value)


@dataclass
class MonitorState:
    """Mutable history kept by the monitor.

    ``total_batches`` counts every batch ever observed — unlike
    ``len(records)``, it keeps increasing after history trimming, so
    ``BatchRecord.batch_index`` stays unique over the monitor's lifetime.
    ``total_alarms`` / ``total_sustained`` / ``total_degraded`` are the
    matching lifetime counters for alarm decisions: ``records`` is a
    *window* (trimmed to ``history``), so rates computed over it silently
    forget everything the window dropped.
    """

    records: list[BatchRecord] = field(default_factory=list)
    consecutive_alarms: int = 0
    total_batches: int = 0
    total_alarms: int = 0
    total_sustained: int = 0
    total_degraded: int = 0

    def __setstate__(self, state):
        # States pickled before the lifetime counters existed restore
        # without them; backfill from the retained window — the best
        # information an old snapshot still carries.
        self.__dict__.update(state)
        records = self.__dict__.get("records", [])
        defaults = {
            "total_alarms": sum(1 for r in records if r.alarm),
            "total_sustained": sum(1 for r in records if r.sustained_alarm),
            "total_degraded": sum(1 for r in records if r.degraded),
        }
        for name, value in defaults.items():
            self.__dict__.setdefault(name, value)


class BatchMonitor:
    """Streaming monitor around a fitted performance predictor.

    Parameters
    ----------
    predictor:
        A fitted :class:`PerformancePredictor`.
    threshold:
        Relative score drop that triggers a batch alarm (paper's t).
    smoothing:
        Exponential smoothing factor in (0, 1]; 1 disables smoothing. The
        smoothed estimate drives the *sustained* alarm, which is what an
        on-call rotation should page on.
    patience:
        Number of consecutive alarming batches before the alarm is
        considered sustained.
    history:
        Maximum number of batch records retained.
    """

    def __init__(
        self,
        predictor: PerformancePredictor,
        threshold: float = 0.05,
        smoothing: float = 0.5,
        patience: int = 2,
        history: int = 1000,
    ):
        if not 0.0 < threshold < 1.0:
            raise DataValidationError(f"threshold must be in (0, 1), got {threshold}")
        if not 0.0 < smoothing <= 1.0:
            raise DataValidationError(f"smoothing must be in (0, 1], got {smoothing}")
        if patience < 1:
            raise DataValidationError(f"patience must be >= 1, got {patience}")
        if history < 1:
            raise DataValidationError(f"history must be >= 1, got {history}")
        if not hasattr(predictor, "test_score_"):
            raise DataValidationError("predictor must be fitted before monitoring")
        self.predictor = predictor
        self.threshold = threshold
        self.smoothing = smoothing
        self.patience = patience
        self.history = history
        self.state = MonitorState()
        self._smoothed: float | None = None
        self._smoothed_alarm: float | None = None

    @property
    def expected_score(self) -> float:
        return self.predictor.test_score_

    @property
    def alarm_floor(self) -> float:
        """Scores below this trigger a batch alarm."""
        return alarm_floor(self.expected_score, self.threshold)

    def reset(self) -> None:
        """Forget all observed batches and smoothing state.

        Use after a known remediation (rollback, pipeline fix) so stale
        alarm streaks and the smoothed estimate don't carry over into the
        healthy regime.
        """
        self.state = MonitorState()
        self._smoothed = None
        self._smoothed_alarm = None

    def observe(self, batch: DataFrame) -> BatchRecord:
        """Score one serving batch and update the monitor state."""
        if len(batch) == 0:
            raise DataValidationError("cannot monitor an empty batch")
        return self.observe_estimate(self.predictor.predict(batch), len(batch))

    def observe_estimate(
        self,
        estimate: float,
        n_rows: int,
        degraded: bool = False,
        alarm_score: float | None = None,
    ) -> BatchRecord:
        """Record an externally computed score estimate.

        The serving layer computes ``predict_proba`` once per batch and
        derives estimate, interval and validation from it; this entry
        point lets the monitor join that single pass instead of
        re-scoring the batch itself.

        ``degraded`` marks a fallback estimate (the predictor itself was
        down — see :mod:`repro.resilience.fallback`). Degraded estimates
        are recorded and counted, but they carry no information about the
        serving *data*, so they leave the smoothed score and the
        consecutive-alarm streak untouched and never alarm themselves —
        otherwise a predictor outage would be indistinguishable from
        drift in the detection metrics. A sustained alarm already raised
        by real estimates stays raised through the outage.

        ``alarm_score`` decouples what *alarms* from what is *reported*:
        with ``alarm_on="interval_lower"`` the serving layer passes the
        interval's lower bound here, so alarms fire when the floor can no
        longer be ruled out at the configured coverage, while
        ``estimated_score``/``smoothed_score`` keep tracking the point
        estimate. The alarm score gets its own smoothing stream (same
        constant) driving the sustained check. ``None`` (the default)
        alarms on the estimate itself — the two streams then coincide and
        behavior is exactly the historical one.
        """
        if n_rows < 1:
            raise DataValidationError(f"n_rows must be >= 1, got {n_rows}")
        score = estimate if alarm_score is None else alarm_score
        if degraded:
            alarm = False
            self.state.total_degraded += 1
        else:
            if self._smoothed is None:
                self._smoothed = estimate
            else:
                self._smoothed = (
                    self.smoothing * estimate
                    + (1.0 - self.smoothing) * self._smoothed
                )
            if self._smoothed_alarm is None:
                self._smoothed_alarm = score
            else:
                self._smoothed_alarm = (
                    self.smoothing * score
                    + (1.0 - self.smoothing) * self._smoothed_alarm
                )
            alarm = score < self.alarm_floor
            if alarm:
                self.state.consecutive_alarms += 1
                self.state.total_alarms += 1
            else:
                self.state.consecutive_alarms = 0
        sustained = (
            self.state.consecutive_alarms >= self.patience
            and self._smoothed_alarm is not None
            and self._smoothed_alarm < self.alarm_floor
        )
        if sustained:
            self.state.total_sustained += 1
        record = BatchRecord(
            batch_index=self.state.total_batches,
            n_rows=n_rows,
            estimated_score=float(estimate),
            smoothed_score=float(
                estimate if self._smoothed is None else self._smoothed
            ),
            alarm=alarm,
            sustained_alarm=sustained,
            degraded=degraded,
        )
        self.state.records.append(record)
        self.state.total_batches += 1
        if len(self.state.records) > self.history:
            del self.state.records[: len(self.state.records) - self.history]
        return record

    def recent_records(self, n: int = 10) -> list[BatchRecord]:
        """The most recent ``n`` batch records, oldest first.

        ``n <= 0`` returns an empty list (``records[-0:]`` would silently
        alias the *entire* history).
        """
        if n <= 0:
            return []
        return self.state.records[-n:]

    def alarm_rate(self) -> float:
        """Fraction of **all** observed batches that alarmed (0 if none).

        Computed from the lifetime counters, not the trimmed ``records``
        window — after ``history`` trimming a window average silently
        forgets every older alarm. Degraded batches never alarm (they
        measure an outage, not the data), so they dilute this rate; see
        :meth:`windowed_alarm_rate` for the recent-window variant.
        """
        if self.state.total_batches == 0:
            return 0.0
        return self.state.total_alarms / self.state.total_batches

    def windowed_alarm_rate(self) -> float:
        """Fraction of the *retained* records window that alarmed.

        The old (buggy) behaviour of :meth:`alarm_rate`, kept explicit:
        useful as a recency signal once the monitor has outlived its
        ``history`` budget, meaningless as a lifetime rate.
        """
        if not self.state.records:
            return 0.0
        return float(np.mean([record.alarm for record in self.state.records]))

    def summary(self) -> str:
        """One-line state summary for logs and dashboards."""
        if not self.state.records:
            return "BatchMonitor: no batches observed"
        latest = self.state.records[-1]
        state = "SUSTAINED-ALARM" if latest.sustained_alarm else (
            "alarm" if latest.alarm else "ok"
        )
        return (
            f"BatchMonitor: {self.state.total_batches} batches, "
            f"latest estimate {latest.estimated_score:.4f} "
            f"(expected {self.expected_score:.4f}, floor {self.alarm_floor:.4f}), "
            f"alarm rate {self.alarm_rate():.2f}, state: {state}"
        )
