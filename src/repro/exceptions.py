"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A dataframe operation referenced a column or type that does not fit the schema."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to make progress (e.g. diverging loss)."""


class DataValidationError(ReproError):
    """Input data failed validation (wrong shape, dtype, or empty input)."""


class CorruptionError(ReproError):
    """An error generator was applied to data it cannot corrupt."""


class ServiceError(ReproError):
    """The (emulated) cloud model service rejected a request."""
