"""Exception hierarchy for the repro library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A dataframe operation referenced a column or type that does not fit the schema."""


class NotFittedError(ReproError):
    """An estimator method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to make progress (e.g. diverging loss)."""


class DataValidationError(ReproError):
    """Input data failed validation (wrong shape, dtype, or empty input)."""


class CorruptionError(ReproError):
    """An error generator was applied to data it cannot corrupt."""


class ServiceError(ReproError):
    """The (emulated) cloud model service rejected a request."""


class ResilienceError(ReproError):
    """Base class for fault-tolerance failures (retry, timeout, breaker)."""


class RetryExhaustedError(ResilienceError):
    """A retried operation failed on every allowed attempt.

    Carries the attempt count and the final exception so callers (e.g.
    the event router's dead-letter path) can report both without parsing
    the message.
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class DeadlineExceededError(ResilienceError):
    """An operation ran past (or started after) its deadline."""


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open and the call was shed without running."""


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable or belongs to a different run."""


class ParallelExecutionError(ReproError):
    """A task submitted to a parallel executor failed.

    Carries the failing task's index, the original exception type and
    message, and (when available) the worker-side traceback, so callers
    see a single library error instead of a bare pool traceback.
    """

    def __init__(
        self,
        message: str,
        task_index: int | None = None,
        original_type: str | None = None,
    ):
        super().__init__(message)
        self.task_index = task_index
        self.original_type = original_type


class DaemonError(ReproError):
    """Base class for serving-daemon failures (admission, lifecycle)."""


class QueueFullError(DaemonError):
    """An endpoint queue is at capacity and the request was shed.

    Carries ``retry_after_seconds`` so the HTTP front end can answer
    429 with a ``Retry-After`` header instead of inventing one.
    """

    def __init__(self, message: str, retry_after_seconds: float = 1.0):
        super().__init__(message)
        self.retry_after_seconds = retry_after_seconds


class DaemonClosedError(DaemonError):
    """The daemon is draining (or stopped) and no longer accepts requests."""
