"""Persistent async serving daemon (``repro serve``).

Layers, bottom-up:

* :mod:`repro.daemon.queues` — bounded per-endpoint request queues with
  admission control (reject / drop-oldest shed policies).
* :mod:`repro.daemon.coalescer` — micro-batch gathering under the
  max-rows / max-wait rule on an injectable monotonic clock.
* :mod:`repro.daemon.workers` — gather → merge → score → fan-out worker
  threads over :meth:`~repro.serving.service.ValidationService.score_now`
  (which keeps the PR-5 resilient scoring path).
* :mod:`repro.daemon.protocol` — the JSON wire format for frames and
  batch results.
* :mod:`repro.daemon.server` — the stdlib HTTP front end (``/v1/...``,
  ``/healthz``, ``/metrics``, ``/spans``).
* :mod:`repro.daemon.lifecycle` — :class:`ServingDaemon`: start,
  SIGTERM graceful drain, SIGHUP config reload.
* :mod:`repro.daemon.client` — stdlib urllib client (``repro health``).
"""

from repro.daemon.client import DaemonClient, DaemonResponse
from repro.daemon.coalescer import IDLE_POLL_SECONDS, MicroBatchCoalescer
from repro.daemon.lifecycle import SPAN_STORE_CAPACITY, DrainReport, ServingDaemon
from repro.daemon.protocol import (
    frame_from_payload,
    frame_to_payload,
    result_to_payload,
)
from repro.daemon.queues import SHED_POLICIES, BoundedRequestQueue, ScoreRequest
from repro.daemon.server import MAX_BODY_BYTES, DaemonHTTPServer
from repro.daemon.workers import EndpointWorker

__all__ = [
    "BoundedRequestQueue",
    "DaemonClient",
    "DaemonHTTPServer",
    "DaemonResponse",
    "DrainReport",
    "EndpointWorker",
    "IDLE_POLL_SECONDS",
    "MAX_BODY_BYTES",
    "MicroBatchCoalescer",
    "SHED_POLICIES",
    "SPAN_STORE_CAPACITY",
    "ScoreRequest",
    "ServingDaemon",
    "frame_from_payload",
    "frame_to_payload",
    "result_to_payload",
]
