"""Bounded per-endpoint request queues with admission control.

The daemon's backpressure story lives here. Every endpoint owns one
:class:`BoundedRequestQueue`; the HTTP front end *admits* a request into
the queue (or sheds it), worker threads *drain* the queue through the
coalescer. Shedding is a policy decision:

* ``"reject"`` — a full queue refuses the *new* request with
  :class:`~repro.exceptions.QueueFullError` (the front end answers 429
  with ``Retry-After``). Oldest-first fairness: whoever queued first is
  scored first.
* ``"drop_oldest"`` — a full queue admits the new request and evicts the
  oldest waiting one, which is failed with the same error. Freshness
  over fairness: useful when stale validation answers are worthless.

A queue can be *closed* (graceful drain): admission stops immediately,
but everything already queued remains poppable so workers flush it —
requests are answered exactly once, never dropped on shutdown.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import (
    DaemonClosedError,
    DataValidationError,
    QueueFullError,
)
from repro.serving.service import BatchResult
from repro.tabular.frame import DataFrame

#: Valid shed policies for a full queue.
SHED_POLICIES = ("reject", "drop_oldest")


@dataclass
class ScoreRequest:
    """One in-flight scoring request and its result slot.

    The HTTP handler thread blocks on :meth:`wait` while a worker
    coalesces the request into a micro-batch, scores it, and calls
    :meth:`set_result` (or :meth:`set_error`) exactly once.
    """

    endpoint: str
    frame: DataFrame
    version: str | None = None
    enqueued_at: float = 0.0
    coalesced_requests: int | None = None
    coalesced_rows: int | None = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)
    result: BatchResult | None = field(default=None, repr=False)
    error: BaseException | None = field(default=None, repr=False)

    @property
    def n_rows(self) -> int:
        return len(self.frame)

    def set_result(self, result: BatchResult) -> None:
        self.result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self.error = error
        self._done.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the request was answered; False on timeout."""
        return self._done.wait(timeout)

    @property
    def done(self) -> bool:
        return self._done.is_set()


class BoundedRequestQueue:
    """A thread-safe FIFO of :class:`ScoreRequest` with a hard depth bound.

    Parameters
    ----------
    capacity:
        Maximum queued (not yet popped) requests.
    shed_policy:
        What a full queue does — see the module docstring.
    retry_after_seconds:
        Hint carried by :class:`~repro.exceptions.QueueFullError` for the
        429 ``Retry-After`` header.
    clock:
        Injectable monotonic clock stamped onto ``enqueued_at``.
    """

    def __init__(
        self,
        capacity: int,
        shed_policy: str = "reject",
        retry_after_seconds: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity < 1:
            raise DataValidationError(f"queue capacity must be >= 1, got {capacity}")
        if shed_policy not in SHED_POLICIES:
            raise DataValidationError(
                f"shed_policy must be one of {SHED_POLICIES}, got {shed_policy!r}"
            )
        if retry_after_seconds <= 0:
            raise DataValidationError(
                f"retry_after_seconds must be > 0, got {retry_after_seconds}"
            )
        self.capacity = capacity
        self.shed_policy = shed_policy
        self.retry_after_seconds = retry_after_seconds
        self._clock = clock
        self._items: deque[ScoreRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._shed_total = 0
        self._peak_depth = 0

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def put(self, request: ScoreRequest) -> ScoreRequest | None:
        """Admit a request; returns the request *shed* by this admission.

        * queue has room → admitted, returns ``None``;
        * full + ``"reject"`` → raises
          :class:`~repro.exceptions.QueueFullError` (the new request was
          never queued);
        * full + ``"drop_oldest"`` → admitted, returns the evicted oldest
          request — the caller must answer it (the daemon fails it with
          the same queue-full error so its client sees a 429).
        """
        with self._not_empty:
            if self._closed:
                raise DaemonClosedError(
                    f"queue for {request.endpoint!r} is closed (daemon draining)"
                )
            request.enqueued_at = self._clock()
            shed: ScoreRequest | None = None
            if len(self._items) >= self.capacity:
                self._shed_total += 1
                if self.shed_policy == "reject":
                    raise QueueFullError(
                        f"endpoint {request.endpoint!r} queue is full "
                        f"({self.capacity} waiting)",
                        retry_after_seconds=self.retry_after_seconds,
                    )
                shed = self._items.popleft()
            self._items.append(request)
            self._peak_depth = max(self._peak_depth, len(self._items))
            self._not_empty.notify()
            return shed

    # ------------------------------------------------------------------ #
    # Draining
    # ------------------------------------------------------------------ #

    def pop(self, timeout: float | None = None) -> ScoreRequest | None:
        """Oldest queued request; ``None`` on timeout or closed-and-empty.

        ``timeout=None`` blocks until an item arrives or the queue is
        closed; ``timeout=0`` never blocks.
        """
        with self._not_empty:
            if not self._items and timeout != 0:
                deadline = None if timeout is None else time.monotonic() + timeout
                while not self._items and not self._closed:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        break
                    self._not_empty.wait(remaining)
            if not self._items:
                return None
            return self._items.popleft()

    def close(self) -> None:
        """Stop admission; queued requests stay poppable (drain mode)."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def saturated(self) -> bool:
        with self._lock:
            return len(self._items) >= self.capacity

    @property
    def shed_total(self) -> int:
        """Requests shed by admission control since construction."""
        with self._lock:
            return self._shed_total

    @property
    def peak_depth(self) -> int:
        with self._lock:
            return self._peak_depth

    def __len__(self) -> int:
        return self.depth
