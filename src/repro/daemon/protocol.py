"""The daemon's JSON wire format: frames in, batch results out.

A score request body is a JSON object declaring its columns and types::

    {
      "columns": {"age": [34, 51, null], "city": ["berlin", null, "rome"]},
      "types":   {"age": "numeric",      "city": "categorical"}
    }

JSON has no ``NaN``, so ``null`` marks a missing cell in every column
type (numeric ``null`` becomes ``nan`` on decode and back again on
encode). Image columns travel as nested ``(n, h, w)`` lists.

The response mirrors :class:`~repro.serving.service.BatchResult` plus
daemon-side context (how many requests were coalesced into the scored
batch, and the time the request spent queued)::

    {"endpoint": "income", "estimated_score": 0.82, "alarm": false,
     "coalesced_requests": 4, "coalesced_rows": 120, ...}
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DataValidationError
from repro.serving.service import BatchResult
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType

_TYPE_NAMES = {ctype.value: ctype for ctype in ColumnType}


def frame_to_payload(frame: DataFrame) -> dict:
    """Encode a frame as a JSON-ready request body."""
    columns: dict[str, list] = {}
    types: dict[str, str] = {}
    for spec in frame.schema:
        values = frame[spec.name]
        types[spec.name] = spec.ctype.value
        if spec.ctype is ColumnType.NUMERIC:
            columns[spec.name] = [
                None if math.isnan(v) else float(v) for v in values
            ]
        elif spec.ctype is ColumnType.IMAGE:
            columns[spec.name] = np.asarray(values, dtype=float).tolist()
        else:
            columns[spec.name] = [None if v is None else str(v) for v in values]
    return {"columns": columns, "types": types}


def frame_from_payload(payload: dict) -> DataFrame:
    """Decode a request body into a frame, validating shape loudly."""
    if not isinstance(payload, dict):
        raise DataValidationError("request body must be a JSON object")
    missing = {"columns", "types"} - set(payload)
    if missing:
        raise DataValidationError(f"request body is missing {sorted(missing)}")
    columns = payload["columns"]
    types = payload["types"]
    if not isinstance(columns, dict) or not columns:
        raise DataValidationError("'columns' must be a non-empty object")
    if not isinstance(types, dict) or set(types) != set(columns):
        raise DataValidationError("'types' must name exactly the 'columns' keys")
    data: dict[str, object] = {}
    ctypes: dict[str, ColumnType] = {}
    for name, raw_type in types.items():
        ctype = _TYPE_NAMES.get(str(raw_type))
        if ctype is None:
            raise DataValidationError(
                f"column {name!r} has unknown type {raw_type!r}; "
                f"valid types: {sorted(_TYPE_NAMES)}"
            )
        values = columns[name]
        if not isinstance(values, list):
            raise DataValidationError(f"column {name!r} must be a JSON array")
        if ctype is ColumnType.NUMERIC:
            values = [float("nan") if v is None else float(v) for v in values]
        ctypes[name] = ctype
        data[name] = values
    return DataFrame.from_dict(data, ctypes)


def result_to_payload(
    result: BatchResult,
    coalesced_requests: int | None = None,
    coalesced_rows: int | None = None,
    queued_seconds: float | None = None,
) -> dict:
    """Encode a scored batch result (plus daemon context) for the response."""
    payload = {
        "endpoint": result.endpoint,
        "version": result.version,
        "batch_index": result.batch_index,
        "n_rows": result.n_rows,
        "estimated_score": result.estimated_score,
        "smoothed_score": result.smoothed_score,
        "expected_score": result.expected_score,
        "alarm_floor": result.alarm_floor,
        "alarm": result.alarm,
        "sustained_alarm": result.sustained_alarm,
        "interval": None if result.interval is None else list(result.interval),
        "interval_width": (
            None
            if result.interval is None
            else result.interval[2] - result.interval[0]
        ),
        "interval_coverage": result.interval_coverage,
        "trusted": result.trusted,
        "degraded": result.degraded,
        "fallback": result.fallback,
    }
    if coalesced_requests is not None:
        payload["coalesced_requests"] = coalesced_requests
    if coalesced_rows is not None:
        payload["coalesced_rows"] = coalesced_rows
    if queued_seconds is not None:
        payload["queued_seconds"] = queued_seconds
    return payload
