"""Stdlib HTTP front end for the serving daemon.

Four routes, no framework, no new dependencies:

* ``POST /v1/endpoints/<name>/score[?version=V]`` — admit a frame into
  the endpoint's queue and block until its micro-batch is scored.
  Overload answers ``429`` with a ``Retry-After`` header (admission
  control), a draining daemon answers ``503``, an unknown endpoint
  ``404``, a malformed body ``400``, and a request whose batch did not
  score within the configured timeout ``504``.
* ``GET /healthz`` — JSON health summary; ``503`` when degraded (an
  open circuit breaker or a saturated queue) or draining.
* ``GET /metrics`` — Prometheus text exposition from the shared
  :class:`~repro.serving.metrics.MetricsRegistry`, span aggregates
  bridged in.
* ``GET /spans`` — the daemon's collected spans as JSON.

Handlers run on :class:`~http.server.ThreadingHTTPServer` threads; the
blocking wait in ``score`` therefore occupies one handler thread per
in-flight request, which is exactly the admission-control story — the
queue bound, not the thread pool, is the contract.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.daemon.protocol import frame_from_payload, result_to_payload
from repro.exceptions import (
    DaemonClosedError,
    DataValidationError,
    QueueFullError,
    ReproError,
)
from repro.obs import current_tracer

_SCORE_PREFIX = "/v1/endpoints/"
_SCORE_SUFFIX = "/score"

#: Cap on accepted request bodies (64 MiB) — a daemon guarding models
#: should not be OOM-able by one oversized POST.
MAX_BODY_BYTES = 64 * 1024 * 1024


class DaemonHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ServingDaemon`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], daemon):
        super().__init__(address, DaemonRequestHandler)
        self.validation_daemon = daemon

    @property
    def port(self) -> int:
        return self.server_address[1]


class DaemonRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self):
        return self.server.validation_daemon

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #

    def do_GET(self) -> None:  # noqa: N802 - stdlib handler API
        path = urlparse(self.path).path
        if path == "/healthz":
            self._handle_health()
        elif path == "/metrics":
            self._handle_metrics()
        elif path == "/spans":
            self._handle_spans()
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib handler API
        parsed = urlparse(self.path)
        path = parsed.path
        if path.startswith(_SCORE_PREFIX) and path.endswith(_SCORE_SUFFIX):
            name = path[len(_SCORE_PREFIX):-len(_SCORE_SUFFIX)]
            query = parse_qs(parsed.query)
            version = query.get("version", [None])[0]
            self._handle_score(name, version)
        else:
            self._send_json(404, {"error": f"no route {path!r}"})

    # ------------------------------------------------------------------ #
    # Score
    # ------------------------------------------------------------------ #

    def _handle_score(self, name: str, version: str | None) -> None:
        daemon = self.daemon
        with current_tracer().span("daemon.accept", endpoint=name) as span:
            try:
                length = int(self.headers.get("Content-Length", 0))
                if length <= 0:
                    self._send_json(400, {"error": "request body required"})
                    return
                if length > MAX_BODY_BYTES:
                    self._send_json(
                        413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
                    )
                    return
                body = self.rfile.read(length)
                payload = json.loads(body)
                frame = frame_from_payload(payload)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                self._send_json(400, {"error": f"invalid JSON body: {error}"})
                return
            except DataValidationError as error:
                self._send_json(400, {"error": str(error)})
                return

            try:
                request = daemon.submit(name, frame, version=version)
            except QueueFullError as error:
                span.add(outcome_code=429)
                self._send_json(
                    429,
                    {"error": str(error)},
                    headers={
                        "Retry-After": _format_retry_after(
                            error.retry_after_seconds
                        )
                    },
                )
                return
            except DaemonClosedError as error:
                span.add(outcome_code=503)
                self._send_json(503, {"error": str(error)})
                return
            except DataValidationError as error:
                # Unknown endpoint / version or an unscorable frame.
                code = 404 if "no endpoint" in str(error) or "version" in str(error) else 400
                span.add(outcome_code=code)
                self._send_json(code, {"error": str(error)})
                return

        if not request.wait(daemon.settings.request_timeout_seconds):
            self._send_json(
                504,
                {
                    "error": (
                        "request accepted but its batch did not score within "
                        f"{daemon.settings.request_timeout_seconds}s"
                    )
                },
            )
            return
        if request.error is not None:
            if isinstance(request.error, QueueFullError):
                # drop_oldest shed this request after admission.
                self._send_json(
                    429,
                    {"error": str(request.error)},
                    headers={
                        "Retry-After": _format_retry_after(
                            request.error.retry_after_seconds
                        )
                    },
                )
                return
            if isinstance(request.error, DataValidationError):
                # The batch failed validation at scoring time (e.g. a
                # schema mismatch) — the caller's fault, not upstream's.
                status = 400
            elif isinstance(request.error, ReproError):
                status = 502
            else:
                status = 500
            self._send_json(
                status,
                {
                    "error": f"{type(request.error).__name__}: {request.error}",
                },
            )
            return
        queued = daemon.clock() - request.enqueued_at
        self._send_json(
            200,
            result_to_payload(
                request.result,
                coalesced_requests=request.coalesced_requests,
                coalesced_rows=request.coalesced_rows,
                queued_seconds=round(max(0.0, queued), 6),
            ),
        )

    # ------------------------------------------------------------------ #
    # Introspection routes
    # ------------------------------------------------------------------ #

    def _handle_health(self) -> None:
        health = self.daemon.health()
        code = 200 if health["status"] == "ok" else 503
        self._send_json(code, health)

    def _handle_metrics(self) -> None:
        text = self.daemon.metrics_text()
        self._send_bytes(200, text.encode("utf-8"), "text/plain; version=0.0.4")

    def _handle_spans(self) -> None:
        self._send_bytes(
            200, self.daemon.spans_json().encode("utf-8"), "application/json"
        )

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #

    def _send_json(
        self, code: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self._send_bytes(code, body, "application/json", headers)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        try:
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to answer
        self.daemon.record_http(self.command, code)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        # Access logs go to metrics (daemon_http_responses_total), not
        # stderr — a daemon under load must not block on terminal I/O.
        pass


def _format_retry_after(seconds: float) -> str:
    # Retry-After is integer seconds; always advise at least 1.
    return str(max(1, int(round(seconds))))
