"""Stdlib client for a running serving daemon.

:class:`DaemonClient` is what ``repro health`` and the smoke tests use
to talk to a daemon over HTTP — :mod:`urllib.request` only, mirroring
the server's no-new-dependencies rule. Error responses are surfaced as
:class:`DaemonResponse` objects (status + decoded payload) rather than
raised, so callers can branch on 429/503 without exception gymnastics.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass

from repro.daemon.protocol import frame_to_payload
from repro.exceptions import DaemonError
from repro.tabular.frame import DataFrame


@dataclass(frozen=True)
class DaemonResponse:
    """One HTTP exchange with the daemon, already decoded."""

    status: int
    payload: dict
    headers: dict[str, str]

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def retry_after(self) -> int | None:
        value = self.headers.get("Retry-After")
        return int(value) if value is not None else None


class DaemonClient:
    """Talks to one daemon base URL (e.g. ``http://127.0.0.1:8099``)."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #

    def score(
        self, endpoint: str, frame: DataFrame, version: str | None = None
    ) -> DaemonResponse:
        """POST a frame for scoring; returns the decoded response."""
        path = f"/v1/endpoints/{endpoint}/score"
        if version is not None:
            path += f"?version={version}"
        body = json.dumps(frame_to_payload(frame)).encode("utf-8")
        return self._request("POST", path, body)

    def health(self) -> DaemonResponse:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The raw Prometheus exposition text."""
        response = self._request("GET", "/metrics", decode_json=False)
        if not response.ok:
            raise DaemonError(f"/metrics answered {response.status}")
        return response.payload["text"]

    def spans(self) -> list[dict]:
        response = self._request("GET", "/spans")
        if not response.ok:
            raise DaemonError(f"/spans answered {response.status}")
        return response.payload["spans"]

    # ------------------------------------------------------------------ #

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        decode_json: bool = True,
    ) -> DaemonResponse:
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read()
                status = response.status
                headers = dict(response.headers.items())
        except urllib.error.HTTPError as error:
            # 4xx/5xx still carry a JSON body we want to surface.
            raw = error.read()
            status = error.code
            headers = dict(error.headers.items())
        except (urllib.error.URLError, OSError) as error:
            raise DaemonError(
                f"cannot reach daemon at {self.base_url}: {error}"
            ) from error
        if not decode_json:
            return DaemonResponse(
                status, {"text": raw.decode("utf-8", "replace")}, headers
            )
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": raw.decode("utf-8", "replace")}
        if isinstance(payload, list):
            payload = {"spans": payload}
        return DaemonResponse(status, payload, headers)
