"""Daemon lifecycle: start, serve, drain on SIGTERM, reload on SIGHUP.

:class:`ServingDaemon` composes the whole persistent-serving stack —
registry, :class:`~repro.serving.service.ValidationService` (with the
PR-5 resilient scoring path), per-endpoint bounded queues, coalescing
workers, the HTTP front end and a span tracer — behind three verbs:

* :meth:`start` — bind the port, install the tracer, spawn workers.
* :meth:`drain` — graceful shutdown: admission stops (new requests get
  503), queues close, workers flush every queued request exactly once,
  the registry is snapshotted (when configured), then the HTTP server
  stops. No admitted request is ever dropped.
* :meth:`reload` — re-read the config file: endpoints present in the
  new config are re-registered (fresh artifacts / policies) and new
  ones gain queues and workers; endpoints that disappeared stop
  admitting but keep their registry entries until their queues drain,
  so in-flight batches still score.

Signals map onto those verbs through :meth:`install_signal_handlers`:
handlers only set flags (async-signal safety), and :meth:`run_forever`
— the ``repro serve`` main loop — acts on them from the main thread.

The request lifecycle is fully traced: ``daemon.accept`` (HTTP parse +
admission) → ``daemon.enqueue`` (queue admission) → ``daemon.coalesce``
(group gathering + fan-out) → ``serving.score`` (the existing service
span), so ``/spans`` and the throughput bench can reconstruct end-to-end
latency from one store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.daemon.coalescer import MicroBatchCoalescer
from repro.daemon.queues import BoundedRequestQueue, ScoreRequest
from repro.daemon.server import DaemonHTTPServer
from repro.daemon.workers import EndpointWorker
from repro.exceptions import DaemonClosedError, DataValidationError
from repro.obs import SpanStore, Tracer, bridge_spans, set_tracer, spans_to_json
from repro.obs.trace import current_tracer
from repro.serving.config import (
    DaemonSettings,
    ResilienceSettings,
    load_daemon_settings,
    load_kernel_setting,
    load_resilience_settings,
    registry_from_config,
)
from repro.serving.events import EventRouter
from repro.serving.metrics import MetricsRegistry
from repro.serving.registry import Endpoint, EndpointEntry, ModelRegistry
from repro.serving.service import ValidationService
from repro.tabular.frame import DataFrame

#: Bounded span memory for a long-running daemon.
SPAN_STORE_CAPACITY = 16384

_COALESCE_COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)
_QUEUE_WAIT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


@dataclass(frozen=True)
class DrainReport:
    """What a graceful drain accomplished."""

    answered_requests: int
    scored_groups: int
    unanswered_requests: int
    snapshot_path: str | None = None

    @property
    def clean(self) -> bool:
        return self.unanswered_requests == 0


class ServingDaemon:
    """The persistent async serving daemon (``repro serve``).

    Construct programmatically from a registry, or from a config file
    via :meth:`from_config` (which also enables SIGHUP reload).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        settings: DaemonSettings | None = None,
        resilience: ResilienceSettings | None = None,
        events: EventRouter | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        config_path: str | Path | None = None,
        kernel: str = "fused",
    ):
        self.settings = settings if settings is not None else DaemonSettings()
        self.clock = clock
        self.config_path = None if config_path is None else Path(config_path)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.service = ValidationService(
            registry,
            metrics=self.metrics,
            events=events,
            clock=clock,
            resilience=resilience,
            kernel=kernel,
        )
        self.tracer = Tracer(SpanStore(capacity=SPAN_STORE_CAPACITY))

        self._queues: dict[str, BoundedRequestQueue] = {}
        self._score_locks: dict[str, threading.Lock] = {}
        self._workers: list[EndpointWorker] = []
        self._lock = threading.RLock()
        self._accepting = False
        self._started = False
        self._drained = False
        self._previous_tracer = None
        self._server: DaemonHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._stop_event = threading.Event()
        self._reload_event = threading.Event()
        self._bridge_cursor = 0
        self._bridge_lock = threading.Lock()

        self._accepted = self.metrics.counter(
            "daemon_accepted_total", "Requests admitted into a queue", ("endpoint",)
        )
        self._shed = self.metrics.counter(
            "daemon_shed_total",
            "Requests shed by admission control",
            ("endpoint", "policy"),
        )
        self._queue_depth = self.metrics.gauge(
            "daemon_queue_depth", "Requests currently queued", ("endpoint",)
        )
        self._group_requests = self.metrics.histogram(
            "daemon_coalesced_requests",
            "Requests merged into each scored micro-batch",
            ("endpoint",),
            buckets=_COALESCE_COUNT_BUCKETS,
        )
        self._queue_wait = self.metrics.histogram(
            "daemon_queue_wait_seconds",
            "Time requests spent queued before scoring",
            ("endpoint",),
            buckets=_QUEUE_WAIT_BUCKETS,
        )
        self._http_responses = self.metrics.counter(
            "daemon_http_responses_total",
            "HTTP responses by method and status code",
            ("method", "code"),
        )
        self._reloads = self.metrics.counter(
            "daemon_config_reloads_total", "Successful SIGHUP config reloads"
        )

        # Entries, not endpoints(): queue/worker setup needs only the
        # key and policy, so a lazy store-backed registry starts the
        # daemon without hydrating a single endpoint — models
        # materialize on first scored request.
        for entry in registry.entries():
            self._ensure_endpoint(entry)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_config(
        cls,
        path: str | Path,
        host: str | None = None,
        port: int | None = None,
        workers: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        events: EventRouter | None = None,
    ) -> "ServingDaemon":
        """Build a daemon from a serving config (enables SIGHUP reload).

        ``host`` / ``port`` / ``workers`` override the config's
        ``daemon`` block — the CLI flags.
        """
        from dataclasses import replace

        config_path = Path(path)
        settings = load_daemon_settings(config_path)
        overrides = {}
        if host is not None:
            overrides["host"] = host
        if port is not None:
            overrides["port"] = port
        if workers is not None:
            overrides["workers"] = workers
        if overrides:
            settings = replace(settings, **overrides)
        return cls(
            registry_from_config(config_path),
            settings=settings,
            resilience=load_resilience_settings(config_path),
            events=events,
            clock=clock,
            config_path=config_path,
            kernel=load_kernel_setting(config_path),
        )

    # ------------------------------------------------------------------ #
    # Endpoint plumbing
    # ------------------------------------------------------------------ #

    def _ensure_endpoint(self, endpoint: Endpoint | EndpointEntry) -> None:
        """Create (or refresh) the queue / coalescer / workers for one
        endpoint (or its entry view — only the identity and policy are
        read). Must hold ``self._lock`` or run pre-start."""
        key = endpoint.key
        policy = endpoint.policy
        max_batch = (
            policy.micro_batch_size
            if policy.micro_batch_size is not None
            else self.settings.max_batch_rows
        )
        max_wait = (
            policy.max_wait_seconds
            if policy.micro_batch_size is not None
            else self.settings.max_wait_seconds
        )
        if key in self._queues:
            # Reload path: refresh coalescing parameters in place.
            for worker in self._workers:
                if worker.key == key:
                    worker.coalescer.max_batch_rows = max_batch
                    worker.coalescer.max_wait_seconds = max_wait
            return
        queue = BoundedRequestQueue(
            capacity=self.settings.queue_depth,
            shed_policy=self.settings.shed_policy,
            retry_after_seconds=self.settings.retry_after_seconds,
            clock=self.clock,
        )
        self._queues[key] = queue
        self._score_locks[key] = threading.Lock()
        for index in range(self.settings.workers):
            worker = EndpointWorker(
                key=key,
                name=endpoint.name,
                version=endpoint.version,
                coalescer=MicroBatchCoalescer(
                    queue,
                    max_batch_rows=max_batch,
                    max_wait_seconds=max_wait,
                    clock=self.clock,
                ),
                service=self.service,
                score_lock=self._score_locks[key],
                on_group=lambda n, rows, waits, k=key: self._record_group(
                    k, n, rows, waits
                ),
                worker_index=index,
            )
            self._workers.append(worker)
            if self._started:
                worker.start()

    def _record_group(
        self, key: str, n_requests: int, n_rows: int, queue_waits: list[float]
    ) -> None:
        self._group_requests.observe(n_requests, endpoint=key)
        for wait in queue_waits:
            self._queue_wait.observe(wait, endpoint=key)
        self._queue_depth.set(self._queues[key].depth, endpoint=key)

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #

    def submit(
        self, name: str, frame: DataFrame, version: str | None = None
    ) -> ScoreRequest:
        """Admit one scoring request; raises instead of silently queueing
        when the daemon is draining or the endpoint queue is full."""
        if len(frame) == 0:
            raise DataValidationError("cannot serve an empty batch")
        if not self._accepting:
            raise DaemonClosedError("daemon is draining; not accepting requests")
        # resolve(), not get(): admission must not hydrate a cold
        # endpoint — the scoring worker does that on first batch.
        key = self.service.registry.resolve(name, version).key
        with self._lock:
            queue = self._queues.get(key)
        if queue is None:
            raise DaemonClosedError(
                f"endpoint {key!r} has no active queue (removed by reload)"
            )
        request = ScoreRequest(endpoint=name, frame=frame, version=version)
        with current_tracer().span(
            "daemon.enqueue", endpoint=key, rows=len(frame)
        ) as span:
            try:
                shed = queue.put(request)
            except Exception:
                self._shed.inc(endpoint=key, policy=self.settings.shed_policy)
                raise
            span.add(depth=queue.depth)
        if shed is not None:
            # drop_oldest: the evicted request is answered with the same
            # overload signal a rejected one would have received.
            self._shed.inc(endpoint=key, policy=self.settings.shed_policy)
            from repro.exceptions import QueueFullError

            shed.set_error(
                QueueFullError(
                    f"endpoint {key!r} shed this request for a newer one "
                    f"(queue depth {queue.capacity})",
                    retry_after_seconds=self.settings.retry_after_seconds,
                )
            )
        self._accepted.inc(endpoint=key)
        self._queue_depth.set(queue.depth, endpoint=key)
        return request

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ServingDaemon":
        """Bind the port, install the tracer, start workers + server."""
        if self._started:
            return self
        self._previous_tracer = set_tracer(self.tracer)
        self._server = DaemonHTTPServer(
            (self.settings.host, self.settings.port), self
        )
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-daemon-http",
            daemon=True,
        )
        self._server_thread.start()
        for worker in self._workers:
            worker.start()
        self._started = True
        self._accepting = True
        return self

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        if self._server is not None:
            return self._server.port
        return self.settings.port

    @property
    def url(self) -> str:
        return f"http://{self.settings.host}:{self.port}"

    @property
    def accepting(self) -> bool:
        return self._accepting

    def request_stop(self) -> None:
        """Flag-only stop used by signal handlers; ``run_forever`` drains."""
        self._stop_event.set()

    def request_reload(self) -> None:
        """Flag-only reload used by the SIGHUP handler."""
        self._reload_event.set()
        self._stop_event.set()  # wake the run_forever wait loop

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain; SIGHUP → config reload.

        Only callable from the main thread (a Python constraint); the
        handlers set flags and :meth:`run_forever` does the actual work
        outside signal context.
        """
        import signal

        signal.signal(signal.SIGTERM, lambda *_: self.request_stop())
        signal.signal(signal.SIGINT, lambda *_: self.request_stop())
        if hasattr(signal, "SIGHUP"):
            signal.signal(signal.SIGHUP, lambda *_: self.request_reload())

    def run_forever(self) -> DrainReport:
        """Serve until a stop signal arrives, then drain gracefully."""
        self.start()
        while True:
            self._stop_event.wait()
            if self._reload_event.is_set():
                self._reload_event.clear()
                self._stop_event.clear()
                self.reload()
                continue
            break
        return self.drain()

    def reload(self) -> None:
        """Re-read the config file and swap endpoints without dropping
        in-flight batches. No-op for daemons built without a config."""
        if self.config_path is None:
            raise DataValidationError(
                "reload requires a daemon built from a config file"
            )
        from repro.serving.store import LazyModelRegistry

        new_registry = registry_from_config(self.config_path)
        current = self.service.registry
        new_entries = new_registry.entries()
        new_keys = {entry.key for entry in new_entries}
        adopt_entries = isinstance(current, LazyModelRegistry) and isinstance(
            new_registry, LazyModelRegistry
        )
        with self._lock:
            if adopt_entries:
                # Store-backed both sides: adopt the manifest entries —
                # nothing hydrates during the reload; refreshed models
                # materialize on their next scored batch. The entry keeps
                # a handle to the *new* store in case the config moved it.
                for entry in new_entries:
                    current.register_entry(
                        entry, store=new_registry.store, write_manifest=False
                    )
                    self.service.invalidate(entry.key)
                    self._ensure_endpoint(entry)
            else:
                for endpoint in new_registry.endpoints():
                    # Replace (or add) the artifacts/policy under the same
                    # key; queued work keeps scoring against the registry,
                    # which now resolves to the refreshed endpoint.
                    current.register(endpoint, replace_existing=True)
                    self.service.invalidate(endpoint.key)
                    self._ensure_endpoint(endpoint)
            for key, queue in self._queues.items():
                if key not in new_keys and not queue.closed:
                    # Removed endpoints stop admitting; their workers drain
                    # what is already queued (the registry entry survives
                    # until restart so those batches still score). Their
                    # hydrated models and derived caches (fused kernel,
                    # resilient scorer) are dropped — a queued batch
                    # re-hydrates once, everything else releases memory.
                    queue.close()
                    self.service.invalidate(key)
                    evict = getattr(current, "evict", None)
                    if evict is not None:
                        evict(key)
        self._reloads.inc()

    def drain(self) -> DrainReport:
        """Graceful shutdown; see the class docstring for the contract."""
        if self._drained:
            raise DaemonClosedError("daemon already drained")
        self._accepting = False
        with self._lock:
            for queue in self._queues.values():
                queue.close()
        deadline = time.monotonic() + self.settings.drain_timeout_seconds
        for worker in self._workers:
            if not worker.is_alive():
                continue
            worker.join(timeout=max(0.05, deadline - time.monotonic()))
        unanswered = sum(queue.depth for queue in self._queues.values())
        for key, queue in self._queues.items():
            self._queue_depth.set(queue.depth, endpoint=key)

        snapshot_path: str | None = None
        if self.settings.snapshot_dir is not None:
            base = Path(self.settings.snapshot_dir)
            if self.config_path is not None and not base.is_absolute():
                base = self.config_path.parent / base
            snapshot_path = str(self.service.registry.snapshot(base))

        # A lazy registry releases every hydrated endpoint on the way
        # out (after the snapshot, which needs them); eviction listeners
        # drop the service's derived caches with them, so a drained
        # daemon holds no model state.
        evict_all = getattr(self.service.registry, "evict_all", None)
        if evict_all is not None:
            evict_all()

        if self._server is not None:
            self._server.shutdown()
            if self._server_thread is not None:
                self._server_thread.join(timeout=5.0)
            self._server.server_close()
        if self._started:
            set_tracer(self._previous_tracer)
        self._drained = True
        return DrainReport(
            answered_requests=sum(w.requests_answered for w in self._workers),
            scored_groups=sum(w.groups_scored for w in self._workers),
            unanswered_requests=unanswered,
            snapshot_path=snapshot_path,
        )

    # ------------------------------------------------------------------ #
    # Introspection (the GET routes)
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        """The ``/healthz`` payload: overall status plus per-endpoint detail.

        ``degraded`` when any circuit breaker is open or any queue is
        saturated; ``draining`` once admission stopped.
        """
        endpoints: dict[str, dict] = {}
        degraded = False
        with self._lock:
            queues = dict(self._queues)
        for entry in self.service.registry.entries():
            key = entry.key
            queue = queues.get(key)
            breaker = self.service.breaker_state(entry.name, entry.version)
            saturated = queue.saturated if queue is not None else False
            if breaker == "open" or saturated:
                degraded = True
            endpoints[key] = {
                "breaker": breaker if breaker is not None else "closed",
                "queue_depth": queue.depth if queue is not None else 0,
                "queue_capacity": (
                    queue.capacity if queue is not None else self.settings.queue_depth
                ),
                "queue_saturated": saturated,
                "shed_total": queue.shed_total if queue is not None else 0,
                "accepting": queue is not None and not queue.closed,
            }
        if not self._accepting:
            status = "draining"
        elif degraded:
            status = "degraded"
        else:
            status = "ok"
        payload = {"status": status, "endpoints": endpoints}
        registry = self.service.registry
        if hasattr(registry, "hydrated_keys"):
            # Store-backed registries report their hydration state: the
            # hydrated-endpoint count against the byte budget is the
            # RSS proxy operators (and the CI scale smoke) watch.
            payload["registry"] = {
                "endpoints": len(registry),
                "hydrated_endpoints": len(registry.hydrated_keys()),
                "hydrated_bytes": registry.hydrated_bytes(),
                "cache_bytes": registry.cache_capacity_bytes,
            }
        return payload

    def metrics_text(self) -> str:
        """Prometheus exposition with new span aggregates bridged in."""
        self._bridge_new_spans()
        return self.metrics.to_prometheus()

    def _bridge_new_spans(self) -> None:
        """Fold spans collected since the last scrape into the metrics.

        ``bridge_spans`` double-counts on repeat, so a cursor over the
        store's total span count (collected + dropped) bridges each span
        exactly once across scrapes.
        """
        with self._bridge_lock:
            store = self.tracer.store
            snapshot = store.spans()
            dropped = store.dropped
            start = max(0, self._bridge_cursor - dropped)
            fresh = snapshot[start:]
            if fresh:
                bridge_spans(fresh, self.metrics)
            self._bridge_cursor = dropped + len(snapshot)

    def spans_json(self) -> str:
        return spans_to_json(self.tracer.store.spans())

    def record_http(self, method: str, code: int) -> None:
        self._http_responses.inc(method=str(method), code=str(code))
