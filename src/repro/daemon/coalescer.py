"""Micro-batch coalescing: many small requests, one statistically useful batch.

The paper's featurization (percentiles, KS statistics) is noise on a
handful of rows and signal on hundreds — the same insight behind
:class:`~repro.serving.service.ValidationService`'s buffer-based
micro-batching, applied here at the *queue* level so the daemon can map
one scored batch back to every HTTP request it answered.

:class:`MicroBatchCoalescer` pulls requests off one endpoint's
:class:`~repro.daemon.queues.BoundedRequestQueue` and groups them under
the service's max-wait flush rule:

* keep gathering while the group holds fewer than ``max_batch_rows``
  rows **and** less than ``max_wait_seconds`` have elapsed since the
  group opened (measured on the injectable monotonic ``clock``, so flush
  timing is testable with a ``FakeClock`` and immune to wall-clock
  jumps);
* a burst that is already queued coalesces immediately — the wait only
  applies when the queue runs dry mid-group.

The coalescer never splits a request across batches: a group is a list
of whole requests, so fan-out of the scored result is exact.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.daemon.queues import BoundedRequestQueue, ScoreRequest
from repro.exceptions import DataValidationError

#: How long an idle worker blocks on an empty queue before re-checking
#: for shutdown; purely a liveness knob, never affects batch contents.
IDLE_POLL_SECONDS = 0.05


class MicroBatchCoalescer:
    """Groups queued requests into micro-batches for one endpoint.

    Parameters
    ----------
    queue:
        The endpoint's bounded request queue.
    max_batch_rows:
        Row budget per group; the group closes at or above this size.
        A single oversized request still forms its own group (requests
        are never split).
    max_wait_seconds:
        Maximum time between the first request of a group and scoring
        it, mirroring ``EndpointPolicy.max_wait_seconds``.
    clock:
        Injectable monotonic clock (``repro.resilience.FakeClock``
        compatible) driving the max-wait cutoff.
    idle_poll_seconds:
        Block granularity while waiting for the *first* request of a
        group (lets the worker notice shutdown promptly).
    """

    def __init__(
        self,
        queue: BoundedRequestQueue,
        max_batch_rows: int,
        max_wait_seconds: float,
        clock: Callable[[], float] = time.monotonic,
        idle_poll_seconds: float = IDLE_POLL_SECONDS,
    ):
        if max_batch_rows < 1:
            raise DataValidationError(
                f"max_batch_rows must be >= 1, got {max_batch_rows}"
            )
        if max_wait_seconds < 0:
            raise DataValidationError(
                f"max_wait_seconds must be >= 0, got {max_wait_seconds}"
            )
        if idle_poll_seconds <= 0:
            raise DataValidationError(
                f"idle_poll_seconds must be > 0, got {idle_poll_seconds}"
            )
        self.queue = queue
        self.max_batch_rows = max_batch_rows
        self.max_wait_seconds = max_wait_seconds
        self.clock = clock
        self._idle_poll = idle_poll_seconds

    def gather(self, block: bool = True) -> list[ScoreRequest]:
        """One micro-batch group (possibly a single request).

        Returns an empty list when no request arrived within the idle
        poll (or immediately when ``block=False`` and the queue is
        empty) — the worker loop uses that beat to check for shutdown.
        Once the queue is closed and empty, every call returns ``[]``,
        which is the worker's signal that the drain is complete.
        """
        first = self.queue.pop(timeout=self._idle_poll if block else 0)
        if first is None:
            return []
        group = [first]
        rows = first.n_rows
        opened = self.clock()
        while rows < self.max_batch_rows:
            elapsed = self.clock() - opened
            remaining = self.max_wait_seconds - elapsed
            if remaining <= 0:
                break
            # Already-queued requests coalesce without waiting; only an
            # empty queue spends (bounded) real time here.
            request = self.queue.pop(timeout=min(remaining, self._idle_poll))
            if request is None:
                if self.queue.closed or not block:
                    break
                continue
            group.append(request)
            rows += request.n_rows
        return group
