"""Worker threads: drain one endpoint's queue through the coalescer.

Each :class:`EndpointWorker` loops *gather → merge → score → fan out*:

1. gather a micro-batch group from the endpoint's queue (the coalescer
   applies the max-rows / max-wait rule),
2. merge the group's frames into one batch,
3. score it once through
   :meth:`~repro.serving.service.ValidationService.score_now` — which
   runs the PR-5 resilient path (retry / breaker / fallback chain) when
   the config enables it,
4. answer every request in the group with the same
   :class:`~repro.serving.service.BatchResult` (or the same error).

Scoring is serialized per endpoint with a shared lock because the
monitor's smoothing state is sequential; with ``workers > 1`` the extra
threads overlap gathering and waiting, not monitor updates.

A worker exits when its queue is closed *and* empty — the graceful-drain
contract: every admitted request is answered exactly once.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.daemon.coalescer import MicroBatchCoalescer
from repro.daemon.queues import ScoreRequest
from repro.obs import current_tracer
from repro.serving.service import ValidationService
from repro.tabular.frame import DataFrame, concat


class EndpointWorker(threading.Thread):
    """One coalesce-and-score loop over an endpoint's queue.

    Parameters
    ----------
    key:
        The resolved ``name@version`` endpoint key (display only).
    name / version:
        The registry address used for scoring.
    coalescer:
        Gathers queued requests into micro-batch groups.
    service:
        The validation service that scores merged frames.
    score_lock:
        Shared per-endpoint lock serializing monitor updates.
    on_group:
        Optional hook ``on_group(n_requests, n_rows, queue_waits)`` for
        daemon metrics (coalesced group sizes and per-request time spent
        queued before scoring).
    """

    def __init__(
        self,
        key: str,
        name: str,
        version: str | None,
        coalescer: MicroBatchCoalescer,
        service: ValidationService,
        score_lock: threading.Lock,
        on_group: Callable[[int, int, list[float]], None] | None = None,
        worker_index: int = 0,
    ):
        super().__init__(name=f"repro-daemon-{key}-{worker_index}", daemon=True)
        self.key = key
        self.endpoint_name = name
        self.endpoint_version = version
        self.coalescer = coalescer
        self.service = service
        self._score_lock = score_lock
        self._on_group = on_group
        self.groups_scored = 0
        self.requests_answered = 0

    # ------------------------------------------------------------------ #

    def run(self) -> None:
        queue = self.coalescer.queue
        while True:
            group = self.coalescer.gather()
            if not group:
                if queue.closed and queue.depth == 0:
                    return
                continue
            self.score_group(group)

    def score_group(self, group: list[ScoreRequest]) -> None:
        """Score one gathered group and answer every request in it."""
        n_rows = sum(request.n_rows for request in group)
        now = self.coalescer.clock()
        queue_waits = [max(0.0, now - request.enqueued_at) for request in group]
        tracer = current_tracer()
        with tracer.span(
            "daemon.coalesce",
            endpoint=self.key,
            requests=len(group),
            rows=n_rows,
        ):
            merged = _merge([request.frame for request in group])
            try:
                with self._score_lock:
                    result = self.service.score_now(
                        self.endpoint_name,
                        merged,
                        version=self.endpoint_version,
                        requests=len(group),
                    )
            except BaseException as error:  # noqa: BLE001 - answered, not lost
                for request in group:
                    request.set_error(error)
                return
        for request in group:
            request.coalesced_requests = len(group)
            request.coalesced_rows = n_rows
            request.set_result(result)
        self.groups_scored += 1
        self.requests_answered += len(group)
        if self._on_group is not None:
            self._on_group(len(group), n_rows, queue_waits)


def _merge(frames: list[DataFrame]) -> DataFrame:
    return frames[0] if len(frames) == 1 else concat(frames)
