"""A lightweight typed dataframe backed by numpy arrays.

This is the stand-in for the pandas DataFrame that the original paper code
builds on. Only the pieces the validation approach needs are implemented:
typed columns, missing-value semantics, row selection, and cheap copies so
that error generators can corrupt a frame without touching the original.

Storage conventions
-------------------
* NUMERIC columns: ``float64`` arrays, ``nan`` marks a missing cell.
* CATEGORICAL / TEXT columns: ``object`` arrays of ``str``; ``None`` marks a
  missing cell.
* IMAGE columns: ``float64`` arrays of shape ``(n_rows, height, width)``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import DataValidationError, SchemaError
from repro.tabular.schema import ColumnSpec, ColumnType, Schema


def _coerce_values(values: object, ctype: ColumnType) -> np.ndarray:
    """Normalize raw column values to the storage convention for ``ctype``."""
    if ctype is ColumnType.NUMERIC:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise DataValidationError(f"numeric column must be 1-d, got shape {arr.shape}")
        return arr
    if ctype in (ColumnType.CATEGORICAL, ColumnType.TEXT):
        arr = np.empty(len(values), dtype=object)  # type: ignore[arg-type]
        for i, value in enumerate(values):  # type: ignore[arg-type]
            if value is None:
                arr[i] = None
            elif isinstance(value, float) and np.isnan(value):
                arr[i] = None
            else:
                arr[i] = str(value)
        return arr
    if ctype is ColumnType.IMAGE:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 3:
            raise DataValidationError(
                f"image column must have shape (n, h, w), got {arr.shape}"
            )
        return arr
    raise SchemaError(f"unsupported column type {ctype!r}")


def is_missing(values: np.ndarray) -> np.ndarray:
    """Boolean mask of missing cells for a stored column array."""
    if values.dtype == object:
        return np.array([v is None for v in values], dtype=bool)
    if values.ndim > 1:
        return np.isnan(values).any(axis=tuple(range(1, values.ndim)))
    return np.isnan(values)


class DataFrame:
    """An immutable-by-convention table of typed columns.

    Mutating methods return new frames; the underlying arrays are shared
    until :meth:`copy` is called, which deep-copies the storage so error
    generators can scribble on cells safely.
    """

    def __init__(self, schema: Schema, columns: Mapping[str, np.ndarray]):
        if set(columns) != set(schema.names):
            raise SchemaError(
                f"columns {sorted(columns)} do not match schema {schema.names}"
            )
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise DataValidationError(f"ragged columns: {lengths}")
        self._schema = schema
        self._columns = dict(columns)
        self._n_rows = next(iter(lengths.values())) if lengths else 0

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_dict(
        cls, data: Mapping[str, object], types: Mapping[str, ColumnType]
    ) -> "DataFrame":
        """Build a frame from raw column values and their declared types."""
        if set(data) != set(types):
            raise SchemaError("data and types must cover the same column names")
        schema = Schema([ColumnSpec(name, types[name]) for name in data])
        columns = {name: _coerce_values(values, types[name]) for name, values in data.items()}
        return cls(schema, columns)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def n_rows(self) -> int:
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    def __contains__(self, name: str) -> bool:
        return name in self._schema

    def __getitem__(self, name: str) -> np.ndarray:
        """The stored array for a column. Treat as read-only unless copied."""
        if name not in self._schema:
            raise SchemaError(f"unknown column {name!r}; have {self._schema.names}")
        return self._columns[name]

    def __repr__(self) -> str:
        return f"DataFrame(n_rows={self._n_rows}, schema={self._schema!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self._schema != other._schema or self._n_rows != other._n_rows:
            return False
        for name in self._schema.names:
            a, b = self._columns[name], other._columns[name]
            if a.dtype == object:
                if not all(x == y or (x is None and y is None) for x, y in zip(a, b)):
                    return False
            else:
                if not np.array_equal(a, b, equal_nan=True):
                    return False
        return True

    @property
    def numeric_columns(self) -> list[str]:
        return self._schema.names_of_type(ColumnType.NUMERIC)

    @property
    def categorical_columns(self) -> list[str]:
        return self._schema.names_of_type(ColumnType.CATEGORICAL)

    @property
    def text_columns(self) -> list[str]:
        return self._schema.names_of_type(ColumnType.TEXT)

    @property
    def image_columns(self) -> list[str]:
        return self._schema.names_of_type(ColumnType.IMAGE)

    def missing_mask(self, name: str) -> np.ndarray:
        """Boolean mask of missing cells in the named column."""
        return is_missing(self[name])

    def missing_fraction(self, name: str) -> float:
        """Fraction of missing cells in the named column (0.0 for empty frames)."""
        if self._n_rows == 0:
            return 0.0
        return float(self.missing_mask(name).mean())

    # ------------------------------------------------------------------ #
    # Transformation
    # ------------------------------------------------------------------ #

    def copy(self) -> "DataFrame":
        """Deep-copy the storage so the result can be mutated in place."""
        return DataFrame(
            self._schema, {name: col.copy() for name, col in self._columns.items()}
        )

    def select_rows(self, index: Sequence[int] | np.ndarray) -> "DataFrame":
        """A new frame containing the rows at ``index`` (fancy indexing)."""
        idx = np.asarray(index)
        if idx.dtype == bool:
            if len(idx) != self._n_rows:
                raise DataValidationError(
                    f"boolean mask length {len(idx)} != n_rows {self._n_rows}"
                )
        elif not np.issubdtype(idx.dtype, np.integer):
            # An empty python list arrives as float64; treat it (and any
            # other integral-valued input) as row indices.
            idx = idx.astype(np.int64)
        return DataFrame(self._schema, {name: col[idx] for name, col in self._columns.items()})

    def head(self, n: int = 5) -> "DataFrame":
        return self.select_rows(np.arange(min(n, self._n_rows)))

    def with_column(self, name: str, ctype: ColumnType, values: object) -> "DataFrame":
        """A new frame with the column added or replaced."""
        arr = _coerce_values(values, ctype)
        n = arr.shape[0]
        if self._schema.names and n != self._n_rows:
            raise DataValidationError(f"new column has {n} rows, frame has {self._n_rows}")
        if name in self._schema:
            specs = [
                ColumnSpec(name, ctype) if spec.name == name else spec
                for spec in self._schema
            ]
        else:
            specs = list(self._schema) + [ColumnSpec(name, ctype)]
        columns = dict(self._columns)
        columns[name] = arr
        return DataFrame(Schema(specs), columns)

    def drop_columns(self, *names: str) -> "DataFrame":
        """A new frame without the given columns."""
        schema = self._schema.without(*names)
        columns = {name: self._columns[name] for name in schema.names}
        return DataFrame(schema, columns)

    def set_values(self, name: str, row_index: np.ndarray, values: object) -> None:
        """Mutate cells in place. Only safe on frames obtained via :meth:`copy`."""
        col = self[name]
        ctype = self._schema.type_of(name)
        if ctype is ColumnType.NUMERIC:
            col[row_index] = np.asarray(values, dtype=np.float64)
        elif ctype is ColumnType.IMAGE:
            col[row_index] = np.asarray(values, dtype=np.float64)
        else:
            if np.isscalar(values) or values is None:
                values = [values] * int(np.asarray(row_index).size)
            for i, value in zip(np.atleast_1d(row_index), values):  # type: ignore[arg-type]
                col[i] = None if value is None else str(value)

    def column_values(self, name: str, drop_missing: bool = False) -> np.ndarray:
        """Column values, optionally with missing cells removed."""
        values = self[name]
        if drop_missing:
            return values[~is_missing(values)]
        return values

    def to_dict(self) -> dict[str, list]:
        """Plain-python dump of the frame (useful in tests and examples)."""
        return {name: list(self._columns[name]) for name in self._schema.names}


def concat(frames: Iterable[DataFrame]) -> DataFrame:
    """Stack frames with identical schemas vertically."""
    frames = list(frames)
    if not frames:
        raise DataValidationError("cannot concat an empty list of frames")
    schema = frames[0].schema
    for frame in frames[1:]:
        if frame.schema != schema:
            raise SchemaError("cannot concat frames with different schemas")
    columns = {}
    for name in schema.names:
        parts = [frame[name] for frame in frames]
        columns[name] = np.concatenate(parts, axis=0)
    return DataFrame(schema, columns)
