"""Dataset-level operations: splitting, shuffling and class balancing.

The paper partitions each dataset into disjoint source / serving splits,
then splits the source data again into train / test, and resamples for
balanced classes in accuracy experiments. These helpers implement those
operations over :class:`~repro.tabular.frame.DataFrame`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError
from repro.tabular.frame import DataFrame


def _check_labels(frame: DataFrame, labels: np.ndarray) -> np.ndarray:
    labels = np.asarray(labels)
    if labels.ndim != 1 or len(labels) != len(frame):
        raise DataValidationError(
            f"labels must be 1-d with {len(frame)} entries, got shape {labels.shape}"
        )
    return labels


def split_frame(
    frame: DataFrame,
    labels: np.ndarray,
    fractions: tuple[float, ...],
    rng: np.random.Generator,
) -> list[tuple[DataFrame, np.ndarray]]:
    """Shuffle rows and split into disjoint partitions by fraction.

    ``fractions`` must sum to at most 1.0; any remainder is dropped, which
    makes it easy to subsample large datasets for laptop-scale runs.
    """
    labels = _check_labels(frame, labels)
    if any(f <= 0 for f in fractions):
        raise DataValidationError("all split fractions must be positive")
    if sum(fractions) > 1.0 + 1e-9:
        raise DataValidationError(f"fractions sum to {sum(fractions)} > 1")
    order = rng.permutation(len(frame))
    parts = []
    start = 0
    for fraction in fractions:
        size = int(round(fraction * len(frame)))
        idx = order[start : start + size]
        parts.append((frame.select_rows(idx), labels[idx]))
        start += size
    return parts


def train_test_split(
    frame: DataFrame,
    labels: np.ndarray,
    test_fraction: float,
    rng: np.random.Generator,
) -> tuple[DataFrame, np.ndarray, DataFrame, np.ndarray]:
    """Split into (train_frame, train_labels, test_frame, test_labels)."""
    if not 0.0 < test_fraction < 1.0:
        raise DataValidationError(f"test_fraction must be in (0, 1), got {test_fraction}")
    (train, y_train), (test, y_test) = split_frame(
        frame, labels, (1.0 - test_fraction, test_fraction), rng
    )
    return train, y_train, test, y_test


def balance_classes(
    frame: DataFrame, labels: np.ndarray, rng: np.random.Generator
) -> tuple[DataFrame, np.ndarray]:
    """Downsample the majority classes so every class has equal support.

    The paper balances classes in accuracy experiments "to make the scores
    easier to interpret" (a random guesser then scores 1/m).
    """
    labels = _check_labels(frame, labels)
    classes, counts = np.unique(labels, return_counts=True)
    if len(classes) < 2:
        raise DataValidationError("need at least two classes to balance")
    target = counts.min()
    keep: list[np.ndarray] = []
    for cls in classes:
        idx = np.flatnonzero(labels == cls)
        keep.append(rng.choice(idx, size=target, replace=False))
    index = rng.permutation(np.concatenate(keep))
    return frame.select_rows(index), labels[index]


def subsample(
    frame: DataFrame, labels: np.ndarray, n: int, rng: np.random.Generator
) -> tuple[DataFrame, np.ndarray]:
    """Take a uniform random sample of ``n`` rows without replacement."""
    labels = _check_labels(frame, labels)
    if n > len(frame):
        raise DataValidationError(f"cannot sample {n} rows from {len(frame)}")
    idx = rng.choice(len(frame), size=n, replace=False)
    return frame.select_rows(idx), labels[idx]
