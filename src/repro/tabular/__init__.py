"""Lightweight typed dataframe substrate (pandas stand-in).

See :mod:`repro.tabular.frame` for storage conventions.
"""

from repro.tabular.frame import DataFrame, concat, is_missing
from repro.tabular.ops import balance_classes, split_frame, subsample, train_test_split
from repro.tabular.schema import ColumnSpec, ColumnType, Schema

__all__ = [
    "ColumnSpec",
    "ColumnType",
    "DataFrame",
    "Schema",
    "balance_classes",
    "concat",
    "is_missing",
    "split_frame",
    "subsample",
    "train_test_split",
]
