"""Column types and schemas for the lightweight typed dataframe.

The paper's error generators operate on *relational* data with typed
columns: numeric attributes (which can be scaled, smeared, outliered),
categorical attributes (which can receive missing values, typos, encoding
errors), free text (which can be attacked with leetspeak), and images
(which can be rotated or blurred). The schema records those types so error
generators and feature encoders can select the columns they apply to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import SchemaError


class ColumnType(enum.Enum):
    """The type of a dataframe column.

    NUMERIC columns hold float64 values with ``nan`` marking missing cells.
    CATEGORICAL and TEXT columns hold python strings with ``None`` marking
    missing cells. IMAGE columns hold one 2-d float array per row.
    """

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    TEXT = "text"
    IMAGE = "image"


@dataclass(frozen=True)
class ColumnSpec:
    """Name and type of one column."""

    name: str
    ctype: ColumnType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be a non-empty string")


class Schema:
    """An ordered, immutable collection of column specs.

    Lookup by name is O(1); iteration preserves declaration order.
    """

    def __init__(self, specs: list[ColumnSpec] | tuple[ColumnSpec, ...]):
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            duplicates = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {duplicates}")
        self._specs = tuple(specs)
        self._by_name = {spec.name: spec for spec in specs}

    @classmethod
    def of(cls, **types: ColumnType) -> "Schema":
        """Build a schema from keyword arguments, e.g. ``Schema.of(age=ColumnType.NUMERIC)``."""
        return cls([ColumnSpec(name, ctype) for name, ctype in types.items()])

    @property
    def names(self) -> list[str]:
        return [spec.name for spec in self._specs]

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self):
        return iter(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> ColumnSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}; have {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._specs == other._specs

    def __hash__(self) -> int:
        return hash(self._specs)

    def __repr__(self) -> str:
        fields = ", ".join(f"{s.name}:{s.ctype.value}" for s in self._specs)
        return f"Schema({fields})"

    def names_of_type(self, ctype: ColumnType) -> list[str]:
        """Names of all columns with the given type, in schema order."""
        return [spec.name for spec in self._specs if spec.ctype is ctype]

    def type_of(self, name: str) -> ColumnType:
        return self[name].ctype

    def require(self, name: str, ctype: ColumnType) -> None:
        """Raise :class:`SchemaError` unless ``name`` exists with type ``ctype``."""
        actual = self[name].ctype
        if actual is not ctype:
            raise SchemaError(
                f"column {name!r} has type {actual.value}, expected {ctype.value}"
            )

    def without(self, *names: str) -> "Schema":
        """A new schema with the given columns removed."""
        for name in names:
            self[name]  # validate
        dropped = set(names)
        return Schema([s for s in self._specs if s.name not in dropped])
