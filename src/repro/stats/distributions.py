"""Special functions and sampling distributions implemented from scratch.

These back the hypothesis tests used by the REL / BBSE / BBSEh baselines and
by the performance validator's Kolmogorov-Smirnov features. scipy carries
equivalent routines, but the reproduction keeps its statistical substrate
self-contained; the test suite cross-checks every function against scipy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DataValidationError

# Lanczos approximation coefficients (g=7, n=9), standard choice giving
# ~15 significant digits for log-gamma on the positive real axis.
_LANCZOS_G = 7.0
_LANCZOS_COEFFS = (
    0.99999999999980993,
    676.5203681218851,
    -1259.1392167224028,
    771.32342877765313,
    -176.61502916214059,
    12.507343278686905,
    -0.13857109526572012,
    9.9843695780195716e-6,
    1.5056327351493116e-7,
)


def log_gamma(x: float) -> float:
    """Natural log of the gamma function for ``x > 0`` (Lanczos approximation)."""
    if x <= 0:
        raise DataValidationError(f"log_gamma requires x > 0, got {x}")
    if x < 0.5:
        # Reflection formula keeps the approximation accurate near zero.
        return math.log(math.pi / math.sin(math.pi * x)) - log_gamma(1.0 - x)
    x -= 1.0
    acc = _LANCZOS_COEFFS[0]
    for i, coeff in enumerate(_LANCZOS_COEFFS[1:], start=1):
        acc += coeff / (x + i)
    t = x + _LANCZOS_G + 0.5
    return 0.5 * math.log(2.0 * math.pi) + (x + 0.5) * math.log(t) - t + math.log(acc)


def _lower_incomplete_gamma_series(s: float, x: float) -> float:
    """Regularized lower incomplete gamma P(s, x) via its power series (x < s+1)."""
    term = 1.0 / s
    total = term
    k = s
    for _ in range(10_000):
        k += 1.0
        term *= x / k
        total += term
        if abs(term) < abs(total) * 1e-15:
            break
    return total * math.exp(-x + s * math.log(x) - log_gamma(s))

def _upper_incomplete_gamma_cf(s: float, x: float) -> float:
    """Regularized upper incomplete gamma Q(s, x) via continued fraction (x >= s+1)."""
    tiny = 1e-300
    b = x + 1.0 - s
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 10_000):
        an = -i * (i - s)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + s * math.log(x) - log_gamma(s))


def regularized_gamma_p(s: float, x: float) -> float:
    """Regularized lower incomplete gamma function P(s, x) for s > 0, x >= 0."""
    if s <= 0:
        raise DataValidationError(f"shape must be positive, got {s}")
    if x < 0:
        raise DataValidationError(f"x must be non-negative, got {x}")
    if x == 0:
        return 0.0
    if x < s + 1.0:
        return min(1.0, _lower_incomplete_gamma_series(s, x))
    return min(1.0, max(0.0, 1.0 - _upper_incomplete_gamma_cf(s, x)))


def chi2_sf(statistic: float, df: int) -> float:
    """Survival function of the chi-squared distribution with ``df`` degrees of freedom."""
    if df <= 0:
        raise DataValidationError(f"degrees of freedom must be positive, got {df}")
    if statistic < 0:
        raise DataValidationError(f"chi2 statistic must be non-negative, got {statistic}")
    if statistic == 0:
        return 1.0
    if statistic < df + 1.0:
        return max(0.0, 1.0 - regularized_gamma_p(df / 2.0, statistic / 2.0))
    return max(0.0, _upper_incomplete_gamma_cf(df / 2.0, statistic / 2.0))


def kolmogorov_sf(x: float) -> float:
    """Survival function of the Kolmogorov distribution.

    Q(x) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 x^2); the asymptotic null
    distribution of sqrt(n) * D_n for the one-sample KS statistic.
    """
    if x <= 1e-3:
        # SF(1e-3) differs from 1 by far less than float precision, and
        # x*x underflows for subnormal inputs.
        return 1.0
    if x >= 8.0:
        return 0.0
    if x < 1.0:
        # The alternating series converges slowly for small x; use the
        # theta-function dual form of the CDF instead:
        # P(x) = sqrt(2*pi)/x * sum_{k>=1} exp(-(2k-1)^2 pi^2 / (8 x^2)).
        cdf = 0.0
        for k in range(1, 101):
            term = math.exp(-((2 * k - 1) ** 2) * math.pi**2 / (8.0 * x * x))
            cdf += term
            if term < 1e-18:
                break
        cdf *= math.sqrt(2.0 * math.pi) / x
        return min(1.0, max(0.0, 1.0 - cdf))
    total = 0.0
    for k in range(1, 101):
        term = 2.0 * (-1.0) ** (k - 1) * math.exp(-2.0 * k * k * x * x)
        total += term
        if abs(term) < 1e-16:
            break
    return min(1.0, max(0.0, total))


def normal_cdf(x: float) -> float:
    """Standard normal CDF via the error function."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def empirical_cdf(sample: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF of ``sample`` at ``points``."""
    sample = np.sort(np.asarray(sample, dtype=np.float64))
    if sample.size == 0:
        raise DataValidationError("empirical_cdf requires a non-empty sample")
    return np.searchsorted(sample, points, side="right") / sample.size
