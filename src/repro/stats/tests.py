"""Two-sample hypothesis tests used by the baselines and validator features.

* :func:`ks_two_sample` — Kolmogorov-Smirnov test between two numeric
  samples (used by REL on numeric columns and by BBSE on softmax outputs).
* :func:`chi2_two_sample` — chi-squared homogeneity test between two
  categorical samples (used by REL on categorical columns and by BBSEh on
  predicted-class counts).
* :func:`bonferroni` — multiple-testing correction applied by REL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.stats.distributions import chi2_sf, kolmogorov_sf


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    statistic: float
    p_value: float

    def rejects_at(self, alpha: float) -> bool:
        """True when the null hypothesis (same distribution) is rejected."""
        return self.p_value < alpha


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.

    The statistic is the supremum distance between the two empirical CDFs;
    the p-value uses the Kolmogorov limiting distribution with the standard
    effective sample size ``n*m / (n+m)``.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64))
    b = np.sort(np.asarray(sample_b, dtype=np.float64))
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if a.size == 0 or b.size == 0:
        raise DataValidationError("KS test requires two non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    if statistic <= 0.0:
        # Identical ECDFs (e.g. two constant samples of the same value):
        # the asymptotic series is numerically unstable near zero, and the
        # exact answer is "no evidence against the null".
        return TestResult(statistic=0.0, p_value=1.0)
    effective_n = a.size * b.size / (a.size + b.size)
    # The truncated asymptotic series can stray outside [0, 1] for small
    # arguments (tie-heavy samples drive the statistic there); clamp so
    # downstream feature vectors and alpha comparisons stay sane.
    p_value = min(1.0, max(0.0, kolmogorov_sf(math.sqrt(effective_n) * statistic)))
    return TestResult(statistic=statistic, p_value=p_value)


def _drop_missing(sample: np.ndarray) -> np.ndarray:
    values = np.asarray(sample, dtype=object).ravel()
    keep = np.frompyfunc(lambda v: v is not None, 1, 1)(values).astype(bool)
    return values[keep]


def _contingency_counts(
    sample_a: np.ndarray, sample_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    kept_a = _drop_missing(sample_a)
    kept_b = _drop_missing(sample_b)
    pooled = np.concatenate([kept_a, kept_b])
    if pooled.size == 0:
        raise DataValidationError("chi2 test requires at least one non-missing category")
    # One unique pass over the pooled values replaces the per-element dict
    # lookups; np.unique sorts, matching the old sorted-category order.
    categories, inverse = np.unique(pooled, return_inverse=True)
    counts_a = np.bincount(inverse[: kept_a.size], minlength=categories.size)
    counts_b = np.bincount(inverse[kept_a.size :], minlength=categories.size)
    return counts_a.astype(np.float64), counts_b.astype(np.float64)


def chi2_from_counts(counts_a: np.ndarray, counts_b: np.ndarray) -> TestResult:
    """Chi-squared homogeneity test from two aligned count vectors."""
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    if counts_a.shape != counts_b.shape or counts_a.ndim != 1:
        raise DataValidationError("count vectors must be 1-d and aligned")
    total_a, total_b = counts_a.sum(), counts_b.sum()
    if total_a == 0 or total_b == 0:
        raise DataValidationError("chi2 test requires non-empty samples")
    pooled = counts_a + counts_b
    keep = pooled > 0
    counts_a, counts_b, pooled = counts_a[keep], counts_b[keep], pooled[keep]
    if keep.sum() < 2:
        # Only one category observed anywhere: the distributions are
        # trivially identical, so do not reject.
        return TestResult(statistic=0.0, p_value=1.0)
    grand = total_a + total_b
    expected_a = pooled * total_a / grand
    expected_b = pooled * total_b / grand
    statistic = float(
        np.sum((counts_a - expected_a) ** 2 / expected_a)
        + np.sum((counts_b - expected_b) ** 2 / expected_b)
    )
    df = int(keep.sum()) - 1
    return TestResult(statistic=statistic, p_value=chi2_sf(statistic, df))


def chi2_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Chi-squared homogeneity test between two categorical samples.

    Missing cells (``None``) are dropped; categories are pooled across both
    samples so a value seen in only one sample still contributes.
    """
    counts_a, counts_b = _contingency_counts(sample_a, sample_b)
    return chi2_from_counts(counts_a, counts_b)


def bonferroni(p_values: list[float], alpha: float = 0.05) -> bool:
    """True when any test rejects after Bonferroni correction."""
    if not p_values:
        raise DataValidationError("bonferroni requires at least one p-value")
    corrected = alpha / len(p_values)
    return any(p < corrected for p in p_values)
