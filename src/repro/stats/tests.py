"""Two-sample hypothesis tests used by the baselines and validator features.

* :func:`ks_two_sample` — Kolmogorov-Smirnov test between two numeric
  samples (used by REL on numeric columns and by BBSE on softmax outputs).
* :func:`chi2_two_sample` — chi-squared homogeneity test between two
  categorical samples (used by REL on categorical columns and by BBSEh on
  predicted-class counts).
* :func:`bonferroni` — multiple-testing correction applied by REL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError
from repro.stats.distributions import chi2_sf, kolmogorov_sf


@dataclass(frozen=True)
class TestResult:
    """Outcome of a hypothesis test."""

    statistic: float
    p_value: float

    def rejects_at(self, alpha: float) -> bool:
        """True when the null hypothesis (same distribution) is rejected."""
        return self.p_value < alpha


def ks_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Two-sample Kolmogorov-Smirnov test with the asymptotic p-value.

    The statistic is the supremum distance between the two empirical CDFs;
    the p-value uses the Kolmogorov limiting distribution with the standard
    effective sample size ``n*m / (n+m)``.
    """
    a = np.sort(np.asarray(sample_a, dtype=np.float64))
    b = np.sort(np.asarray(sample_b, dtype=np.float64))
    a = a[~np.isnan(a)]
    b = b[~np.isnan(b)]
    if a.size == 0 or b.size == 0:
        raise DataValidationError("KS test requires two non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    statistic = float(np.max(np.abs(cdf_a - cdf_b)))
    if statistic <= 0.0:
        # Identical ECDFs (e.g. two constant samples of the same value):
        # the asymptotic series is numerically unstable near zero, and the
        # exact answer is "no evidence against the null".
        return TestResult(statistic=0.0, p_value=1.0)
    # _ks_p_value clamps into [0, 1]: the truncated asymptotic series can
    # stray outside for small arguments (tie-heavy samples drive the
    # statistic there), which would unsettle downstream feature vectors.
    return TestResult(
        statistic=statistic, p_value=_ks_p_value(statistic, a.size, b.size)
    )


def _ks_p_value(statistic: float, n: int, m: int) -> float:
    """The asymptotic p-value exactly as :func:`ks_two_sample` computes it."""
    if statistic <= 0.0:
        # Identical ECDFs: the asymptotic series is unstable near zero and
        # the exact answer is "no evidence against the null".
        return 1.0
    effective_n = n * m / (n + m)
    return min(1.0, max(0.0, kolmogorov_sf(math.sqrt(effective_n) * statistic)))


def ks_matrix_from_sorted(sorted_a: np.ndarray, sorted_b: np.ndarray) -> np.ndarray:
    """Column-wise two-sample KS tests between two column-sorted matrices.

    Returns a ``(n_columns, 2)`` array of ``(statistic, p_value)`` rows,
    bit-identical to calling :func:`ks_two_sample` on each column pair.
    Instead of per-column ``searchsorted`` passes, one stable merge of the
    concatenated matrices yields, via a cumulative count of which sample
    each sorted value came from, the integer ``count(a <= v)`` /
    ``count(b <= v)`` at the close of every tie group — exactly the
    quantities the right-sided ``searchsorted`` produces, so the divisions
    and the supremum land on the same floats.

    Inputs must be NaN-free (NaN would change per-column sample sizes
    after dropping; callers fall back to the per-column path for that).
    """
    sorted_a = np.asarray(sorted_a, dtype=np.float64)
    sorted_b = np.asarray(sorted_b, dtype=np.float64)
    if sorted_a.ndim != 2 or sorted_b.ndim != 2:
        raise DataValidationError("both matrices must be 2-d")
    if sorted_a.shape[1] != sorted_b.shape[1]:
        raise DataValidationError(
            f"column count mismatch: {sorted_a.shape[1]} vs {sorted_b.shape[1]}"
        )
    n, m = sorted_a.shape[0], sorted_b.shape[0]
    if n == 0 or m == 0:
        raise DataValidationError("KS test requires two non-empty samples")
    merged = np.concatenate([sorted_a, sorted_b], axis=0)
    # Stable sort of two already-sorted runs per column: timsort detects
    # and merges them in linear time.
    order = np.argsort(merged, axis=0, kind="stable")
    values = np.take_along_axis(merged, order, axis=0)
    count_a = np.cumsum(order < n, axis=0)
    count_b = np.arange(1, n + m + 1, dtype=np.int64)[:, None] - count_a
    diffs = np.abs(count_a / n - count_b / m)
    # Both ECDFs are only fully counted at the last copy of each tied
    # value; mid-group positions would overshoot the supremum.
    closes_group = np.empty(values.shape, dtype=bool)
    closes_group[-1] = True
    closes_group[:-1] = values[1:] != values[:-1]
    statistics = np.where(closes_group, diffs, 0.0).max(axis=0)
    out = np.empty((merged.shape[1], 2), dtype=np.float64)
    for column, statistic in enumerate(statistics):
        statistic = float(statistic)
        out[column, 0] = 0.0 if statistic <= 0.0 else statistic
        out[column, 1] = _ks_p_value(statistic, n, m)
    return out


def ks_two_sample_matrix(sample_a: np.ndarray, sample_b: np.ndarray) -> np.ndarray:
    """Column-wise KS tests between two (row-aligned-in-columns) matrices.

    Vectorized equivalent of a :func:`ks_two_sample` loop over columns;
    see :func:`ks_matrix_from_sorted` for the identity argument. Inputs
    must be NaN-free.
    """
    sample_a = np.asarray(sample_a, dtype=np.float64)
    sample_b = np.asarray(sample_b, dtype=np.float64)
    if sample_a.ndim != 2 or sample_b.ndim != 2:
        raise DataValidationError("both matrices must be 2-d")
    return ks_matrix_from_sorted(
        np.sort(sample_a, axis=0), np.sort(sample_b, axis=0)
    )


def _drop_missing(sample: np.ndarray) -> np.ndarray:
    values = np.asarray(sample, dtype=object).ravel()
    keep = np.frompyfunc(lambda v: v is not None, 1, 1)(values).astype(bool)
    return values[keep]


def _contingency_counts(
    sample_a: np.ndarray, sample_b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    kept_a = _drop_missing(sample_a)
    kept_b = _drop_missing(sample_b)
    pooled = np.concatenate([kept_a, kept_b])
    if pooled.size == 0:
        raise DataValidationError("chi2 test requires at least one non-missing category")
    # One unique pass over the pooled values replaces the per-element dict
    # lookups; np.unique sorts, matching the old sorted-category order.
    categories, inverse = np.unique(pooled, return_inverse=True)
    counts_a = np.bincount(inverse[: kept_a.size], minlength=categories.size)
    counts_b = np.bincount(inverse[kept_a.size :], minlength=categories.size)
    return counts_a.astype(np.float64), counts_b.astype(np.float64)


def chi2_from_counts(counts_a: np.ndarray, counts_b: np.ndarray) -> TestResult:
    """Chi-squared homogeneity test from two aligned count vectors."""
    counts_a = np.asarray(counts_a, dtype=np.float64)
    counts_b = np.asarray(counts_b, dtype=np.float64)
    if counts_a.shape != counts_b.shape or counts_a.ndim != 1:
        raise DataValidationError("count vectors must be 1-d and aligned")
    total_a, total_b = counts_a.sum(), counts_b.sum()
    if total_a == 0 or total_b == 0:
        raise DataValidationError("chi2 test requires non-empty samples")
    pooled = counts_a + counts_b
    keep = pooled > 0
    counts_a, counts_b, pooled = counts_a[keep], counts_b[keep], pooled[keep]
    if keep.sum() < 2:
        # Only one category observed anywhere: the distributions are
        # trivially identical, so do not reject.
        return TestResult(statistic=0.0, p_value=1.0)
    grand = total_a + total_b
    expected_a = pooled * total_a / grand
    expected_b = pooled * total_b / grand
    statistic = float(
        np.sum((counts_a - expected_a) ** 2 / expected_a)
        + np.sum((counts_b - expected_b) ** 2 / expected_b)
    )
    df = int(keep.sum()) - 1
    return TestResult(statistic=statistic, p_value=chi2_sf(statistic, df))


def chi2_two_sample(sample_a: np.ndarray, sample_b: np.ndarray) -> TestResult:
    """Chi-squared homogeneity test between two categorical samples.

    Missing cells (``None``) are dropped; categories are pooled across both
    samples so a value seen in only one sample still contributes.
    """
    counts_a, counts_b = _contingency_counts(sample_a, sample_b)
    return chi2_from_counts(counts_a, counts_b)


def bonferroni(p_values: list[float], alpha: float = 0.05) -> bool:
    """True when any test rejects after Bonferroni correction."""
    if not p_values:
        raise DataValidationError("bonferroni requires at least one p-value")
    corrected = alpha / len(p_values)
    return any(p < corrected for p in p_values)
