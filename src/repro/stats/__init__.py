"""Self-contained statistics substrate: special functions, hypothesis tests
and the percentile featurization used by the performance predictor."""

from repro.stats.descriptive import (
    DEFAULT_PERCENTILE_STEP,
    column_percentiles,
    matrix_moments,
    matrix_percentiles,
    percentile_grid,
    summary_moments,
)
from repro.stats.distributions import (
    chi2_sf,
    empirical_cdf,
    kolmogorov_sf,
    log_gamma,
    normal_cdf,
    regularized_gamma_p,
)
from repro.stats.tests import (
    TestResult,
    bonferroni,
    chi2_from_counts,
    chi2_two_sample,
    ks_two_sample,
)

__all__ = [
    "DEFAULT_PERCENTILE_STEP",
    "TestResult",
    "bonferroni",
    "chi2_from_counts",
    "chi2_sf",
    "chi2_two_sample",
    "column_percentiles",
    "empirical_cdf",
    "kolmogorov_sf",
    "ks_two_sample",
    "log_gamma",
    "matrix_moments",
    "matrix_percentiles",
    "normal_cdf",
    "percentile_grid",
    "regularized_gamma_p",
    "summary_moments",
]
