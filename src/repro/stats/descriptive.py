"""Descriptive statistics used for featurizing model outputs.

The paper featurizes black-box model outputs by computing class-wise
percentiles of the predicted probabilities ("collecting the 0th, 5th,
10th, ... percentile"). These helpers implement that featurization.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.exceptions import DataValidationError

DEFAULT_PERCENTILE_STEP = 5


@lru_cache(maxsize=None)
def _cached_grid(step: int) -> np.ndarray:
    grid = np.arange(0, 101, step, dtype=np.float64)
    # Steps that do not divide 100 (e.g. 7 -> 0, 7, ..., 98) would drop
    # the maximum; the grid always ends at the 100th percentile so fit-
    # and serving-time feature vectors keep identical widths.
    if grid[-1] != 100.0:
        grid = np.append(grid, 100.0)
    grid.setflags(write=False)
    return grid


def percentile_grid(step: int = DEFAULT_PERCENTILE_STEP) -> np.ndarray:
    """The percentile levels 0, step, 2*step, ..., capped with 100.

    The grid always includes the 100th percentile, even when ``step``
    does not divide 100 (``step=7`` gives 0, 7, ..., 98, 100).
    Featurization calls this once per corruption episode, so the grid is
    cached (and returned read-only to keep the cache trustworthy).
    """
    if not 1 <= step <= 100:
        raise DataValidationError(f"percentile step must be in [1, 100], got {step}")
    return _cached_grid(int(step))


def column_percentiles(values: np.ndarray, step: int = DEFAULT_PERCENTILE_STEP) -> np.ndarray:
    """Percentiles of a 1-d sample at the standard grid."""
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise DataValidationError("cannot compute percentiles of an empty sample")
    return np.percentile(values, percentile_grid(step))


def matrix_percentiles(matrix: np.ndarray, step: int = DEFAULT_PERCENTILE_STEP) -> np.ndarray:
    """Column-wise percentiles of a 2-d matrix, flattened to one vector.

    For an (n_examples, n_classes) probability matrix this produces the
    paper's feature vector: the per-class output distributions summarized by
    their percentile profiles, concatenated class by class.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataValidationError(f"expected a 2-d matrix, got shape {matrix.shape}")
    if matrix.shape[0] == 0:
        raise DataValidationError("cannot featurize an empty prediction matrix")
    levels = percentile_grid(step)
    return np.percentile(matrix, levels, axis=0).T.ravel()


def summary_moments(values: np.ndarray) -> np.ndarray:
    """Mean, std, min, max of a sample — the ablation alternative to percentiles."""
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.size == 0:
        raise DataValidationError("cannot summarize an empty sample")
    return np.array([values.mean(), values.std(), values.min(), values.max()])


def matrix_moments(matrix: np.ndarray) -> np.ndarray:
    """Column-wise moments of a 2-d matrix, flattened (ablation featurizer)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise DataValidationError(f"expected a non-empty 2-d matrix, got shape {matrix.shape}")
    stats = [matrix.mean(axis=0), matrix.std(axis=0), matrix.min(axis=0), matrix.max(axis=0)]
    return np.stack(stats, axis=1).ravel()
