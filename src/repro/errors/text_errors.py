"""Adversarial text perturbation for the tweets dataset.

The paper simulates attackers rewriting trolling tweets in 'leetspeak'
("hello world" -> "h3110 w041d") to slip past the classifier: the hashed
n-grams of the rewritten words no longer match anything seen in training.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors.base import ErrorGen
from repro.tabular.frame import DataFrame

_LEET = {
    "a": "4", "e": "3", "i": "1", "l": "1", "o": "0",
    "s": "5", "t": "7", "b": "8", "g": "9",
}


def to_leetspeak(text: str) -> str:
    """Rewrite a string using the classic leetspeak substitutions."""
    return "".join(_LEET.get(ch, ch) for ch in text.lower())


class LeetspeakAdversarial(ErrorGen):
    """Rewrite a fraction of text values in leetspeak."""

    name = "adversarial_leetspeak"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.text_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            replacements = [
                None if values[row] is None else to_leetspeak(values[row]) for row in rows
            ]
            corrupted.set_values(name, rows, replacements)
        return corrupted
