"""Programmatic error generators — the user-facing specification of the
dataset shifts and data errors the performance predictor trains against."""

from repro.errors.base import CorruptionReport, ErrorGen
from repro.errors.entropy_errors import ModelEntropyMissingValues
from repro.errors.extended_errors import (
    CategoryShift,
    ClippedValues,
    DuplicateRows,
    ImageContrastShift,
    ImageOcclusion,
    PaddedStrings,
    ShuffledColumn,
    extended_training_pool,
)
from repro.errors.image_errors import ImageNoise, ImageRotation
from repro.errors.mixture import ErrorMixture, PartiallyAppliedError, blend_frames
from repro.errors.tabular_errors import (
    EncodingErrors,
    GaussianOutliers,
    MissingValues,
    Scaling,
    SignFlip,
    Smearing,
    SwappedValues,
    Typos,
)
from repro.errors.text_errors import LeetspeakAdversarial, to_leetspeak

__all__ = [
    "CategoryShift",
    "ClippedValues",
    "CorruptionReport",
    "DuplicateRows",
    "EncodingErrors",
    "ErrorGen",
    "ErrorMixture",
    "GaussianOutliers",
    "ImageContrastShift",
    "ImageNoise",
    "ImageOcclusion",
    "ImageRotation",
    "LeetspeakAdversarial",
    "MissingValues",
    "ModelEntropyMissingValues",
    "PaddedStrings",
    "PartiallyAppliedError",
    "Scaling",
    "ShuffledColumn",
    "SignFlip",
    "Smearing",
    "SwappedValues",
    "Typos",
    "blend_frames",
    "extended_training_pool",
    "to_leetspeak",
]
