"""Image perturbations for the digits / fashion experiments.

* :class:`ImageNoise` — additive zero-mean gaussian pixel noise.
* :class:`ImageRotation` — rotation by a randomly chosen angle.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy import ndimage

from repro.errors.base import ErrorGen
from repro.tabular.frame import DataFrame


class ImageNoise(ErrorGen):
    """Add zero-mean gaussian noise to a fraction of the images."""

    name = "image_noise"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.image_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        # The paper samples the noise magnitude randomly; std up to 0.5 on
        # [0, 1] pixels spans "barely visible" to "mostly destroyed".
        params["std"] = float(rng.uniform(0.05, 0.5))
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        std = params.get("std", 0.25)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            images = corrupted[name][rows]
            noisy = np.clip(images + rng.normal(scale=std, size=images.shape), 0.0, 1.0)
            corrupted.set_values(name, rows, noisy)
        return corrupted


class ImageRotation(ErrorGen):
    """Rotate a fraction of the images by a randomly chosen angle."""

    name = "image_rotation"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.image_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["max_angle"] = float(rng.uniform(10.0, 180.0))
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        max_angle = params.get("max_angle", 90.0)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            images = corrupted[name][rows]
            rotated = np.empty_like(images)
            angles = rng.uniform(-max_angle, max_angle, size=rows.size)
            for i, angle in enumerate(angles):
                rotated[i] = ndimage.rotate(
                    images[i], angle, reshape=False, order=1, mode="constant"
                )
            corrupted.set_values(name, rows, np.clip(rotated, 0.0, 1.0))
        return corrupted
