"""Model-entropy based missing values (active-learning flavored).

The paper's hardest missing-value variant: rank examples by how *certain*
the classifier is (``1 - p_max`` uncertainty) and discard values from the
'easy', most-certain examples. This couples the corruption to the model's
own decision surface, so output statistics shift in a subtler way than
under uniformly random missingness.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors.base import ErrorGen
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class ModelEntropyMissingValues(ErrorGen):
    """Discard values from the examples the model is most certain about.

    Parameters
    ----------
    predict_proba:
        Callable mapping a frame to an ``(n, m)`` probability matrix — in
        practice the black box model's prediction function.
    """

    name = "entropy_missing_values"

    def __init__(self, predict_proba: Callable[[DataFrame], np.ndarray], columns=None):
        super().__init__(columns)
        self.predict_proba = predict_proba

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.categorical_columns + frame.numeric_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        if not 0.0 <= fraction <= 1.0:
            raise CorruptionError(f"fraction must be in [0, 1], got {fraction}")
        proba = np.asarray(self.predict_proba(frame))
        if proba.ndim != 2 or proba.shape[0] != len(frame):
            raise CorruptionError("predict_proba must return an (n_rows, m) matrix")
        uncertainty = 1.0 - proba.max(axis=1)
        # 'Easy' examples have low uncertainty; corrupt those first.
        n_corrupt = int(round(fraction * len(frame)))
        rows = np.argsort(uncertainty, kind="mergesort")[:n_corrupt]
        corrupted = frame.copy()
        for name in columns:
            if rows.size == 0:
                continue
            if frame.schema.type_of(name) is ColumnType.NUMERIC:
                corrupted.set_values(name, rows, np.full(rows.size, np.nan))
            else:
                corrupted.set_values(name, rows, [None] * rows.size)
        return corrupted
