"""Error generator framework.

The paper's central user-facing abstraction: an engineer programmatically
specifies the *types* of data errors they expect (not their magnitudes) by
choosing from a library of :class:`ErrorGen` subclasses or writing their
own ``corrupt`` method. The framework then samples random magnitudes and
applies the generators to held-out data to build training material for the
performance predictor.

Contract
--------
* ``sample_params(frame, rng)`` draws a random parameterization (columns to
  hit, corruption fraction, magnitudes) for one application.
* ``corrupt(frame, rng, **params)`` returns a **new** corrupted frame; the
  input frame is never mutated.
* ``corrupt_random(frame, rng)`` chains the two and also returns the drawn
  parameters so experiments can log them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame


@dataclass(frozen=True)
class CorruptionReport:
    """What a generator actually did to a frame (for experiment logging)."""

    error_name: str
    params: dict[str, Any]


class ErrorGen(abc.ABC):
    """Base class for programmatic error generators."""

    name: str = "error"

    def __init__(self, columns: Sequence[str] | None = None):
        # When columns is None the generator picks targets at random per
        # application, matching the paper's experiment protocol.
        self.columns = list(columns) if columns is not None else None

    @abc.abstractmethod
    def applicable_columns(self, frame: DataFrame) -> list[str]:
        """Columns of the frame this generator can corrupt."""

    @abc.abstractmethod
    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        """Return a corrupted copy of the frame."""

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        """Random parameterization: 1..n target columns and a fraction."""
        targets = self._resolve_columns(frame)
        n_columns = int(rng.integers(1, len(targets) + 1))
        chosen = list(rng.choice(targets, size=n_columns, replace=False))
        return {"columns": chosen, "fraction": float(rng.uniform(0.05, 1.0))}

    def corrupt_random(
        self, frame: DataFrame, rng: np.random.Generator
    ) -> tuple[DataFrame, CorruptionReport]:
        params = self.sample_params(frame, rng)
        corrupted = self.corrupt(frame, rng, **params)
        return corrupted, CorruptionReport(error_name=self.name, params=params)

    def scaled_params(
        self,
        frame: DataFrame,
        rng: np.random.Generator,
        intensity: float,
        columns: Sequence[str] | None = None,
    ) -> dict[str, Any]:
        """Magnitude parameters interpolated to a drift ``intensity``.

        Where :meth:`sample_params` draws a *random* magnitude (the
        paper's i.i.d. episode protocol), this maps a scheduled intensity
        in ``[0, 1]`` onto the same parameter space monotonically:
        ``0`` leaves the frame untouched, ``1`` is the generator's
        maximum corruption. Drift scenarios (:mod:`repro.scenarios`)
        call this per scheduled batch so a gradual ramp produces a
        gradually worsening frame instead of an i.i.d. lottery.

        The default interpolates the corruption ``fraction`` linearly
        over every applicable column (stable targets keep consecutive
        batches comparable); generators with extra magnitude knobs
        override this and interpolate those too, always inside the
        bounds :meth:`sample_params` draws from. ``rng`` is unused here
        but part of the contract so subclasses may randomize tie-breaks.
        """
        if not 0.0 <= intensity <= 1.0:
            raise CorruptionError(
                f"{self.name}: intensity must be in [0, 1], got {intensity}"
            )
        if columns is not None:
            targets = [c for c in columns if c in self.applicable_columns(frame)]
            missing = [c for c in columns if c not in frame]
            if missing:
                raise CorruptionError(f"{self.name}: unknown columns {missing}")
            if not targets:
                raise CorruptionError(
                    f"{self.name}: none of {list(columns)} is applicable"
                )
        else:
            targets = self._resolve_columns(frame)
        return {"columns": list(targets), "fraction": float(intensity)}

    def corrupt_scaled(
        self,
        frame: DataFrame,
        rng: np.random.Generator,
        intensity: float,
        columns: Sequence[str] | None = None,
    ) -> tuple[DataFrame, CorruptionReport]:
        """Apply the generator at a scheduled intensity (see
        :meth:`scaled_params`). Intensity ``0`` returns the frame
        untouched without consuming randomness."""
        if intensity == 0.0:
            return frame, CorruptionReport(
                error_name=self.name, params={"fraction": 0.0, "columns": []}
            )
        params = self.scaled_params(frame, rng, intensity, columns=columns)
        corrupted = self.corrupt(frame, rng, **params)
        return corrupted, CorruptionReport(error_name=self.name, params=params)

    def _resolve_columns(self, frame: DataFrame) -> list[str]:
        applicable = self.applicable_columns(frame)
        if self.columns is not None:
            targets = [c for c in self.columns if c in applicable]
            missing = [c for c in self.columns if c not in frame]
            if missing:
                raise CorruptionError(f"{self.name}: unknown columns {missing}")
        else:
            targets = applicable
        if not targets:
            raise CorruptionError(
                f"{self.name}: no applicable columns in frame {frame.schema!r}"
            )
        return targets

    def _pick_rows(
        self, n_rows: int, fraction: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Random row subset of the requested fraction (possibly empty)."""
        if not 0.0 <= fraction <= 1.0:
            raise CorruptionError(f"{self.name}: fraction must be in [0, 1], got {fraction}")
        size = int(round(fraction * n_rows))
        if size == 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(n_rows, size=size, replace=False)

    def __repr__(self) -> str:
        target = "random-columns" if self.columns is None else ",".join(self.columns)
        return f"{type(self).__name__}({target})"
