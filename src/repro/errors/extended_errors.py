"""Extended error generators (the paper's future-work direction).

§7 of the paper: "we intend to investigate the effects of more error
types, and aim to empirically study whether there is a set of errors for
training which generalizes to the majority of real world cases". This
module adds that richer pool:

* :class:`CategoryShift` — label-shift-style resampling of a categorical
  column toward one dominant category.
* :class:`DuplicateRows` — a fraction of rows replaced by copies of other
  rows (double-ingestion bugs).
* :class:`ShuffledColumn` — values of one column permuted across rows,
  destroying the row-wise association while preserving the marginal.
* :class:`ClippedValues` — numeric values clamped into a percentile band
  (sensor saturation, defensive-coding bugs).
* :class:`PaddedStrings` — whitespace / control characters appended to
  categorical values (classic CSV-export bug; exact-match encoders break).
* :class:`ImageOcclusion` — a random box of pixels blanked out.
* :class:`ImageContrastShift` — gamma-style brightness/contrast drift.

:func:`extended_training_pool` bundles them with the paper's known four
for the generalization study in ``benchmarks/test_future_work_pool.py``.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors.base import ErrorGen
from repro.errors.tabular_errors import (
    GaussianOutliers,
    MissingValues,
    Scaling,
    SwappedValues,
)
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame


class CategoryShift(ErrorGen):
    """Resample a fraction of one categorical column to a dominant value."""

    name = "category_shift"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.categorical_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        targets = self._resolve_columns(frame)
        column = str(rng.choice(targets))
        values = [v for v in frame[column] if v is not None]
        if not values:
            raise CorruptionError(f"{self.name}: column {column!r} is entirely missing")
        dominant = str(rng.choice(values))
        return {
            "columns": [column],
            "fraction": float(rng.uniform(0.05, 1.0)),
            "dominant": dominant,
        }

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        (column,), fraction = params["columns"], params["fraction"]
        dominant = params["dominant"]
        corrupted = frame.copy()
        rows = self._pick_rows(len(frame), fraction, rng)
        if rows.size:
            corrupted.set_values(column, rows, [dominant] * rows.size)
        return corrupted


class DuplicateRows(ErrorGen):
    """Replace a fraction of rows with copies of other rows (all columns)."""

    name = "duplicate_rows"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.schema.names

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        return {
            "columns": frame.schema.names,
            "fraction": float(rng.uniform(0.05, 0.8)),
        }

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        fraction = params["fraction"]
        corrupted = frame.copy()
        rows = self._pick_rows(len(frame), fraction, rng)
        if rows.size == 0:
            return corrupted
        sources = rng.integers(0, len(frame), size=rows.size)
        for name in frame.schema.names:
            corrupted.set_values(name, rows, frame[name][sources])
        return corrupted


class ShuffledColumn(ErrorGen):
    """Permute one column across rows, breaking row-wise associations."""

    name = "shuffled_column"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns + frame.categorical_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        targets = self._resolve_columns(frame)
        return {
            "columns": [str(rng.choice(targets))],
            "fraction": float(rng.uniform(0.1, 1.0)),
        }

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        (column,), fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        rows = self._pick_rows(len(frame), fraction, rng)
        if rows.size < 2:
            return corrupted
        shuffled = rng.permutation(rows)
        corrupted.set_values(column, rows, frame[column][shuffled])
        return corrupted


class ClippedValues(ErrorGen):
    """Clamp numeric values into a central percentile band (saturation)."""

    name = "clipped_values"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["band"] = float(rng.uniform(5.0, 35.0))  # clip at [band, 100-band] pctl
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        band = params.get("band", 20.0)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            finite = values[~np.isnan(values)]
            if finite.size == 0:
                continue
            low = np.percentile(finite, band)
            high = np.percentile(finite, 100.0 - band)
            corrupted.set_values(name, rows, np.clip(values[rows], low, high))
        return corrupted


class PaddedStrings(ErrorGen):
    """Append whitespace to categorical values (breaks exact-match encoders)."""

    name = "padded_strings"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.categorical_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            replacements = [
                None if values[row] is None else values[row] + " " * int(rng.integers(1, 4))
                for row in rows
            ]
            corrupted.set_values(name, rows, replacements)
        return corrupted


class ImageOcclusion(ErrorGen):
    """Blank a random box in a fraction of the images."""

    name = "image_occlusion"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.image_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["box_fraction"] = float(rng.uniform(0.15, 0.5))
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        box_fraction = params.get("box_fraction", 0.3)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            images = corrupted[name][rows].copy()
            _, height, width = images.shape
            box_h = max(1, int(box_fraction * height))
            box_w = max(1, int(box_fraction * width))
            for i in range(images.shape[0]):
                top = int(rng.integers(0, height - box_h + 1))
                left = int(rng.integers(0, width - box_w + 1))
                images[i, top : top + box_h, left : left + box_w] = 0.0
            corrupted.set_values(name, rows, images)
        return corrupted


class ImageContrastShift(ErrorGen):
    """Gamma-style contrast / brightness drift on a fraction of images."""

    name = "image_contrast"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.image_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["gamma"] = float(rng.uniform(0.3, 3.0))
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        gamma = params.get("gamma", 1.5)
        if gamma <= 0:
            raise CorruptionError(f"gamma must be positive, got {gamma}")
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            images = np.clip(corrupted[name][rows], 0.0, 1.0)
            corrupted.set_values(name, rows, images**gamma)
        return corrupted


def extended_training_pool() -> dict[str, ErrorGen]:
    """The known four plus the future-work generators (tabular tasks)."""
    return {
        "missing_values": MissingValues(),
        "outliers": GaussianOutliers(),
        "swapped_values": SwappedValues(),
        "scaling": Scaling(),
        "category_shift": CategoryShift(),
        "duplicate_rows": DuplicateRows(),
        "shuffled_column": ShuffledColumn(),
        "clipped_values": ClippedValues(),
        "padded_strings": PaddedStrings(),
    }
