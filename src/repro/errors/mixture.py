"""Mixtures of error generators.

The validation experiments (§6.2) corrupt serving data with *randomly
chosen mixtures* of error types with independent probabilities — including
the clean case where nothing fires. :class:`ErrorMixture` composes a set of
generators that way, and :func:`blend_frames` implements the §6.1.2
protocol of blending a fraction of corrupted rows into otherwise clean data.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors.base import CorruptionReport, ErrorGen
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame


class ErrorMixture:
    """Apply a random subset of generators, each with random magnitude.

    Each generator independently fires with probability ``fire_prob``; a
    firing generator samples its own columns and corruption fraction. With
    no generator firing the frame passes through clean (the paper's
    ``p_err = 0`` case), which gives the performance predictor examples of
    undamaged data too.
    """

    def __init__(self, generators: Sequence[ErrorGen], fire_prob: float = 0.6):
        if not generators:
            raise CorruptionError("ErrorMixture needs at least one generator")
        if not 0.0 <= fire_prob <= 1.0:
            raise CorruptionError(f"fire_prob must be in [0, 1], got {fire_prob}")
        self.generators = list(generators)
        self.fire_prob = fire_prob

    def corrupt_random(
        self, frame: DataFrame, rng: np.random.Generator
    ) -> tuple[DataFrame, list[CorruptionReport]]:
        corrupted = frame
        reports: list[CorruptionReport] = []
        for generator in self.generators:
            if rng.random() >= self.fire_prob:
                continue
            corrupted, report = generator.corrupt_random(corrupted, rng)
            reports.append(report)
        return corrupted, reports

    def __repr__(self) -> str:
        names = ", ".join(g.name for g in self.generators)
        return f"ErrorMixture([{names}], fire_prob={self.fire_prob})"


class PartiallyAppliedError(ErrorGen):
    """Wrap a generator so only a fraction of its corruption lands.

    Used by the §6.1.2 unknown-error experiment: with ``exposure`` 0.25,
    only a quarter of the rows the wrapped generator corrupted make it into
    the output, so a performance predictor trained through this wrapper has
    seen the error type only faintly (exposure 0 = never).
    """

    def __init__(self, inner: ErrorGen, exposure: float):
        super().__init__(columns=None)
        if not 0.0 <= exposure <= 1.0:
            raise CorruptionError(f"exposure must be in [0, 1], got {exposure}")
        self.inner = inner
        self.exposure = exposure
        self.name = f"partial({inner.name}, {exposure:.2f})"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return self.inner.applicable_columns(frame)

    def sample_params(self, frame: DataFrame, rng: np.random.Generator):
        return self.inner.sample_params(frame, rng)

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params) -> DataFrame:
        if self.exposure == 0.0:
            return frame.copy()
        corrupted = self.inner.corrupt(frame, rng, **params)
        if self.exposure == 1.0:
            return corrupted
        return blend_frames(frame, corrupted, self.exposure, rng)


def blend_frames(
    clean: DataFrame,
    corrupted: DataFrame,
    fraction_corrupted: float,
    rng: np.random.Generator,
) -> DataFrame:
    """Mix rows of a corrupted frame into a clean one (§6.1.2 protocol).

    Row i comes from ``corrupted`` with probability ``fraction_corrupted``
    and from ``clean`` otherwise; row order and count are preserved so
    labels stay aligned.
    """
    if len(clean) != len(corrupted):
        raise CorruptionError("clean and corrupted frames must have equal row counts")
    if clean.schema != corrupted.schema:
        raise CorruptionError("clean and corrupted frames must share a schema")
    if not 0.0 <= fraction_corrupted <= 1.0:
        raise CorruptionError(
            f"fraction_corrupted must be in [0, 1], got {fraction_corrupted}"
        )
    take_corrupted = rng.random(len(clean)) < fraction_corrupted
    if not take_corrupted.any():
        return clean.copy()
    if take_corrupted.all():
        return corrupted.copy()
    blended = clean.copy()
    rows = np.flatnonzero(take_corrupted)
    for name in clean.schema.names:
        blended.set_values(name, rows, corrupted[name][rows])
    return blended
