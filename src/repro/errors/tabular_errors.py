"""Error generators for relational data.

Implements the perturbations from §6 of the paper:

* :class:`MissingValues` — missing cells in categorical (or numeric) columns.
* :class:`GaussianOutliers` — additive noise with 2-5x column std.
* :class:`SwappedValues` — values swapped between column pairs.
* :class:`Scaling` — values multiplied by 10 / 100 / 1000.
* :class:`EncodingErrors` — mojibake character substitutions.

Plus the "unknown" errors from §6.2.2, which the validator never sees at
training time:

* :class:`Typos` — random character edits in categorical values.
* :class:`Smearing` — numeric values shifted by up to +-10%.
* :class:`SignFlip` — numeric values multiplied by -1.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors.base import ErrorGen
from repro.exceptions import CorruptionError
from repro.tabular.frame import DataFrame
from repro.tabular.schema import ColumnType


class MissingValues(ErrorGen):
    """Introduce missing cells at random into categorical or numeric columns."""

    name = "missing_values"

    def __init__(self, columns=None, column_kind: str = "categorical"):
        super().__init__(columns)
        if column_kind not in ("categorical", "numeric", "any"):
            raise CorruptionError(f"unknown column_kind {column_kind!r}")
        self.column_kind = column_kind

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        if self.column_kind == "categorical":
            return frame.categorical_columns
        if self.column_kind == "numeric":
            return frame.numeric_columns
        return frame.categorical_columns + frame.numeric_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            if frame.schema.type_of(name) is ColumnType.NUMERIC:
                corrupted.set_values(name, rows, np.full(rows.size, np.nan))
            else:
                corrupted.set_values(name, rows, [None] * rows.size)
        return corrupted


class GaussianOutliers(ErrorGen):
    """Add gaussian noise (std scaled 2-5x the column std) to numeric cells."""

    name = "outliers"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["scale"] = float(rng.uniform(2.0, 5.0))
        return params

    def scaled_params(
        self, frame, rng, intensity, columns=None
    ) -> dict[str, Any]:
        # Interpolate the noise std inside the sample_params range (2-5x)
        # so scheduled ramps stay comparable to training-time episodes.
        params = super().scaled_params(frame, rng, intensity, columns=columns)
        params["scale"] = 2.0 + 3.0 * float(intensity)
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        scale = params.get("scale", 3.0)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            column_std = float(np.nanstd(values))
            if column_std == 0.0:
                column_std = 1.0
            noise = rng.normal(scale=scale * column_std, size=rows.size)
            corrupted.set_values(name, rows, values[rows] + noise)
        return corrupted


class SwappedValues(ErrorGen):
    """Swap a proportion of values between a pair of columns.

    For same-type pairs values are exchanged directly. For a numeric /
    categorical pair the swap mimics what a buggy preprocessing join does:
    the numeric side receives an unparseable string and becomes missing,
    the categorical side receives the stringified number (an unseen
    category).
    """

    name = "swapped_values"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns + frame.categorical_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        targets = self._resolve_columns(frame)
        if len(targets) < 2:
            raise CorruptionError("swapped_values needs at least two applicable columns")
        pair = list(rng.choice(targets, size=2, replace=False))
        return {"columns": pair, "fraction": float(rng.uniform(0.05, 1.0))}

    def scaled_params(
        self, frame, rng, intensity, columns=None
    ) -> dict[str, Any]:
        # A scheduled swap needs a *stable* column pair batch to batch, so
        # take the first two applicable targets deterministically instead
        # of sampling a random pair.
        params = super().scaled_params(frame, rng, intensity, columns=columns)
        targets = params["columns"]
        if len(targets) < 2:
            raise CorruptionError("swapped_values needs at least two applicable columns")
        params["columns"] = targets[:2]
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        if len(columns) != 2:
            raise CorruptionError("swapped_values expects exactly two columns")
        first, second = columns
        corrupted = frame.copy()
        rows = self._pick_rows(len(frame), fraction, rng)
        if rows.size == 0:
            return corrupted
        type_a = frame.schema.type_of(first)
        type_b = frame.schema.type_of(second)
        values_a = corrupted[first][rows].copy()
        values_b = corrupted[second][rows].copy()
        if type_a is type_b:
            corrupted.set_values(first, rows, values_b)
            corrupted.set_values(second, rows, values_a)
            return corrupted
        numeric, categorical = (first, second) if type_a is ColumnType.NUMERIC else (second, first)
        numeric_values = corrupted[numeric][rows].copy()
        # Numeric side: category strings do not parse -> missing.
        corrupted.set_values(numeric, rows, np.full(rows.size, np.nan))
        # Categorical side: stringified numbers become unseen categories.
        as_strings = [
            None if np.isnan(v) else str(round(float(v), 2)) for v in numeric_values
        ]
        corrupted.set_values(categorical, rows, as_strings)
        return corrupted


class Scaling(ErrorGen):
    """Multiply a fraction of numeric values by 10, 100 or 1000.

    Mimics unit mix-ups, e.g. a feature switching from seconds to
    milliseconds in preprocessing code.
    """

    name = "scaling"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns

    def sample_params(self, frame: DataFrame, rng: np.random.Generator) -> dict[str, Any]:
        params = super().sample_params(frame, rng)
        params["factor"] = float(rng.choice([10.0, 100.0, 1000.0]))
        return params

    def scaled_params(
        self, frame, rng, intensity, columns=None
    ) -> dict[str, Any]:
        # Log-interpolate the unit mix-up factor across the discrete
        # sample_params choices: 10 at intensity 0, 1000 at intensity 1.
        params = super().scaled_params(frame, rng, intensity, columns=columns)
        params["factor"] = float(10.0 ** (1.0 + 2.0 * float(intensity)))
        return params

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        factor = params.get("factor", 100.0)
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            corrupted.set_values(name, rows, corrupted[name][rows] * factor)
        return corrupted


_MOJIBAKE = {"e": "é", "o": "œ", "u": "ü", "a": "â", "E": "É", "O": "Œ", "U": "Ü", "A": "Â"}


class EncodingErrors(ErrorGen):
    """Simulate broken character encodings in categorical values."""

    name = "encoding_errors"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.categorical_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            replacements = []
            for row in rows:
                value = values[row]
                if value is None:
                    replacements.append(None)
                else:
                    replacements.append("".join(_MOJIBAKE.get(ch, ch) for ch in value))
            corrupted.set_values(name, rows, replacements)
        return corrupted


class Typos(ErrorGen):
    """Random character edits in categorical values (an 'unknown' error)."""

    name = "typos"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.categorical_columns

    @staticmethod
    def _edit(value: str, rng: np.random.Generator) -> str:
        if not value:
            return value
        position = int(rng.integers(0, len(value)))
        replacement = chr(ord("a") + int(rng.integers(0, 26)))
        operation = rng.integers(0, 3)
        if operation == 0:  # substitute
            return value[:position] + replacement + value[position + 1 :]
        if operation == 1:  # insert
            return value[:position] + replacement + value[position:]
        return value[:position] + value[position + 1 :]  # delete

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            values = corrupted[name]
            replacements = [
                None if values[row] is None else self._edit(values[row], rng) for row in rows
            ]
            corrupted.set_values(name, rows, replacements)
        return corrupted


class Smearing(ErrorGen):
    """Shift numeric values by a random amount in +-10% (an 'unknown' error)."""

    name = "smearing"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            shifts = rng.uniform(-0.1, 0.1, size=rows.size)
            corrupted.set_values(name, rows, corrupted[name][rows] * (1.0 + shifts))
        return corrupted


class SignFlip(ErrorGen):
    """Multiply numeric values by -1 (an 'unknown' error)."""

    name = "sign_flip"

    def applicable_columns(self, frame: DataFrame) -> list[str]:
        return frame.numeric_columns

    def corrupt(self, frame: DataFrame, rng: np.random.Generator, **params: Any) -> DataFrame:
        columns, fraction = params["columns"], params["fraction"]
        corrupted = frame.copy()
        for name in columns:
            rows = self._pick_rows(len(frame), fraction, rng)
            if rows.size == 0:
                continue
            corrupted.set_values(name, rows, -corrupted[name][rows])
        return corrupted
