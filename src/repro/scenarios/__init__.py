"""Drift scenarios: temporal schedules × error generators, plus replay.

The deployment-facing half of the reproduction (ROADMAP item 5): where
:mod:`repro.core.corruption` draws i.i.d. single-shot corruption
episodes to *train* the performance predictor, this package generates
*serving timelines* — gradual ramps, sudden label shift, seasonal
recurrence, adversarial escalation, mixed-tenant traffic — and replays
them through the serving stack to measure how fast the monitor detects
real drift and how often it pages on clean traffic.
"""

from repro.scenarios.replay import (
    ReplayHarness,
    ReplayOutcome,
    ReplayReport,
    ScenarioMetrics,
    isolate_scenarios,
    scenario_metrics,
)
from repro.scenarios.scenario import (
    ERROR_POOL,
    LABEL_SHIFT,
    DriftEvent,
    Scenario,
    ScheduledBatch,
    builtin_suite,
    load_scenarios,
)
from repro.scenarios.schedule import (
    SCHEDULES,
    AdversarialRampSchedule,
    ConstantSchedule,
    RampSchedule,
    Schedule,
    SeasonalSchedule,
    StepSchedule,
    schedule_from_dict,
)

__all__ = [
    "ERROR_POOL",
    "LABEL_SHIFT",
    "SCHEDULES",
    "AdversarialRampSchedule",
    "ConstantSchedule",
    "DriftEvent",
    "RampSchedule",
    "ReplayHarness",
    "ReplayOutcome",
    "ReplayReport",
    "Scenario",
    "ScenarioMetrics",
    "ScheduledBatch",
    "Schedule",
    "SeasonalSchedule",
    "StepSchedule",
    "builtin_suite",
    "isolate_scenarios",
    "load_scenarios",
    "scenario_metrics",
    "schedule_from_dict",
]
