"""Streaming replay: scheduled drift batches through the serving stack.

:class:`ReplayHarness` plays one or more :class:`~repro.scenarios.scenario.Scenario`
timelines through a scorer — either an in-process
:class:`~repro.serving.service.ValidationService` (``score_now``) or a
live daemon via :class:`~repro.daemon.client.DaemonClient` — and scores
the *monitor*, not the model: per scenario it reports

* **detection latency** — batches from drift onset to the first
  (non-degraded) batch alarm,
* **time to sustained alarm** — batches from onset to the first
  sustained alarm (the paging signal),
* **false-alarm rate** — alarming fraction of the pre-onset,
  non-degraded batches (clean traffic must not page).

Degraded batches (fallback estimates during a predictor outage) are
excluded from all three, matching the monitor's accounting: an outage
is not drift.

Mixed-tenant traffic falls out of the suite structure: scenarios with
different ``endpoint`` names replay *interleaved* at the same global
clock, so heterogeneous per-endpoint drift shares the serving stack the
way real tenants do.

Replays are deterministic per seed at any ``n_jobs``/backend (each
scheduled batch owns a spawned RNG) and resumable: with a
``checkpoint``, scored outcomes persist every ``checkpoint_every``
steps through the PR-5 :class:`~repro.resilience.CheckpointStore`, and
a resumed run reconstructs monitor state by replaying the stored
estimates — bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.exceptions import DaemonError, DataValidationError
from repro.ml.metrics import accuracy_score, roc_auc_score
from repro.obs import current_tracer
from repro.parallel import Executor, spawn_seeds
from repro.resilience.checkpoint import CheckpointStore
from repro.scenarios.scenario import (
    Scenario,
    ScheduledBatch,
    _GenerationContext,
    _build_batch,
)
from repro.tabular.frame import DataFrame
from repro.uncertainty import ActiveAssessor


@dataclass(frozen=True)
class ReplayOutcome:
    """The monitor's verdict on one replayed batch.

    The harness holds the sampled rows' ground truth (the replay
    *oracle*), so beyond the monitor's decision it can record what a
    production system never sees: ``true_score`` (the black box's actual
    score on the batch) and ``covered`` (did the served interval contain
    it). ``labels_spent`` and the ``assessed_*`` fields come from the
    optional :class:`~repro.uncertainty.ActiveAssessor` pass — a
    label-budget refinement of the estimate that never feeds back into
    the monitor's alarm stream. All oracle fields are ``None``/0 in
    daemon mode (per-row model outputs stay in the daemon process).
    """

    scenario: str
    endpoint: str
    global_step: int
    step: int
    n_rows: int
    intensity: float
    estimated_score: float
    smoothed_score: float
    alarm: bool
    sustained_alarm: bool
    degraded: bool
    interval: tuple[float, float, float] | None = None
    interval_coverage: float | None = None
    true_score: float | None = None
    covered: bool | None = None
    labels_spent: int = 0
    assessed_score: float | None = None
    assessed_lower: float | None = None
    assessed_upper: float | None = None

    def __setstate__(self, state):
        # Outcomes checkpointed before the uncertainty fields existed
        # restore without them; default them so old stores keep loading.
        for name, value in {
            "interval": None,
            "interval_coverage": None,
            "true_score": None,
            "covered": None,
            "labels_spent": 0,
            "assessed_score": None,
            "assessed_lower": None,
            "assessed_upper": None,
        }.items():
            state.setdefault(name, value)
        for name, value in state.items():
            object.__setattr__(self, name, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "endpoint": self.endpoint,
            "global_step": self.global_step,
            "step": self.step,
            "n_rows": self.n_rows,
            "intensity": self.intensity,
            "estimated_score": self.estimated_score,
            "smoothed_score": self.smoothed_score,
            "alarm": self.alarm,
            "sustained_alarm": self.sustained_alarm,
            "degraded": self.degraded,
            "interval": None if self.interval is None else list(self.interval),
            "interval_coverage": self.interval_coverage,
            "true_score": self.true_score,
            "covered": self.covered,
            "labels_spent": self.labels_spent,
            "assessed_score": self.assessed_score,
            "assessed_lower": self.assessed_lower,
            "assessed_upper": self.assessed_upper,
        }


@dataclass(frozen=True)
class ScenarioMetrics:
    """Detection quality of the monitor on one scenario timeline.

    ``intervals``/``covered``/``coverage`` score the served intervals
    against the replay oracle: of the non-degraded batches that carried
    both an interval and a true score, how many intervals contained the
    truth. ``coverage`` is ``None`` when no batch was checkable (daemon
    mode, or interval serving disabled).
    """

    scenario: str
    n_batches: int
    onset: int | None
    detection_latency: int | None
    sustained_latency: int | None
    false_alarms: int
    pre_onset_batches: int
    false_alarm_rate: float
    alarms: int
    degraded_batches: int
    intervals: int = 0
    covered: int = 0
    coverage: float | None = None
    mean_interval_width: float | None = None
    labels_spent: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "n_batches": self.n_batches,
            "onset": self.onset,
            "detection_latency": self.detection_latency,
            "sustained_latency": self.sustained_latency,
            "false_alarms": self.false_alarms,
            "pre_onset_batches": self.pre_onset_batches,
            "false_alarm_rate": self.false_alarm_rate,
            "alarms": self.alarms,
            "degraded_batches": self.degraded_batches,
            "intervals": self.intervals,
            "covered": self.covered,
            "coverage": self.coverage,
            "mean_interval_width": self.mean_interval_width,
            "labels_spent": self.labels_spent,
        }

    def describe(self) -> str:
        detect = (
            "never detected"
            if self.detection_latency is None
            else f"detected after {self.detection_latency} batch(es)"
        )
        sustained = (
            "no sustained alarm"
            if self.sustained_latency is None
            else f"sustained after {self.sustained_latency}"
        )
        onset = "no onset" if self.onset is None else f"onset @{self.onset}"
        line = (
            f"{self.scenario}: {onset}, {detect}, {sustained}, "
            f"false-alarm rate {self.false_alarm_rate:.2f} "
            f"({self.false_alarms}/{self.pre_onset_batches} pre-onset)"
        )
        if self.coverage is not None:
            line += (
                f", coverage {self.coverage:.2f} "
                f"({self.covered}/{self.intervals})"
            )
        if self.labels_spent:
            line += f", {self.labels_spent} label(s) spent"
        return line


def scenario_metrics(
    scenario: Scenario, outcomes: Sequence[ReplayOutcome]
) -> ScenarioMetrics:
    """Score one scenario's replayed outcomes (any order; sorted here)."""
    ordered = sorted(
        (o for o in outcomes if o.scenario == scenario.name),
        key=lambda o: o.step,
    )
    onset = scenario.onset()
    pre = [
        o
        for o in ordered
        if not o.degraded and (onset is None or o.step < onset)
    ]
    false_alarms = sum(1 for o in pre if o.alarm)
    detection = sustained = None
    if onset is not None:
        for o in ordered:
            if o.step < onset or o.degraded:
                continue
            if detection is None and o.alarm:
                detection = o.step - onset
            if sustained is None and o.sustained_alarm:
                sustained = o.step - onset
            if detection is not None and sustained is not None:
                break
    checkable = [o for o in ordered if o.covered is not None and not o.degraded]
    widths = [
        o.interval[2] - o.interval[0]
        for o in ordered
        if o.interval is not None and not o.degraded
    ]
    return ScenarioMetrics(
        scenario=scenario.name,
        n_batches=len(ordered),
        onset=onset,
        detection_latency=detection,
        sustained_latency=sustained,
        false_alarms=false_alarms,
        pre_onset_batches=len(pre),
        false_alarm_rate=false_alarms / len(pre) if pre else 0.0,
        alarms=sum(1 for o in ordered if o.alarm and not o.degraded),
        degraded_batches=sum(1 for o in ordered if o.degraded),
        intervals=len(checkable),
        covered=sum(1 for o in checkable if o.covered),
        coverage=(
            sum(1 for o in checkable if o.covered) / len(checkable)
            if checkable
            else None
        ),
        mean_interval_width=float(np.mean(widths)) if widths else None,
        labels_spent=sum(o.labels_spent for o in ordered),
    )


@dataclass(frozen=True)
class ReplayReport:
    """Everything one replay run produced."""

    outcomes: tuple[ReplayOutcome, ...]
    metrics: tuple[ScenarioMetrics, ...]
    complete: bool

    def metric(self, scenario: str) -> ScenarioMetrics:
        for entry in self.metrics:
            if entry.scenario == scenario:
                return entry
        raise DataValidationError(f"no metrics for scenario {scenario!r}")

    def digest(self) -> str:
        """Content hash of the scored stream (exact floats included).

        Two replays of the same scenarios and seed must produce the same
        digest regardless of ``n_jobs``, backend, or checkpoint resume —
        the ``drift_replay`` bench gates on exactly this.
        """
        blob = json.dumps(
            [o.to_dict() for o in sorted(self.outcomes, key=lambda o: o.global_step)],
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def coverage(self) -> dict[str, Any]:
        """Pooled interval-coverage accounting across all scenarios."""
        intervals = sum(m.intervals for m in self.metrics)
        covered = sum(m.covered for m in self.metrics)
        widths = [
            o.interval[2] - o.interval[0]
            for o in self.outcomes
            if o.interval is not None and not o.degraded
        ]
        return {
            "intervals": intervals,
            "covered": covered,
            "coverage": covered / intervals if intervals else None,
            "mean_interval_width": float(np.mean(widths)) if widths else None,
            "labels_spent": sum(m.labels_spent for m in self.metrics),
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "complete": self.complete,
            "n_scored": len(self.outcomes),
            "digest": self.digest(),
            "coverage": self.coverage(),
            "scenarios": {m.scenario: m.to_dict() for m in self.metrics},
        }

    def describe(self) -> str:
        lines = [
            f"Replay: {len(self.outcomes)} batch(es) across "
            f"{len(self.metrics)} scenario(s)"
            + ("" if self.complete else " [PARTIAL]")
        ]
        pooled = self.coverage()
        if pooled["coverage"] is not None:
            lines.append(
                f"  interval coverage {pooled['coverage']:.2f} "
                f"({pooled['covered']}/{pooled['intervals']}), "
                f"{pooled['labels_spent']} label(s) spent"
            )
        lines.extend(f"  {m.describe()}" for m in self.metrics)
        return "\n".join(lines)


class ReplayHarness:
    """Plays drift scenarios through a scorer and scores the monitor.

    Parameters
    ----------
    frame / labels:
        The source pool scenario batches are resampled from (typically
        the held-out serving split — never the predictor's training
        data).
    service / client:
        Exactly one scoring target: an in-process
        :class:`~repro.serving.service.ValidationService` (batches go
        through ``score_now``) or a :class:`~repro.daemon.client.DaemonClient`
        talking to a live daemon.
    endpoint:
        Default endpoint for scenarios that don't pin one.
    n_jobs / backend:
        Parallelism for *batch generation* (corruption is the heavy
        part); scoring is inherently sequential because monitors are
        stateful. Results are bit-identical for every setting.
    label_budget / assessor:
        Enable Bayesian active assessment: per non-degraded batch the
        harness lets an :class:`~repro.uncertainty.ActiveAssessor`
        select up to ``label_budget`` rows, reveals their ground truth
        from the replay oracle, and records the posterior-refined
        estimate and credible interval on the outcome. Pass
        ``assessor`` to control selection strategy or prior strength;
        ``label_budget`` alone builds a default assessor. Service mode
        only — the refinement needs per-row model outputs, which a
        daemon keeps to itself. The assessment annotates outcomes; it
        never feeds the monitor's alarm stream.
    """

    def __init__(
        self,
        frame: DataFrame,
        labels: np.ndarray,
        service=None,
        client=None,
        endpoint: str | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
        label_budget: int | None = None,
        assessor: ActiveAssessor | None = None,
    ):
        if (service is None) == (client is None):
            raise DataValidationError(
                "provide exactly one of service= or client="
            )
        if assessor is None and label_budget is not None:
            assessor = ActiveAssessor(label_budget=label_budget)
        if assessor is not None and client is not None:
            raise DataValidationError(
                "label-budget assessment needs per-row model outputs; "
                "it is available in service mode only"
            )
        self.frame = frame
        self.labels = np.asarray(labels)
        self.service = service
        self.client = client
        self.endpoint = endpoint
        self.n_jobs = n_jobs
        self.backend = backend
        self.assessor = assessor
        self.label_budget = None if assessor is None else assessor.label_budget

    @property
    def mode(self) -> str:
        return "service" if self.service is not None else "daemon"

    # ------------------------------------------------------------------ #

    def run(
        self,
        scenarios: Scenario | Sequence[Scenario],
        seed: int | np.random.SeedSequence | np.random.Generator = 0,
        checkpoint: CheckpointStore | str | Path | None = None,
        checkpoint_every: int = 8,
        stop_after_steps: int | None = None,
    ) -> ReplayReport:
        """Replay scenarios interleaved on one global clock.

        With multiple scenarios, batch ``t`` of every scenario plays
        before batch ``t + 1`` of any (mixed-tenant round-robin). With
        ``checkpoint``, scored outcomes persist every
        ``checkpoint_every`` steps; a resumed run loads them, rebuilds
        monitor state in service mode by replaying the stored estimates
        (pass a *freshly constructed* service — daemon monitors live in
        the daemon process and need no rebuild), and continues
        bit-identically. ``stop_after_steps`` scores at most that many
        *new* batches then returns a partial report (the
        interrupt-and-resume path the parity bench exercises). As in
        :class:`~repro.core.corruption.CorruptionSampler`, a checkpoint
        built here from a bare path is removed on completion; a
        caller-supplied :class:`CheckpointStore` is left intact.
        """
        if isinstance(scenarios, Scenario):
            scenarios = [scenarios]
        scenarios = list(scenarios)
        if not scenarios:
            raise DataValidationError("need at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise DataValidationError(f"duplicate scenario names in {names}")
        for scenario in scenarios:
            if scenario.endpoint is None and self.endpoint is None:
                raise DataValidationError(
                    f"scenario {scenario.name!r} has no endpoint and the "
                    "harness has no default endpoint"
                )
        if checkpoint_every < 1:
            raise DataValidationError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )

        roots = spawn_seeds(seed, len(scenarios))
        plan = self._plan(scenarios)
        fingerprint = {
            "kind": "drift-replay",
            "mode": self.mode,
            "endpoint": self.endpoint,
            "rows": len(self.frame),
            "scenarios": [s.to_dict() for s in scenarios],
            "seed_entropy": int(roots[0].entropy) if roots else 0,
            "label_budget": self.label_budget,
        }
        owns_store = checkpoint is not None and not isinstance(
            checkpoint, CheckpointStore
        )
        store = (
            None
            if checkpoint is None
            else (CheckpointStore(checkpoint) if owns_store else checkpoint)
        )
        completed: dict[int, ReplayOutcome] = (
            store.load(fingerprint) if store is not None else {}
        )
        if completed and self.mode == "service":
            self._rebuild_monitors(scenarios, completed)

        pending = [task for task in plan if task[0] not in completed]
        if stop_after_steps is not None:
            pending = pending[: max(0, stop_after_steps)]

        executor = Executor(n_jobs=self.n_jobs, backend=self.backend)
        tracer = current_tracer()
        with tracer.span(
            "scenarios.replay",
            scenarios=len(scenarios),
            batches=len(plan),
            resumed=len(completed),
            pending=len(pending),
        ):
            since_save = 0
            for start in range(0, len(pending), checkpoint_every):
                chunk = pending[start : start + checkpoint_every]
                batches = self._generate_chunk(scenarios, roots, chunk, executor)
                for (global_step, index, _), batch in zip(chunk, batches):
                    completed[global_step] = self._score_batch(
                        scenarios[index], global_step, batch
                    )
                    since_save += 1
                if store is not None and since_save > 0:
                    store.save(fingerprint, completed)
                    since_save = 0

        complete = len(completed) == len(plan)
        if complete and store is not None and owns_store:
            store.clear()
        outcomes = tuple(
            completed[global_step]
            for global_step, _, _ in plan
            if global_step in completed
        )
        metrics = tuple(
            scenario_metrics(scenario, outcomes) for scenario in scenarios
        )
        return ReplayReport(outcomes=outcomes, metrics=metrics, complete=complete)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _plan(scenarios: list[Scenario]) -> list[tuple[int, int, int]]:
        """Global round-robin order: (global_step, scenario_index, step)."""
        plan: list[tuple[int, int, int]] = []
        longest = max(s.n_batches for s in scenarios)
        for step in range(longest):
            for index, scenario in enumerate(scenarios):
                if step < scenario.n_batches:
                    plan.append((len(plan), index, step))
        return plan

    def _generate_chunk(
        self,
        scenarios: list[Scenario],
        roots: list[np.random.SeedSequence],
        chunk: list[tuple[int, int, int]],
        executor: Executor,
    ) -> list[ScheduledBatch]:
        """Corrupt the chunk's batches in parallel, in plan order.

        Seeds come from each scenario's root spawned afresh per call
        (``generate_batches`` re-roots the same way), so chunk
        boundaries — and therefore resume points — cannot shift batch
        content.
        """
        seeds_by_scenario: dict[int, list[np.random.SeedSequence]] = {}
        tasks = []
        seeds = []
        for _, index, step in chunk:
            if index not in seeds_by_scenario:
                root = roots[index]
                fresh = np.random.SeedSequence(
                    entropy=root.entropy, spawn_key=root.spawn_key
                )
                seeds_by_scenario[index] = spawn_seeds(
                    fresh, scenarios[index].n_batches
                )
            tasks.append((index, step))
            seeds.append(seeds_by_scenario[index][step])
        contexts = {
            index: _GenerationContext(
                scenario=scenarios[index], frame=self.frame, labels=self.labels
            )
            for index in {index for index, _ in tasks}
        }
        return executor.map(
            _build_chunk_batch,
            tasks,
            seeds=seeds,
            shared=contexts,
        )

    def _score_batch(
        self, scenario: Scenario, global_step: int, batch: ScheduledBatch
    ) -> ReplayOutcome:
        endpoint = scenario.endpoint or self.endpoint
        if self.service is not None:
            result = self.service.score_now(endpoint, batch.frame)
            true_score, covered, assessment = self._consult_oracle(
                endpoint, batch, result, global_step
            )
            return ReplayOutcome(
                scenario=scenario.name,
                endpoint=endpoint,
                global_step=global_step,
                step=batch.step,
                n_rows=len(batch.frame),
                intensity=batch.intensity,
                estimated_score=result.estimated_score,
                smoothed_score=result.smoothed_score,
                alarm=result.alarm,
                sustained_alarm=result.sustained_alarm,
                degraded=result.degraded,
                interval=result.interval,
                interval_coverage=result.interval_coverage,
                true_score=true_score,
                covered=covered,
                labels_spent=0 if assessment is None else assessment.labels_spent,
                assessed_score=None if assessment is None else assessment.estimate,
                assessed_lower=None if assessment is None else assessment.lower,
                assessed_upper=None if assessment is None else assessment.upper,
            )
        response = self.client.score(endpoint, batch.frame)
        if not response.ok:
            raise DaemonError(
                f"daemon answered {response.status} for scenario "
                f"{scenario.name!r} step {batch.step}: {response.payload}"
            )
        payload = response.payload
        interval = payload.get("interval")
        return ReplayOutcome(
            scenario=scenario.name,
            endpoint=endpoint,
            global_step=global_step,
            step=batch.step,
            n_rows=len(batch.frame),
            intensity=batch.intensity,
            estimated_score=float(payload["estimated_score"]),
            smoothed_score=float(payload["smoothed_score"]),
            alarm=bool(payload["alarm"]),
            sustained_alarm=bool(payload["sustained_alarm"]),
            degraded=bool(payload.get("degraded", False)),
            interval=None if interval is None else tuple(float(v) for v in interval),
            interval_coverage=payload.get("interval_coverage"),
        )

    def _consult_oracle(self, endpoint, batch, result, global_step):
        """Score the batch against held-back truth (service mode only).

        Returns ``(true_score, covered, assessment)``. Degraded batches
        get neither a coverage verdict nor an assessment — a fallback
        estimate says nothing about the interval machinery, and active
        assessment needs the primary predictor's probabilities.
        """
        if batch.labels is None:
            return None, None, None
        registered = self.service.registry.get(endpoint)
        predictor = registered.predictor
        blackbox = predictor.blackbox
        proba = blackbox.predict_proba(batch.frame)
        predictions = blackbox.classes[np.argmax(proba, axis=1)]
        if predictor.metric == "accuracy":
            true_score = float(accuracy_score(batch.labels, predictions))
        else:
            true_score = float(
                roc_auc_score(
                    batch.labels, proba[:, 1], positive=blackbox.classes[1]
                )
            )
        covered = None
        if result.interval is not None and not result.degraded:
            covered = bool(
                result.interval[0] <= true_score <= result.interval[2]
            )
        assessment = None
        if self.assessor is not None and not result.degraded:
            correct = predictions == batch.labels
            assessment = self.assessor.assess(
                proba,
                lambda idx: correct[idx],
                prior_estimate=result.estimated_score,
                seed=global_step,
            )
        return true_score, covered, assessment

    def _rebuild_monitors(
        self, scenarios: list[Scenario], completed: dict[int, ReplayOutcome]
    ) -> None:
        """Replay checkpointed estimates into fresh service monitors.

        Monitor state is a deterministic function of the estimate
        stream (smoothing, streaks, counters), so feeding the stored
        floats back in global order reconstructs it bit-identically —
        without re-scoring a single batch. Endpoints alarming on the
        interval lower bound also need their alarm stream replayed from
        the stored intervals, or a resumed run's streaks would silently
        fall back to point-estimate alarming.
        """
        by_key: dict[str, Scenario] = {s.name: s for s in scenarios}
        for global_step in sorted(completed):
            outcome = completed[global_step]
            scenario = by_key[outcome.scenario]
            endpoint = scenario.endpoint or self.endpoint
            monitor = self.service.monitor(endpoint)
            alarm_score = self.service.interval_alarm_score(
                self.service.registry.get(endpoint),
                None if outcome.degraded else outcome.interval,
                outcome.n_rows,
            )
            monitor.observe_estimate(
                outcome.estimated_score,
                outcome.n_rows,
                degraded=outcome.degraded,
                alarm_score=alarm_score,
            )


def _build_chunk_batch(
    task: tuple[int, int],
    rng: np.random.Generator,
    contexts: dict[int, _GenerationContext],
) -> ScheduledBatch:
    index, step = task
    return _build_batch(step, rng, contexts[index])


def isolate_scenarios(
    service,
    scenarios: Sequence[Scenario],
    endpoint: str,
    version: str | None = None,
) -> list[Scenario]:
    """Give every scenario its own monitor by aliasing one endpoint.

    Scenarios replayed interleaved against the *same* endpoint share
    one :class:`~repro.monitoring.BatchMonitor`: each tenant's clean
    batches reset the others' alarm streaks and every tenant's
    estimates pollute the shared smoothed score, so per-scenario
    detection latencies become meaningless. This registers the base
    endpoint's fitted artifacts under ``<endpoint>-<scenario>`` aliases
    (same predictor and policy objects — registration is cheap) and
    pins each scenario without an explicit endpoint to its alias.
    Scenarios that already name an endpoint are left alone.

    Service mode only: a daemon's registry cannot be mutated from the
    client side — give daemon scenarios distinct endpoints in the
    serving config instead.
    """
    from dataclasses import replace

    from repro.serving.registry import Endpoint

    base = service.registry.get(endpoint, version)
    isolated: list[Scenario] = []
    for scenario in scenarios:
        if scenario.endpoint is not None:
            isolated.append(scenario)
            continue
        alias = f"{endpoint}-{scenario.name}"
        service.registry.register(
            Endpoint(
                name=alias,
                version=base.version,
                predictor=base.predictor,
                validator=base.validator,
                policy=base.policy,
            )
        )
        isolated.append(replace(scenario, endpoint=alias))
    return isolated
