"""Declarative drift scenarios: schedules × error generators.

A :class:`Scenario` describes one endpoint's serving traffic over time:
``n_batches`` batches of ``batch_size`` rows resampled from a source
pool, with a set of :class:`DriftEvent`s layered on top. Each event
pairs an error generator (by registry name) with a
:class:`~repro.scenarios.schedule.Schedule` that sets the corruption
intensity per batch; the special ``"label_shift"`` event changes the
*sampling* instead, interpolating the class priors of the drawn rows
(the paper's §6 shift family that corrupts no cell values at all).

Scenario generation is embarrassingly parallel and bit-identical at any
``n_jobs``/backend: every scheduled batch gets its own RNG spawned from
the root seed (:func:`repro.parallel.spawn_seeds`), so batch ``t`` is
the same whether it is built in-process, by a thread pool, or by a
process pool — and whether or not the run was resumed from a
checkpoint.

Scenarios are data. ``to_dict`` / :func:`scenario_from_dict` round-trip
through JSON, :func:`load_scenarios` reads scenario files for the
``repro replay`` CLI, and :func:`builtin_suite` provides the four named
drift families (gradual / sudden / seasonal / adversarial) plus a
mixed-tenant pairing used by the benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.errors.base import ErrorGen
from repro.errors.tabular_errors import (
    EncodingErrors,
    GaussianOutliers,
    MissingValues,
    Scaling,
    SignFlip,
    Smearing,
    SwappedValues,
    Typos,
)
from repro.exceptions import DataValidationError
from repro.parallel import pmap, spawn_seeds
from repro.scenarios.schedule import (
    AdversarialRampSchedule,
    RampSchedule,
    Schedule,
    SeasonalSchedule,
    StepSchedule,
    schedule_from_dict,
)
from repro.tabular.frame import DataFrame

#: Error generators addressable by name from scenario files. The key is
#: the generator's ``name`` attribute; ``label_shift`` is handled by the
#: sampler, not a generator.
ERROR_POOL: dict[str, type[ErrorGen]] = {
    cls.name: cls
    for cls in (
        MissingValues,
        GaussianOutliers,
        SwappedValues,
        Scaling,
        EncodingErrors,
        Typos,
        Smearing,
        SignFlip,
    )
}

LABEL_SHIFT = "label_shift"


@dataclass(frozen=True)
class DriftEvent:
    """One drift process: an error family under a temporal schedule.

    ``error`` names an :data:`ERROR_POOL` generator or ``"label_shift"``.
    ``columns`` optionally pins the generator to specific columns (so a
    ramp degrades the *same* features batch after batch). ``params``
    carries event-specific extras — for ``label_shift``:
    ``target_class`` (default: the rarest class in the source labels)
    and ``target_prior`` (default 0.9), the class prior reached at
    intensity 1.
    """

    error: str
    schedule: Schedule
    columns: tuple[str, ...] | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.error != LABEL_SHIFT and self.error not in ERROR_POOL:
            raise DataValidationError(
                f"unknown error {self.error!r}; valid: "
                f"{sorted(ERROR_POOL) + [LABEL_SHIFT]}"
            )
        if self.columns is not None:
            object.__setattr__(self, "columns", tuple(self.columns))

    def generator(self) -> ErrorGen | None:
        """The configured generator (``None`` for label shift)."""
        if self.error == LABEL_SHIFT:
            return None
        columns = list(self.columns) if self.columns is not None else None
        return ERROR_POOL[self.error](columns=columns)

    def to_dict(self) -> dict[str, Any]:
        return {
            "error": self.error,
            "schedule": self.schedule.to_dict(),
            "columns": None if self.columns is None else list(self.columns),
            "params": dict(self.params),
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "DriftEvent":
        if not isinstance(payload, dict) or "error" not in payload:
            raise DataValidationError(
                f"drift event payload must be a dict with 'error', got {payload!r}"
            )
        return DriftEvent(
            error=payload["error"],
            schedule=schedule_from_dict(payload.get("schedule", {})),
            columns=payload.get("columns"),
            params=dict(payload.get("params", {})),
        )


@dataclass(frozen=True, eq=False)
class ScheduledBatch:
    """One generated serving batch of a scenario timeline.

    ``labels`` carries the ground truth of the sampled pool rows, aligned
    with ``frame``. The serving path never sees them — they are the
    *oracle* side of the harness: the replay loop uses them to score
    empirical interval coverage and to answer the
    :class:`~repro.uncertainty.ActiveAssessor`'s label-budget queries.
    Cell corruption events alter feature values only, so the labels stay
    those of the source rows; a label-shift event reorders the sampling
    and the labels follow the drawn rows.
    """

    step: int
    frame: DataFrame
    intensities: dict[str, float]
    labels: np.ndarray | None = None

    @property
    def intensity(self) -> float:
        """The strongest event intensity acting on this batch."""
        return max(self.intensities.values(), default=0.0)


@dataclass(frozen=True)
class Scenario:
    """A named drift timeline for one endpoint's serving traffic."""

    name: str
    n_batches: int
    batch_size: int
    events: tuple[DriftEvent, ...]
    endpoint: str | None = None

    def __post_init__(self):
        if self.n_batches < 1:
            raise DataValidationError(
                f"n_batches must be >= 1, got {self.n_batches}"
            )
        if self.batch_size < 1:
            raise DataValidationError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if not self.events:
            raise DataValidationError("a scenario needs at least one event")
        object.__setattr__(self, "events", tuple(self.events))

    def intensities(self, t: int) -> dict[str, float]:
        """Per-event intensity at batch ``t`` (event name → intensity)."""
        values: dict[str, float] = {}
        for index, event in enumerate(self.events):
            key = event.error if event.error not in values else f"{event.error}#{index}"
            values[key] = event.schedule.intensity(t)
        return values

    def onset(self) -> int | None:
        """First batch where any event is active (``None`` = never)."""
        onsets = [
            onset
            for onset in (
                event.schedule.onset(self.n_batches) for event in self.events
            )
            if onset is not None
        ]
        return min(onsets) if onsets else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "n_batches": self.n_batches,
            "batch_size": self.batch_size,
            "endpoint": self.endpoint,
            "events": [event.to_dict() for event in self.events],
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "Scenario":
        if not isinstance(payload, dict):
            raise DataValidationError(
                f"scenario payload must be a dict, got {payload!r}"
            )
        missing = {"name", "n_batches", "batch_size", "events"} - set(payload)
        if missing:
            raise DataValidationError(
                f"scenario payload is missing {sorted(missing)}"
            )
        return Scenario(
            name=str(payload["name"]),
            n_batches=int(payload["n_batches"]),
            batch_size=int(payload["batch_size"]),
            events=tuple(
                DriftEvent.from_dict(event) for event in payload["events"]
            ),
            endpoint=payload.get("endpoint"),
        )

    # ------------------------------------------------------------------ #
    # Batch generation
    # ------------------------------------------------------------------ #

    def generate_batches(
        self,
        frame: DataFrame,
        labels: np.ndarray,
        seed: int | np.random.SeedSequence | np.random.Generator,
        steps: Sequence[int] | None = None,
        n_jobs: int | None = 1,
        backend: str = "auto",
    ) -> list[ScheduledBatch]:
        """Materialize the scenario's scheduled batches from a source pool.

        Every batch ``t`` draws from its own RNG —
        ``spawn_seeds(seed, n_batches)[t]`` — so the result is
        bit-identical at any ``n_jobs``/backend and for any subset of
        ``steps`` (a resumed run regenerating only the remaining steps
        produces exactly the batches the interrupted run would have).
        """
        if len(frame) != len(labels):
            raise DataValidationError(
                f"frame has {len(frame)} rows but labels has {len(labels)}"
            )
        for event in self.events:
            # Fail fast on bad label-shift params instead of surfacing
            # them as a wrapped worker error mid-generation.
            if event.error == LABEL_SHIFT:
                _resolve_shift(event, np.asarray(labels))
        # Re-root a SeedSequence before spawning: SeedSequence.spawn
        # advances an internal counter, so repeated chunked calls with
        # the same object would otherwise derive different batch seeds.
        if isinstance(seed, np.random.SeedSequence):
            seed = np.random.SeedSequence(
                entropy=seed.entropy, spawn_key=seed.spawn_key
            )
        seeds = spawn_seeds(seed, self.n_batches)
        wanted = list(range(self.n_batches)) if steps is None else list(steps)
        for step in wanted:
            if not 0 <= step < self.n_batches:
                raise DataValidationError(
                    f"step {step} outside [0, {self.n_batches})"
                )
        context = _GenerationContext(
            scenario=self, frame=frame, labels=np.asarray(labels)
        )
        return pmap(
            _build_batch,
            wanted,
            n_jobs=n_jobs,
            seeds=[seeds[step] for step in wanted],
            backend=backend,
            shared=context,
        )


@dataclass(frozen=True)
class _GenerationContext:
    """Read-only state shared by every batch task of one generate call."""

    scenario: Scenario
    frame: DataFrame
    labels: np.ndarray


def _build_batch(
    step: int, rng: np.random.Generator, context: _GenerationContext
) -> ScheduledBatch:
    """Build one scheduled batch with its private RNG.

    RNG call order is fixed (sampling, then events in scenario order)
    so the batch is a pure function of ``(scenario, source, step seed)``.
    """
    scenario = context.scenario
    intensities = scenario.intensities(step)
    batch, labels = _sample_rows(scenario, step, context, rng)
    for event in scenario.events:
        if event.error == LABEL_SHIFT:
            continue
        intensity = event.schedule.intensity(step)
        if intensity <= 0.0:
            continue
        generator = event.generator()
        batch, _ = generator.corrupt_scaled(
            batch, rng, intensity, columns=event.columns
        )
    return ScheduledBatch(
        step=step, frame=batch, intensities=intensities, labels=labels
    )


def _sample_rows(
    scenario: Scenario,
    step: int,
    context: _GenerationContext,
    rng: np.random.Generator,
) -> tuple[DataFrame, np.ndarray]:
    """Draw the batch's rows (and their labels), honouring an active
    label-shift event. RNG call order matches the pre-label-oracle code
    exactly, so generated frames stay bit-identical."""
    shift = next(
        (event for event in scenario.events if event.error == LABEL_SHIFT), None
    )
    n = scenario.batch_size
    if shift is None or shift.schedule.intensity(step) <= 0.0:
        indices = rng.choice(len(context.frame), size=n, replace=True)
        return context.frame.select_rows(indices), context.labels[indices]

    intensity = shift.schedule.intensity(step)
    labels = context.labels
    target, target_prior = _resolve_shift(shift, labels)
    target_mask = labels == np.asarray(target, dtype=labels.dtype)
    natural = float(np.mean(target_mask))
    prior = (1.0 - intensity) * natural + intensity * target_prior
    # Deterministic split (round, not a binomial draw) keeps the realized
    # prior monotone in the schedule instead of an extra noise source.
    n_target = int(round(prior * n))
    n_target = min(max(n_target, 0), n)
    target_pool = np.nonzero(target_mask)[0]
    other_pool = np.nonzero(~target_mask)[0]
    chosen = np.concatenate(
        [
            rng.choice(target_pool, size=n_target, replace=True),
            rng.choice(other_pool, size=n - n_target, replace=True),
        ]
    )
    order = rng.permutation(chosen)
    return context.frame.select_rows(order), labels[order]


def _resolve_shift(shift: DriftEvent, labels: np.ndarray):
    """Validate a label-shift event against the pool's labels.

    Returns ``(target_class, target_prior)``; raises on an absent target
    class, an out-of-range prior, or a single-class pool.
    """
    classes, counts = np.unique(labels, return_counts=True)
    if len(classes) < 2:
        raise DataValidationError("label_shift needs at least two classes")
    target = shift.params.get("target_class")
    if target is None:
        target = classes[int(np.argmin(counts))]
    else:
        matches = np.nonzero(classes == np.asarray(target, dtype=classes.dtype))[0]
        if matches.size == 0:
            raise DataValidationError(
                f"target_class {target!r} not present in labels"
            )
    target_prior = float(shift.params.get("target_prior", 0.9))
    if not 0.0 <= target_prior <= 1.0:
        raise DataValidationError(
            f"target_prior must be in [0, 1], got {target_prior}"
        )
    return target, target_prior


# ---------------------------------------------------------------------- #
# Scenario files and builtin families
# ---------------------------------------------------------------------- #


def load_scenarios(path: str | Path) -> list[Scenario]:
    """Read a scenario file: one scenario object or ``{"scenarios": [...]}``."""
    raw = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(raw)
    except json.JSONDecodeError as error:
        raise DataValidationError(f"{path} is not valid JSON: {error}") from error
    if isinstance(payload, dict) and "scenarios" in payload:
        entries = payload["scenarios"]
        if not isinstance(entries, list) or not entries:
            raise DataValidationError(f"{path}: 'scenarios' must be a non-empty list")
    elif isinstance(payload, list):
        entries = payload
    else:
        entries = [payload]
    return [Scenario.from_dict(entry) for entry in entries]


def builtin_suite(
    n_batches: int = 30,
    batch_size: int = 100,
    onset: int = 10,
    endpoint: str | None = None,
    families: Sequence[str] | None = None,
) -> list[Scenario]:
    """The four named drift families over a common timeline.

    ``gradual`` — covariate shift ramping linearly (outliers);
    ``sudden`` — label shift stepping to a skewed prior at ``onset``;
    ``seasonal`` — missing values recurring with period ``onset``;
    ``adversarial`` — scaling corruption escalating geometrically from a
    sub-detection intensity. ``families`` selects a subset by name.
    """
    duration = max(1, (n_batches - onset) // 2)
    suite = {
        "gradual": Scenario(
            name="gradual",
            n_batches=n_batches,
            batch_size=batch_size,
            endpoint=endpoint,
            events=(
                DriftEvent(
                    error="outliers",
                    schedule=_ramp(onset, duration),
                ),
            ),
        ),
        "sudden": Scenario(
            name="sudden",
            n_batches=n_batches,
            batch_size=batch_size,
            endpoint=endpoint,
            events=(
                DriftEvent(
                    error=LABEL_SHIFT,
                    schedule=_step(onset),
                    params={"target_prior": 0.95},
                ),
            ),
        ),
        "seasonal": Scenario(
            name="seasonal",
            n_batches=n_batches,
            batch_size=batch_size,
            endpoint=endpoint,
            events=(
                DriftEvent(
                    error="missing_values",
                    schedule=_seasonal(max(2, onset), phase=onset),
                ),
            ),
        ),
        "adversarial": Scenario(
            name="adversarial",
            n_batches=n_batches,
            batch_size=batch_size,
            endpoint=endpoint,
            events=(
                DriftEvent(
                    error="scaling",
                    schedule=_adversarial(onset),
                ),
            ),
        ),
    }
    if families is None:
        return list(suite.values())
    unknown = [f for f in families if f not in suite]
    if unknown:
        raise DataValidationError(
            f"unknown scenario families {unknown}; valid: {sorted(suite)}"
        )
    return [suite[f] for f in families]


def _ramp(onset: int, duration: int) -> Schedule:
    return RampSchedule(onset=onset, duration=duration, peak=1.0, shape="linear")


def _step(onset: int) -> Schedule:
    return StepSchedule(onset=onset, level=1.0)


def _seasonal(period: int, phase: int) -> Schedule:
    return SeasonalSchedule(period=period, amplitude=1.0, phase=phase)


def _adversarial(onset: int) -> Schedule:
    return AdversarialRampSchedule(onset=onset, initial=0.05, growth=1.6, cap=1.0)
