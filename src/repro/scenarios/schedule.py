"""Temporal intensity schedules for drift scenarios.

A :class:`Schedule` maps a batch index ``t`` (0, 1, 2, ...) to a drift
*intensity* in ``[0, 1]`` — the knob that
:meth:`repro.errors.base.ErrorGen.scaled_params` interpolates into
corruption magnitudes. Composing schedules with error generators gives
the drift families ROADMAP item 5 asks for:

* :class:`ConstantSchedule` — a flat level (including 0: clean traffic).
* :class:`RampSchedule` — gradual drift: 0 until ``onset``, then a
  linear or cosine rise to ``peak`` over ``duration`` batches.
* :class:`StepSchedule` — sudden drift: a jump to ``level`` at ``onset``.
* :class:`SeasonalSchedule` — recurring drift: a raised-cosine wave with
  period ``period``, exactly periodic in ``t``.
* :class:`AdversarialRampSchedule` — an attacker probing the monitor:
  geometric escalation from a sub-detection ``initial`` intensity,
  multiplying by ``growth`` each batch until ``cap``.

Schedules are plain data: ``to_dict`` / :func:`schedule_from_dict` give
a loss-free JSON round-trip so scenarios can live in files and travel
through checkpoints and fingerprints.
"""

from __future__ import annotations

import abc
import math
from typing import Any

from repro.exceptions import DataValidationError


class Schedule(abc.ABC):
    """Deterministic map from batch index to drift intensity in [0, 1]."""

    kind: str = "schedule"

    @abc.abstractmethod
    def intensity(self, t: int) -> float:
        """Drift intensity at batch ``t`` (always within [0, 1])."""

    @abc.abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (must include ``kind``)."""

    def onset(self, n_batches: int) -> int | None:
        """First batch in ``range(n_batches)`` with non-zero intensity."""
        for t in range(n_batches):
            if self.intensity(t) > 0.0:
                return t
        return None

    def __call__(self, t: int) -> float:
        return self.intensity(t)

    def __eq__(self, other: object) -> bool:
        # Schedules are plain data: two are equal iff they serialize the
        # same, which makes DriftEvent/Scenario round-trips comparable.
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_dict().items())))

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{k}={v!r}" for k, v in self.to_dict().items() if k != "kind"
        )
        return f"{type(self).__name__}({fields})"


def _check_unit(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise DataValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def _check_nonneg_int(name: str, value: int) -> int:
    value = int(value)
    if value < 0:
        raise DataValidationError(f"{name} must be >= 0, got {value}")
    return value


class ConstantSchedule(Schedule):
    """A flat intensity for every batch (0 models clean traffic)."""

    kind = "constant"

    def __init__(self, level: float = 0.0):
        self.level = _check_unit("level", level)

    def intensity(self, t: int) -> float:
        return self.level

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "level": self.level}


class RampSchedule(Schedule):
    """Gradual drift: rise from 0 to ``peak`` over ``duration`` batches.

    Intensity is 0 for ``t < onset``, interpolates over
    ``[onset, onset + duration)`` (linearly, or along a smooth raised
    cosine with ``shape="cosine"``), and holds at ``peak`` afterwards.
    A ``duration`` of 0 degenerates to a step.
    """

    kind = "ramp"

    def __init__(
        self,
        onset: int,
        duration: int,
        peak: float = 1.0,
        shape: str = "linear",
    ):
        if shape not in ("linear", "cosine"):
            raise DataValidationError(
                f"shape must be 'linear' or 'cosine', got {shape!r}"
            )
        self.onset_batch = _check_nonneg_int("onset", onset)
        self.duration = _check_nonneg_int("duration", duration)
        self.peak = _check_unit("peak", peak)
        self.shape = shape

    def intensity(self, t: int) -> float:
        if t < self.onset_batch:
            return 0.0
        if self.duration == 0 or t >= self.onset_batch + self.duration:
            return self.peak
        progress = (t - self.onset_batch + 1) / self.duration
        if self.shape == "cosine":
            progress = 0.5 * (1.0 - math.cos(math.pi * progress))
        return self.peak * progress

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "onset": self.onset_batch,
            "duration": self.duration,
            "peak": self.peak,
            "shape": self.shape,
        }


class StepSchedule(Schedule):
    """Sudden drift: 0 before ``onset``, a constant ``level`` from it on.

    An optional ``end`` turns the step into a rectangular pulse
    (intensity returns to 0 at ``end``), modelling a transient incident.
    """

    kind = "step"

    def __init__(self, onset: int, level: float = 1.0, end: int | None = None):
        self.onset_batch = _check_nonneg_int("onset", onset)
        self.level = _check_unit("level", level)
        if end is not None:
            end = _check_nonneg_int("end", end)
            if end <= self.onset_batch:
                raise DataValidationError(
                    f"end must be > onset ({self.onset_batch}), got {end}"
                )
        self.end = end

    def intensity(self, t: int) -> float:
        if t < self.onset_batch:
            return 0.0
        if self.end is not None and t >= self.end:
            return 0.0
        return self.level

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "onset": self.onset_batch,
            "level": self.level,
            "end": self.end,
        }


class SeasonalSchedule(Schedule):
    """Recurring drift: a raised-cosine wave, exactly periodic.

    ``intensity(t) = amplitude * (1 - cos(2π (t - phase) / period)) / 2``
    — 0 at the start of every period, peaking at ``amplitude`` halfway
    through. ``intensity(t + period) == intensity(t)`` for every ``t``.
    """

    kind = "seasonal"

    def __init__(self, period: int, amplitude: float = 1.0, phase: int = 0):
        period = int(period)
        if period < 2:
            raise DataValidationError(f"period must be >= 2, got {period}")
        self.period = period
        self.amplitude = _check_unit("amplitude", amplitude)
        self.phase = int(phase)

    def intensity(self, t: int) -> float:
        # Work in integer period position so periodicity is exact in
        # floating point: cos(2π k / period) depends only on k mod period.
        position = (t - self.phase) % self.period
        value = self.amplitude * 0.5 * (
            1.0 - math.cos(2.0 * math.pi * position / self.period)
        )
        return min(1.0, max(0.0, value))

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "period": self.period,
            "amplitude": self.amplitude,
            "phase": self.phase,
        }


class AdversarialRampSchedule(Schedule):
    """Adversarially escalating drift probing the detection floor.

    Models an attacker (or a slowly compounding pipeline bug) that
    starts below the monitor's detection threshold and multiplies its
    intensity by ``growth`` every batch:
    ``min(cap, initial * growth**(t - onset))`` for ``t >= onset``,
    0 before. With ``growth > 1`` this is the worst case for fixed
    alarm floors — the pre-detection exposure window is logarithmic in
    ``cap / initial``.
    """

    kind = "adversarial_ramp"

    def __init__(
        self,
        onset: int,
        initial: float = 0.02,
        growth: float = 1.5,
        cap: float = 1.0,
    ):
        self.onset_batch = _check_nonneg_int("onset", onset)
        initial = float(initial)
        if not 0.0 < initial <= 1.0:
            raise DataValidationError(f"initial must be in (0, 1], got {initial}")
        self.initial = initial
        growth = float(growth)
        if growth < 1.0:
            raise DataValidationError(f"growth must be >= 1, got {growth}")
        self.growth = growth
        self.cap = _check_unit("cap", cap)

    def intensity(self, t: int) -> float:
        if t < self.onset_batch:
            return 0.0
        value = self.initial * self.growth ** (t - self.onset_batch)
        return min(self.cap, value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "onset": self.onset_batch,
            "initial": self.initial,
            "growth": self.growth,
            "cap": self.cap,
        }


SCHEDULES: dict[str, type[Schedule]] = {
    cls.kind: cls
    for cls in (
        ConstantSchedule,
        RampSchedule,
        StepSchedule,
        SeasonalSchedule,
        AdversarialRampSchedule,
    )
}


def schedule_from_dict(payload: dict[str, Any]) -> Schedule:
    """Rebuild a schedule from its ``to_dict`` payload."""
    if not isinstance(payload, dict) or "kind" not in payload:
        raise DataValidationError(
            f"schedule payload must be a dict with a 'kind', got {payload!r}"
        )
    kind = payload["kind"]
    cls = SCHEDULES.get(kind)
    if cls is None:
        raise DataValidationError(
            f"unknown schedule kind {kind!r}; valid kinds: {sorted(SCHEDULES)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "kind"}
    return cls(**kwargs)
