"""Experiment harness implementing the paper's evaluation protocols.

Each public function corresponds to a protocol from §6 and is called by
the benchmark suite (one bench per table/figure) and by the examples. The
harness owns the common plumbing: partitioning a dataset into disjoint
source / serving splits, training a black box on the source data, choosing
the per-dataset error generators, and scoring the approaches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bbse import BBSE, BBSEh
from repro.baselines.rel import RelationalShiftDetector
from repro.core.blackbox import BlackBoxModel
from repro.core.predictor import PerformancePredictor
from repro.core.validator import PerformanceValidator
from repro.datasets.base import Dataset, load_dataset
from repro.errors.base import ErrorGen
from repro.errors.entropy_errors import ModelEntropyMissingValues
from repro.errors.image_errors import ImageNoise, ImageRotation
from repro.errors.mixture import ErrorMixture, PartiallyAppliedError
from repro.errors.tabular_errors import (
    GaussianOutliers,
    MissingValues,
    Scaling,
    SignFlip,
    Smearing,
    SwappedValues,
    Typos,
)
from repro.errors.text_errors import LeetspeakAdversarial
from repro.evaluation.models import make_model
from repro.exceptions import DataValidationError
from repro.ml.metrics import f1_score
from repro.ml.pipeline import Pipeline, TabularEncoder
from repro.parallel import pmap, spawn_seeds
from repro.tabular.frame import DataFrame
from repro.tabular.ops import balance_classes, split_frame, train_test_split


@dataclass(frozen=True)
class ExperimentSplits:
    """Disjoint train / test / serving partitions of one dataset."""

    dataset: Dataset
    train: DataFrame
    y_train: np.ndarray
    test: DataFrame
    y_test: np.ndarray
    serving: DataFrame
    y_serving: np.ndarray


def prepare_splits(
    dataset_name: str,
    n_rows: int = 4000,
    seed: int = 0,
    serving_fraction: float = 0.4,
    test_fraction: float = 0.35,
) -> ExperimentSplits:
    """Load a dataset, balance classes, and carve out the paper's splits.

    Source data (train + test) and serving data are disjoint; the test
    split is the held-out data the performance predictor trains on.
    """
    dataset = load_dataset(dataset_name, n_rows=n_rows, seed=seed)
    rng = np.random.default_rng(seed + 1)
    frame, labels = balance_classes(dataset.frame, dataset.labels, rng)
    (source, y_source), (serving, y_serving) = split_frame(
        frame, labels, (1.0 - serving_fraction, serving_fraction), rng
    )
    train, y_train, test, y_test = train_test_split(source, y_source, test_fraction, rng)
    return ExperimentSplits(
        dataset=dataset,
        train=train,
        y_train=y_train,
        test=test,
        y_test=y_test,
        serving=serving,
        y_serving=y_serving,
    )


def train_black_box(
    model_name: str,
    splits: ExperimentSplits,
    seed: int = 0,
    grid_search: bool = False,
) -> BlackBoxModel:
    """Train one of the paper's model families on the source training split."""
    model = make_model(model_name, random_state=seed, grid_search=grid_search)
    pipeline = Pipeline(TabularEncoder(), model).fit(splits.train, splits.y_train)
    return BlackBoxModel.wrap(pipeline)


def known_error_generators(task: str) -> dict[str, ErrorGen]:
    """The §6.1.1 'known error' set for a dataset task type."""
    if task == "tabular":
        return {
            "missing_values": MissingValues(),
            "outliers": GaussianOutliers(),
            "swapped_values": SwappedValues(),
            "scaling": Scaling(),
        }
    if task == "text":
        return {"adversarial": LeetspeakAdversarial()}
    if task == "image":
        return {"image_noise": ImageNoise(), "image_rotation": ImageRotation()}
    raise DataValidationError(f"unknown task {task!r}")


def unknown_error_generators() -> dict[str, ErrorGen]:
    """The §6.2.2 errors the validator never sees during training."""
    return {"typos": Typos(), "smearing": Smearing(), "sign_flip": SignFlip()}


def extended_error_generators(blackbox: BlackBoxModel) -> dict[str, ErrorGen]:
    """§6.1.2 error pool: the known tabular set plus entropy-based missingness."""
    generators = known_error_generators("tabular")
    generators["entropy_missing"] = ModelEntropyMissingValues(blackbox.predict_proba)
    return generators


# --------------------------------------------------------------------- #
# Parallel round runners (module-level so process pools can pickle them).
# Each takes its round-varying state as the item and the heavy invariants
# (predictor, black box, serving split) through the executor's broadcast
# ``shared`` payload, pickled once per process-pool worker, not per round.
# --------------------------------------------------------------------- #


def _estimation_round(corruptor, rng: np.random.Generator, shared) -> float:
    """One corrupt→estimate→score round; returns the absolute error."""
    predictor, blackbox, serving, y_serving, metric = shared
    corrupted, _ = corruptor.corrupt_random(serving, rng)
    estimate = predictor.predict(corrupted)
    truth = blackbox.score(corrupted, y_serving, metric)
    return abs(estimate - truth)


def _prediction_round(_round, rng: np.random.Generator, shared) -> tuple[float, float]:
    """One corrupt→predict round; returns (estimated, true) score."""
    predictor, blackbox, mixture, serving, y_serving = shared
    corrupted, _ = mixture.corrupt_random(serving, rng)
    return predictor.predict(corrupted), blackbox.score(corrupted, y_serving)


def _validation_round(_round, rng: np.random.Generator, shared):
    """One §6.2 evaluation round: corrupt the serving split, collect the
    black box's outputs, the true score, and REL's frame-level alarm."""
    blackbox, mixture, serving, y_serving, rel = shared
    corrupted, _ = mixture.corrupt_random(serving, rng)
    proba = blackbox.predict_proba(corrupted)
    true_score = blackbox.score(corrupted, y_serving)
    rel_alarm = int(rel.shift_detected(corrupted)) if rel is not None else None
    return proba, true_score, rel_alarm


# --------------------------------------------------------------------- #
# §6.1.1 — prediction score estimation for known error types (Figure 2)
# --------------------------------------------------------------------- #


def score_estimation_errors(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    train_generators: list[ErrorGen],
    eval_generators: list[ErrorGen],
    n_train_samples: int = 120,
    n_eval_rounds: int = 20,
    metric: str = "accuracy",
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> np.ndarray:
    """Absolute errors of the predictor's score estimates on corrupted serving data.

    Trains a performance predictor on corruptions of the held-out test
    split, then corrupts the (disjoint, unseen) serving split with randomly
    sampled magnitudes and compares estimated vs. true score. Training
    episodes and evaluation rounds run on per-task spawned RNGs, so the
    result is identical for every ``n_jobs`` / backend.
    """
    predictor = PerformancePredictor(
        blackbox,
        train_generators,
        metric=metric,
        n_samples=n_train_samples,
        mode="single",
        random_state=seed,
        n_jobs=n_jobs,
        backend=backend,
        tree_method=tree_method,
    ).fit(splits.test, splits.y_test)
    rng = np.random.default_rng(seed + 10_000)
    tasks = [
        eval_generators[round_index % len(eval_generators)]
        for round_index in range(n_eval_rounds)
    ]
    seeds = spawn_seeds(rng, n_eval_rounds)
    shared = (predictor, blackbox, splits.serving, splits.y_serving, metric)
    return np.asarray(
        pmap(
            _estimation_round, tasks,
            n_jobs=n_jobs, seeds=seeds, backend=backend, shared=shared,
        )
    )


# --------------------------------------------------------------------- #
# §6.1.2 — mixed and unknown shifts (Figure 3)
# --------------------------------------------------------------------- #


def unknown_fraction_errors(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    unknown_fraction: float,
    n_train_samples: int = 100,
    n_eval_rounds: int = 15,
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> np.ndarray:
    """Absolute estimation errors when the predictor trained on weakened errors.

    Following §6.1.2 exactly: one random numerical column and one random
    categorical column are chosen per (model, dataset) combination, and all
    error types are applied to those columns only. ``unknown_fraction`` u
    damps the predictor's training exposure to every error type to (1 - u);
    the serving data is corrupted at full strength. u = 1 reproduces the
    fully-unknown case where the predictor never saw a single corrupted
    cell.
    """
    if not 0.0 <= unknown_fraction <= 1.0:
        raise DataValidationError(f"unknown_fraction must be in [0, 1], got {unknown_fraction}")
    column_rng = np.random.default_rng(seed + 5_000)
    numeric_column = str(column_rng.choice(splits.test.numeric_columns))
    categorical_column = str(column_rng.choice(splits.test.categorical_columns))
    full_generators: list[ErrorGen] = [
        MissingValues(columns=[categorical_column]),
        GaussianOutliers(columns=[numeric_column]),
        SwappedValues(columns=[numeric_column, categorical_column]),
        Scaling(columns=[numeric_column]),
        ModelEntropyMissingValues(
            blackbox.predict_proba, columns=[categorical_column, numeric_column]
        ),
    ]
    train_generators: list[ErrorGen] = [
        PartiallyAppliedError(generator, exposure=1.0 - unknown_fraction)
        for generator in full_generators
    ]
    predictor = PerformancePredictor(
        blackbox,
        train_generators,
        n_samples=n_train_samples,
        mode="mixture",
        random_state=seed,
        n_jobs=n_jobs,
        backend=backend,
        tree_method=tree_method,
    ).fit(splits.test, splits.y_test)
    rng = np.random.default_rng(seed + 20_000)
    mixture = ErrorMixture(full_generators, fire_prob=0.6)
    shared = (predictor, blackbox, splits.serving, splits.y_serving, "accuracy")
    seeds = spawn_seeds(rng, n_eval_rounds)
    return np.asarray(
        pmap(
            _estimation_round,
            [mixture] * n_eval_rounds,
            n_jobs=n_jobs,
            seeds=seeds,
            backend=backend,
            shared=shared,
        )
    )


# --------------------------------------------------------------------- #
# §6.1.3 — sensitivity to |D_test| (Figure 4)
# --------------------------------------------------------------------- #


def sample_size_errors(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    generator: ErrorGen,
    test_size: int,
    n_train_samples: int = 80,
    n_eval_rounds: int = 15,
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> np.ndarray:
    """Estimation errors when the predictor only sees ``test_size`` held-out rows."""
    if test_size > len(splits.test):
        raise DataValidationError(
            f"test_size {test_size} exceeds held-out split of {len(splits.test)}"
        )
    rng = np.random.default_rng(seed + 30_000)
    rows = rng.choice(len(splits.test), size=test_size, replace=False)
    small_test = splits.test.select_rows(rows)
    small_labels = splits.y_test[rows]
    predictor = PerformancePredictor(
        blackbox, [generator], n_samples=n_train_samples, mode="single",
        random_state=seed, n_jobs=n_jobs, backend=backend,
        tree_method=tree_method,
    ).fit(small_test, small_labels)
    shared = (predictor, blackbox, splits.serving, splits.y_serving, "accuracy")
    seeds = spawn_seeds(rng, n_eval_rounds)
    return np.asarray(
        pmap(
            _estimation_round,
            [generator] * n_eval_rounds,
            n_jobs=n_jobs,
            seeds=seeds,
            backend=backend,
            shared=shared,
        )
    )


# --------------------------------------------------------------------- #
# §6.2 — performance validation vs. baselines (Figures 5 and 6)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ValidationScores:
    """F1 of each approach at detecting threshold violations."""

    ppm: float
    bbse: float
    bbse_h: float
    rel: float | None  # None when REL is inapplicable (image data)

    def as_dict(self) -> dict[str, float | None]:
        return {"PPM": self.ppm, "BBSE": self.bbse, "BBSE-h": self.bbse_h, "REL": self.rel}


def validation_comparison_multi(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    train_generators: list[ErrorGen],
    eval_generators: list[ErrorGen],
    thresholds: tuple[float, ...],
    n_train_samples: int = 400,
    n_eval_rounds: int = 40,
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> dict[float, ValidationScores]:
    """Compare PPM against BBSE / BBSEh / REL at several thresholds.

    Training corrupts the held-out test split with mixtures of
    ``train_generators``; evaluation corrupts the serving split with
    mixtures of ``eval_generators`` (the same list for the §6.2.1 known
    case, the unknown errors for §6.2.2). The positive class for F1 is "the
    true score violates the threshold", i.e. an alarm should be raised.

    The expensive parts — the corrupted meta-training copies and the
    serving evaluation episodes — are generated once and shared by every
    threshold's validator, mirroring how a deployment would reuse one
    corruption corpus for several alarm sensitivities.
    """
    from repro.core.corruption import CorruptionSampler

    rng = np.random.default_rng(seed)
    sampler = CorruptionSampler(
        blackbox, train_generators, mode="mixture", include_clean=True,
        n_jobs=n_jobs, backend=backend,
    )
    shared_samples = sampler.sample(splits.test, splits.y_test, n_train_samples, rng)

    validators = {}
    for threshold in thresholds:
        validators[threshold] = PerformanceValidator(
            blackbox,
            train_generators,
            threshold=threshold,
            mode="mixture",
            random_state=seed,
            tree_method=tree_method,
        ).fit(splits.test, splits.y_test, samples=shared_samples)

    has_rel_columns = bool(splits.test.numeric_columns or splits.test.categorical_columns)
    rel = RelationalShiftDetector().fit(splits.test) if has_rel_columns else None
    bbse = BBSE(blackbox).fit(splits.test)
    bbse_h = BBSEh(blackbox).fit(splits.test)

    eval_rng = np.random.default_rng(seed + 40_000)
    mixture = ErrorMixture(eval_generators, fire_prob=0.6)
    test_score = blackbox.score(splits.test, splits.y_test)

    # The expensive corrupt→predict→score part of each round fans out;
    # the per-threshold alarm decisions on the collected outputs are cheap
    # and stay in the parent.
    round_shared = (blackbox, mixture, splits.serving, splits.y_serving, rel)
    seeds = spawn_seeds(eval_rng, n_eval_rounds)
    rounds = pmap(
        _validation_round,
        range(n_eval_rounds),
        n_jobs=n_jobs,
        seeds=seeds,
        backend=backend,
        shared=round_shared,
    )

    true_scores = []
    ppm_alarms: dict[float, list[int]] = {t: [] for t in thresholds}
    bbse_alarms, bbse_h_alarms, rel_alarms = [], [], []
    for proba, true_score, rel_alarm in rounds:
        true_scores.append(true_score)
        for threshold in thresholds:
            ppm_alarms[threshold].append(
                int(not validators[threshold].validate_from_proba(proba))
            )
        bbse_alarms.append(int(bbse.shift_detected_from_proba(proba)))
        bbse_h_alarms.append(int(bbse_h.shift_detected_from_proba(proba)))
        if rel_alarm is not None:
            rel_alarms.append(rel_alarm)

    results = {}
    for threshold in thresholds:
        truths = np.asarray(
            [int(score < (1.0 - threshold) * test_score) for score in true_scores]
        )
        results[threshold] = ValidationScores(
            ppm=f1_score(truths, np.asarray(ppm_alarms[threshold])),
            bbse=f1_score(truths, np.asarray(bbse_alarms)),
            bbse_h=f1_score(truths, np.asarray(bbse_h_alarms)),
            rel=f1_score(truths, np.asarray(rel_alarms)) if rel is not None else None,
        )
    return results


def validation_comparison(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    train_generators: list[ErrorGen],
    eval_generators: list[ErrorGen],
    threshold: float,
    n_train_samples: int = 400,
    n_eval_rounds: int = 40,
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> ValidationScores:
    """Single-threshold convenience wrapper around the multi version."""
    results = validation_comparison_multi(
        blackbox, splits, train_generators, eval_generators, (threshold,),
        n_train_samples=n_train_samples, n_eval_rounds=n_eval_rounds, seed=seed,
        n_jobs=n_jobs, backend=backend, tree_method=tree_method,
    )
    return results[threshold]


# --------------------------------------------------------------------- #
# §6.3.2 — cloud-hosted model (Figure 7)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class CloudExperimentResult:
    """Predicted-vs-true accuracy pairs for the cloud model experiment."""

    predicted: np.ndarray
    true: np.ndarray

    @property
    def mae(self) -> float:
        return float(np.mean(np.abs(self.predicted - self.true)))

    @property
    def correlation(self) -> float:
        if self.true.std() == 0 or self.predicted.std() == 0:
            return 0.0
        return float(np.corrcoef(self.predicted, self.true)[0, 1])


def cloud_experiment(
    blackbox: BlackBoxModel,
    splits: ExperimentSplits,
    n_train_samples: int = 120,
    n_eval_rounds: int = 25,
    seed: int = 0,
    n_jobs: int | None = 1,
    backend: str = "auto",
    tree_method: str = "exact",
) -> CloudExperimentResult:
    """Predict the accuracy of an opaque (cloud) model under error mixtures."""
    generators = list(known_error_generators("tabular").values())
    predictor = PerformancePredictor(
        blackbox, generators, n_samples=n_train_samples, mode="mixture",
        random_state=seed, n_jobs=n_jobs, backend=backend,
        tree_method=tree_method,
    ).fit(splits.test, splits.y_test)
    rng = np.random.default_rng(seed + 50_000)
    mixture = ErrorMixture(generators, fire_prob=0.6)
    shared = (predictor, blackbox, mixture, splits.serving, splits.y_serving)
    seeds = spawn_seeds(rng, n_eval_rounds)
    rounds = pmap(
        _prediction_round, range(n_eval_rounds),
        n_jobs=n_jobs, seeds=seeds, backend=backend, shared=shared,
    )
    predicted = [estimate for estimate, _ in rounds]
    true = [truth for _, truth in rounds]
    return CloudExperimentResult(predicted=np.asarray(predicted), true=np.asarray(true))
