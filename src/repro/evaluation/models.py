"""Black box model factory for the evaluation.

The paper evaluates four model families: ``lr`` (SGD logistic regression),
``dnn`` (two-layer ReLU network), ``xgb`` (gradient-boosted trees) and
``conv`` (a convolutional network for image data). The factory produces
them with either fast fixed hyperparameters (benchmark default) or the
paper's five-fold grid search.
"""

from __future__ import annotations

from repro.exceptions import DataValidationError
from repro.ml.base import Estimator
from repro.ml.boosting import GradientBoostingClassifier
from repro.ml.conv import ConvNetClassifier
from repro.ml.linear import SGDClassifier
from repro.ml.model_selection import GridSearchCV
from repro.ml.neural import MLPClassifier

MODEL_NAMES = ("lr", "dnn", "xgb", "conv")
LINEAR_MODELS = ("lr",)
NONLINEAR_MODELS = ("dnn", "xgb")


def make_model(
    name: str,
    random_state: int | None = 0,
    grid_search: bool = False,
    tree_method: str = "exact",
) -> Estimator:
    """Instantiate one of the paper's black box model families.

    With ``grid_search=True`` the estimator is wrapped in the paper's
    five-fold CV grid search (regularization/learning-rate for lr, layer
    sizes for dnn, tree count/depth for xgb). ``tree_method`` selects the
    split-finding engine of the tree-based family (``xgb``); the other
    families ignore it.
    """
    if name == "lr":
        model: Estimator = SGDClassifier(epochs=15, random_state=random_state)
        if grid_search:
            return GridSearchCV(
                model,
                param_grid={"penalty": ["l1", "l2"], "learning_rate": [0.03, 0.1, 0.3]},
                random_state=random_state,
            )
        return model
    if name == "dnn":
        model = MLPClassifier(epochs=20, random_state=random_state)
        if grid_search:
            return GridSearchCV(
                model,
                param_grid={"hidden": [(32, 16), (64, 32), (128, 64)]},
                random_state=random_state,
            )
        return model
    if name == "xgb":
        model = GradientBoostingClassifier(
            n_stages=40, random_state=random_state, tree_method=tree_method
        )
        if grid_search:
            return GridSearchCV(
                model,
                param_grid={"n_stages": [20, 40], "max_depth": [2, 3, 4]},
                random_state=random_state,
            )
        return model
    if name == "conv":
        # Grid search over a convnet is out of laptop budget; the paper's
        # conv experiments fix the architecture too.
        return ConvNetClassifier(
            conv_channels=(8, 16), dense_width=64, epochs=2, random_state=random_state
        )
    raise DataValidationError(f"unknown model {name!r}; have {MODEL_NAMES}")
