"""Plain-text reporting of experiment results.

The benchmarks print the same rows / series the paper plots; these helpers
format distributions and comparison tables consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DataValidationError


@dataclass(frozen=True)
class DistributionSummary:
    """Five-number-ish summary of an error distribution."""

    median: float
    mean: float
    p5: float
    p10: float
    p90: float
    p95: float

    @classmethod
    def of(cls, values: np.ndarray) -> "DistributionSummary":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise DataValidationError("cannot summarize an empty sample")
        return cls(
            median=float(np.median(values)),
            mean=float(values.mean()),
            p5=float(np.percentile(values, 5)),
            p10=float(np.percentile(values, 10)),
            p90=float(np.percentile(values, 90)),
            p95=float(np.percentile(values, 95)),
        )

    def row(self, label: str) -> str:
        return (
            f"{label:<28} median={self.median:.4f} mean={self.mean:.4f} "
            f"p10={self.p10:.4f} p90={self.p90:.4f}"
        )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width text table."""
    if any(len(row) != len(headers) for row in rows):
        raise DataValidationError("every row must match the header width")
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_f1_cell(value: float | None) -> str:
    return "n/a" if value is None else f"{value:.3f}"
