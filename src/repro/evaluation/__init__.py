"""Experiment harness and reporting for reproducing the paper's evaluation."""

from repro.evaluation.harness import (
    CloudExperimentResult,
    ExperimentSplits,
    ValidationScores,
    cloud_experiment,
    extended_error_generators,
    known_error_generators,
    prepare_splits,
    sample_size_errors,
    score_estimation_errors,
    train_black_box,
    unknown_error_generators,
    unknown_fraction_errors,
    validation_comparison,
    validation_comparison_multi,
)
from repro.evaluation.models import MODEL_NAMES, make_model
from repro.evaluation.reporting import DistributionSummary, format_f1_cell, format_table

__all__ = [
    "CloudExperimentResult",
    "DistributionSummary",
    "ExperimentSplits",
    "MODEL_NAMES",
    "ValidationScores",
    "cloud_experiment",
    "extended_error_generators",
    "format_f1_cell",
    "format_table",
    "known_error_generators",
    "make_model",
    "prepare_splits",
    "sample_size_errors",
    "score_estimation_errors",
    "train_black_box",
    "unknown_error_generators",
    "unknown_fraction_errors",
    "validation_comparison",
    "validation_comparison_multi",
]
