"""The deterministic parallel execution engine.

One :class:`Executor` abstraction fronts three interchangeable backends
(serial, thread pool, process pool) behind a single ordered-``map`` API.
Determinism is the design center: per-task RNGs come from
:func:`repro.parallel.seeding.spawn_seeds`, results are collected in
submission order, and task code never observes which worker ran it — so
a computation produces bit-identical output at every ``n_jobs`` and on
every backend.

Failure semantics
-----------------
* A task raising inside a worker surfaces as
  :class:`~repro.exceptions.ParallelExecutionError` (a
  :class:`~repro.exceptions.ReproError`) carrying the task index and the
  original exception, never a bare pool traceback.
* Backend-level failures (a pool that cannot start, unpicklable task
  payloads, a broken worker process) trigger a graceful fallback to the
  serial backend with a warning, unless ``fallback_serial=False``.
* ``task_retries`` re-runs a failing task in place (same worker, same
  task RNG re-materialized from its seed) before it counts as failed —
  transient faults never surface at all.
* :meth:`Executor.map_quarantine` turns remaining failures into
  *quarantined* tasks instead of an exception: the result slot is
  ``None``, and a :class:`QuarantinedTask` records the index, attempts
  and worker traceback. One poison task no longer kills a thousand-task
  fan-out.

Process-backend callables must be module-level functions (pickling);
call sites in :mod:`repro.core.corruption`, :mod:`repro.ml.forest`,
:mod:`repro.ml.model_selection` and :mod:`repro.evaluation.harness`
follow that pattern.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
import warnings
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.exceptions import DataValidationError, ParallelExecutionError
from repro.parallel.seeding import rng_from_seed

BACKENDS = ("serial", "thread", "process")

#: Tasks per chunk submitted to a pool are sized so each worker receives
#: roughly this many chunks, amortizing per-submission overhead while
#: keeping the pool load-balanced.
_CHUNKS_PER_WORKER = 4

#: Adaptive chunking targets roughly this much work per pool submission:
#: cheap tasks get batched into larger chunks (fewer submissions), while
#: expensive tasks keep the even split (better load balancing).
_TARGET_CHUNK_SECONDS = 0.02


def available_backends() -> tuple[str, ...]:
    """Backends usable on this host ("serial" and "thread" always are)."""
    usable = ["serial", "thread"]
    try:
        import concurrent.futures.process  # noqa: F401
        import multiprocessing.synchronize  # noqa: F401

        usable.append("process")
    except ImportError:  # pragma: no cover - exotic platforms only
        pass
    return tuple(usable)


def effective_parallelism(n_jobs: int | None) -> int:
    """The concurrency ``n_jobs`` workers can actually deliver on this host.

    Process workers beyond the CPU count only time-slice a core; this is
    the honest figure benchmark reports record next to the requested
    ``n_jobs`` so speedups measured on oversubscribed hosts are
    interpretable.
    """
    return min(resolve_n_jobs(n_jobs), os.cpu_count() or 1)


def resolve_n_jobs(n_jobs: int | None) -> int:
    """Normalize an ``n_jobs`` request to a positive worker count.

    ``None`` means 1; negative values count back from the host CPU count
    (``-1`` = all cores, as in joblib).
    """
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        raise DataValidationError("n_jobs must not be 0; use 1 for serial or -1 for all cores")
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


@dataclass
class _TaskFailure:
    """Worker-side record of a task that raised (strings stay picklable)."""

    index: int
    error_type: str
    message: str
    traceback_text: str
    exception: BaseException | None = None
    attempts: int = 1

    @classmethod
    def from_exception(
        cls, index: int, error: BaseException, attempts: int = 1
    ) -> "_TaskFailure":
        return cls(
            index=index,
            error_type=type(error).__name__,
            message=str(error),
            traceback_text="".join(
                traceback.format_exception(type(error), error, error.__traceback__)
            ),
            exception=error,
            attempts=attempts,
        )


@dataclass(frozen=True)
class QuarantinedTask:
    """A task that failed every attempt and was skipped, not fatal.

    Returned by :meth:`Executor.map_quarantine`; carries everything an
    operator needs to reproduce the poison task offline.
    """

    index: int
    error_type: str
    message: str
    attempts: int
    traceback_text: str

    def describe(self) -> str:
        return (
            f"task {self.index} quarantined after {self.attempts} attempt(s): "
            f"{self.error_type}: {self.message}"
        )


#: Per-process slot for the read-only payload broadcast to process-pool
#: workers through their initializer (installed once per worker, not
#: pickled per task).
_WORKER_SHARED: Any = None


class _SharedFromWorker:
    """Pickled marker telling a chunk to read the per-process broadcast.

    A plain sentinel object would not survive pickling with its identity,
    so the marker is a type: ``isinstance`` checks work on both sides of
    the process boundary.
    """


def _install_shared(payload: bytes) -> None:
    """Process-pool initializer: unpickle the broadcast payload once."""
    global _WORKER_SHARED
    _WORKER_SHARED = pickle.loads(payload)


def _run_chunk(
    fn: Callable[..., Any],
    tasks: list[tuple[int, Any, Any]],
    task_retries: int = 0,
    shared: Any = None,
) -> list[tuple[int, bool, Any]]:
    """Execute one chunk of (index, item, seed) tasks; never raises.

    Module-level so process pools can pickle it. Failures become
    :class:`_TaskFailure` markers the parent turns into a
    :class:`ParallelExecutionError`, keeping worker tracebacks intact.
    Each task gets ``task_retries`` in-place re-runs; a retried task's
    RNG is re-materialized from its seed, so a task that succeeds on
    retry produces the exact result a first-try success would have.

    ``shared`` is a read-only payload appended as the last positional
    argument of every call (``fn(item, shared)`` / ``fn(item, rng,
    shared)``). In a process-pool worker the chunk receives a
    :class:`_SharedFromWorker` marker and resolves it against the payload
    the pool initializer installed, so the (potentially large) object
    crosses the process boundary once per worker instead of once per task.
    """
    if isinstance(shared, _SharedFromWorker):
        shared = _WORKER_SHARED
    out: list[tuple[int, bool, Any]] = []
    for index, item, seed in tasks:
        for attempt in range(1, task_retries + 2):
            try:
                if seed is None:
                    args = (item,) if shared is None else (item, shared)
                else:
                    rng = rng_from_seed(seed)
                    args = (item, rng) if shared is None else (item, rng, shared)
                out.append((index, True, fn(*args)))
                break
            except Exception as error:
                if attempt > task_retries:
                    out.append(
                        (index, False, _TaskFailure.from_exception(index, error, attempt))
                    )
    return out


class Executor:
    """Ordered, deterministic map over items with a pluggable backend.

    Parameters
    ----------
    n_jobs:
        Worker count; 1 (or ``None``) runs serially, negative counts back
        from the host cores (``-1`` = all).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"`` (process
        pool when more than one worker is requested and the platform
        supports it, otherwise threads, otherwise serial).
    chunk_size:
        Tasks per pool submission. Defaults to an even split that gives
        each worker a few chunks; raise it for very cheap tasks.
    fallback_serial:
        When True (default), backend-level failures degrade to a serial
        run with a warning instead of raising.
    task_retries:
        In-place re-runs of a failing task before it counts as failed
        (0 = fail on first error, the historical behavior).
    """

    def __init__(
        self,
        n_jobs: int | None = 1,
        backend: str = "auto",
        chunk_size: int | None = None,
        fallback_serial: bool = True,
        task_retries: int = 0,
    ):
        if backend not in BACKENDS + ("auto",):
            raise DataValidationError(
                f"unknown backend {backend!r}; use one of {BACKENDS + ('auto',)}"
            )
        if chunk_size is not None and chunk_size < 1:
            raise DataValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        if task_retries < 0:
            raise DataValidationError(f"task_retries must be >= 0, got {task_retries}")
        self.n_jobs = n_jobs
        self.backend = backend
        self.chunk_size = chunk_size
        self.fallback_serial = fallback_serial
        self.task_retries = task_retries

    # ------------------------------------------------------------------ #

    def resolved_backend(self, n_items: int | None = None) -> str:
        """The concrete backend a map of ``n_items`` would run on."""
        n_jobs = resolve_n_jobs(self.n_jobs)
        if n_items is not None:
            n_jobs = min(n_jobs, max(1, n_items))
        if n_jobs <= 1:
            return "serial"
        if self.backend == "auto":
            return "process" if "process" in available_backends() else "thread"
        if self.backend == "process" and "process" not in available_backends():
            return "thread"  # pragma: no cover - exotic platforms only
        return self.backend

    def map(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        *,
        seeds: Sequence[Any] | None = None,
        shared: Any = None,
    ) -> list[Any]:
        """Apply ``fn`` to every item, returning results in item order.

        With ``seeds`` (one entry per item, e.g. from
        :func:`~repro.parallel.seeding.spawn_seeds`) each call receives a
        private ``numpy.random.Generator`` as second argument:
        ``fn(item, rng)``. Without seeds, ``fn(item)``.

        ``shared`` is a read-only payload handed to every call as the last
        positional argument (``fn(item[, rng], shared)``). On the process
        backend it is pickled once per worker through the pool initializer
        instead of once per task — put the large invariant objects (the
        training matrix, a :class:`~repro.ml.binning.BinnedMatrix`, a
        fitted black box) here and keep the per-item payloads slim.
        """
        results, failures = self._map_impl(fn, items, seeds, shared)
        if failures:
            first = min(failures, key=lambda f: f.index)
            error = ParallelExecutionError(
                f"parallel task {first.index} failed "
                f"(after {first.attempts} attempt(s)) "
                f"with {first.error_type}: {first.message}\n"
                f"--- worker traceback ---\n{first.traceback_text}",
                task_index=first.index,
                original_type=first.error_type,
            )
            if first.exception is not None:
                raise error from first.exception
            raise error  # pragma: no cover - exception lost to pickling
        return results

    def map_quarantine(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        *,
        seeds: Sequence[Any] | None = None,
        shared: Any = None,
    ) -> tuple[list[Any], list[QuarantinedTask]]:
        """Like :meth:`map`, but poison tasks are skipped, not fatal.

        Returns ``(results, quarantined)``: results keep item order with
        ``None`` in every quarantined slot, and each quarantined entry
        records the task index, attempt count and worker traceback.
        Callers that need completeness check ``quarantined`` explicitly
        — nothing is dropped silently.
        """
        results, failures = self._map_impl(fn, items, seeds, shared)
        quarantined = [
            QuarantinedTask(
                index=failure.index,
                error_type=failure.error_type,
                message=failure.message,
                attempts=failure.attempts,
                traceback_text=failure.traceback_text,
            )
            for failure in sorted(failures, key=lambda f: f.index)
        ]
        return results, quarantined

    def _map_impl(
        self,
        fn: Callable[..., Any],
        items: Iterable[Any],
        seeds: Sequence[Any] | None,
        shared: Any = None,
    ) -> tuple[list[Any], list[_TaskFailure]]:
        items = list(items)
        if seeds is not None:
            seeds = list(seeds)
            if len(seeds) != len(items):
                raise DataValidationError(
                    f"got {len(seeds)} seeds for {len(items)} items"
                )
        tasks = [
            (i, item, seeds[i] if seeds is not None else None)
            for i, item in enumerate(items)
        ]
        backend = self.resolved_backend(len(items))
        if backend == "serial":
            return self._collect(
                _run_chunk(fn, tasks, self.task_retries, shared), len(items)
            )
        n_jobs = min(resolve_n_jobs(self.n_jobs), max(1, len(items)))
        try:
            results = self._run_pool(fn, tasks, backend, n_jobs, shared)
        except Exception as error:
            if not self.fallback_serial:
                raise ParallelExecutionError(
                    f"{backend} backend failed: {type(error).__name__}: {error}",
                    original_type=type(error).__name__,
                ) from error
            warnings.warn(
                f"parallel {backend} backend unavailable "
                f"({type(error).__name__}: {error}); falling back to serial",
                RuntimeWarning,
                stacklevel=2,
            )
            results = _run_chunk(fn, tasks, self.task_retries, shared)
        return self._collect(results, len(items))

    # ------------------------------------------------------------------ #

    def _run_pool(
        self,
        fn: Callable[..., Any],
        tasks: list[tuple[int, Any, Any]],
        backend: str,
        n_jobs: int,
        shared: Any = None,
    ) -> list[tuple[int, bool, Any]]:
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        results: list[tuple[int, bool, Any]] = []
        if self.chunk_size is not None:
            chunk_size = self.chunk_size
        else:
            # Adaptive granularity: time the first task in the parent and
            # size chunks toward ~_TARGET_CHUNK_SECONDS of work, never
            # below the legacy even split (load balancing for expensive
            # tasks) and never above a one-chunk-per-worker split. The
            # probe's result is kept, so no task runs twice on success.
            started = time.perf_counter()
            results.extend(_run_chunk(fn, tasks[:1], self.task_retries, shared))
            probe_seconds = time.perf_counter() - started
            tasks = tasks[1:]
            if not tasks:
                return results
            even = max(1, -(-len(tasks) // (n_jobs * _CHUNKS_PER_WORKER)))
            per_worker = max(1, -(-len(tasks) // n_jobs))
            if probe_seconds <= 0:
                cost_based = per_worker
            else:
                cost_based = max(1, int(_TARGET_CHUNK_SECONDS / probe_seconds))
            chunk_size = min(max(even, cost_based), per_worker)
        chunks = [tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)]
        if backend == "thread":
            pool_cls: Any = ThreadPoolExecutor
            pool_kwargs: dict[str, Any] = {"max_workers": n_jobs}
            shared_arg = shared
        else:
            # Workers beyond the host cores only add scheduling overhead
            # for CPU-bound tasks; clamp the pool (the requested n_jobs
            # still shapes chunking, so results stay bit-identical).
            workers = min(n_jobs, os.cpu_count() or 1)
            pool_cls = ProcessPoolExecutor
            pool_kwargs = {"max_workers": workers}
            shared_arg = shared
            if shared is not None:
                # Broadcast once per worker through the initializer; the
                # chunks carry only a marker. An unpicklable payload fails
                # here, in the parent, and degrades to the serial fallback.
                payload = pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL)
                pool_kwargs["initializer"] = _install_shared
                pool_kwargs["initargs"] = (payload,)
                shared_arg = _SharedFromWorker()
        with pool_cls(**pool_kwargs) as pool:
            futures = [
                pool.submit(_run_chunk, fn, chunk, self.task_retries, shared_arg)
                for chunk in chunks
            ]
            for future in futures:
                results.extend(future.result())
        return results

    @staticmethod
    def _collect(
        results: list[tuple[int, bool, Any]], n_items: int
    ) -> tuple[list[Any], list[_TaskFailure]]:
        ordered: list[Any] = [None] * n_items
        failures: list[_TaskFailure] = []
        for index, ok, payload in results:
            if ok:
                ordered[index] = payload
            else:
                failures.append(payload)
        return ordered, failures

    def __repr__(self) -> str:
        return (
            f"Executor(n_jobs={self.n_jobs!r}, backend={self.backend!r}, "
            f"chunk_size={self.chunk_size!r})"
        )


def pmap(
    fn: Callable[..., Any],
    items: Iterable[Any],
    n_jobs: int | None = 1,
    seeds: Sequence[Any] | None = None,
    backend: str = "auto",
    chunk_size: int | None = None,
    task_retries: int = 0,
    shared: Any = None,
) -> list[Any]:
    """One-shot deterministic parallel map (see :class:`Executor`)."""
    executor = Executor(
        n_jobs=n_jobs, backend=backend, chunk_size=chunk_size,
        task_retries=task_retries,
    )
    return executor.map(fn, items, seeds=seeds, shared=shared)
