"""Deterministic seed derivation for parallel task fan-out.

Every parallel loop in the library derives one independent RNG per task
via :meth:`numpy.random.SeedSequence.spawn`. Spawned seed sequences are
statistically independent streams, and — crucially — the derivation only
depends on the *root* entropy and the task index, never on which worker
runs the task or how many workers exist. Results are therefore
bit-identical for any backend and any ``n_jobs``.

When the root is a live :class:`numpy.random.Generator` (the usual case:
a caller hands its ``rng`` into ``sample(...)``), exactly one draw is
consumed from it to obtain the root entropy, so the caller's stream
advances the same way no matter how many tasks are spawned.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError

SeedLike = "int | None | np.random.SeedSequence | np.random.Generator"


def spawn_seeds(
    source: int | None | np.random.SeedSequence | np.random.Generator,
    n_tasks: int,
) -> list[np.random.SeedSequence]:
    """``n_tasks`` independent child seed sequences derived from ``source``.

    ``source`` may be a seed sequence (spawned directly), a generator
    (one 63-bit draw is consumed to build the root), or a plain
    ``int`` / ``None`` seed.
    """
    if n_tasks < 0:
        raise DataValidationError(f"n_tasks must be >= 0, got {n_tasks}")
    if isinstance(source, np.random.SeedSequence):
        root = source
    elif isinstance(source, np.random.Generator):
        root = np.random.SeedSequence(int(source.integers(0, 2**63)))
    else:
        root = np.random.SeedSequence(source)
    return list(root.spawn(n_tasks))


def rng_from_seed(
    seed: int | None | np.random.SeedSequence | np.random.Generator,
) -> np.random.Generator:
    """Materialize a task seed (or pass a generator through) as a Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
