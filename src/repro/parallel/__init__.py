"""Deterministic parallel execution for the library's hot loops.

The meta-dataset generation episodes (Algorithm 1), per-tree forest
fits, grid-search candidate×fold evaluations and the evaluation
harness's repeated rounds are all embarrassingly parallel. This package
fans them out over a serial / thread / process backend behind one
``pmap`` API while keeping results bit-identical regardless of backend
or worker count (see :mod:`repro.parallel.seeding` for the seed-spawning
scheme that makes this possible).
"""

from repro.exceptions import ParallelExecutionError
from repro.parallel.executor import (
    BACKENDS,
    Executor,
    QuarantinedTask,
    available_backends,
    effective_parallelism,
    pmap,
    resolve_n_jobs,
)
from repro.parallel.seeding import rng_from_seed, spawn_seeds

__all__ = [
    "BACKENDS",
    "Executor",
    "ParallelExecutionError",
    "QuarantinedTask",
    "available_backends",
    "effective_parallelism",
    "pmap",
    "resolve_n_jobs",
    "rng_from_seed",
    "spawn_seeds",
]
