"""Calibrated uncertainty for the performance predictor.

Three pieces, grounded in the papers named in ROADMAP item 4:

- :mod:`repro.uncertainty.conformal` — the finite-sample conformal
  quantile behind the fixed-width split-conformal intervals (and the
  fix for the ``np.quantile`` undercoverage bug).
- :mod:`repro.uncertainty.cqr` — learned interval heads (pinball-loss
  gradient boosting) conformalized with the CQR correction, so interval
  width adapts to the output statistics while keeping coverage.
- :mod:`repro.uncertainty.active` — Ji et al.-style active Bayesian
  assessment: spend a small label budget per batch and posterior-update
  the score estimate with a Beta posterior.
"""

from repro.uncertainty.active import (
    SELECTION_METHODS,
    ActiveAssessor,
    AssessmentResult,
    BetaPosterior,
    beta_quantile,
    regularized_incomplete_beta,
)
from repro.uncertainty.conformal import (
    INTERVAL_METHODS,
    conformal_quantile,
    conformal_rank,
    normal_quantile,
)
from repro.uncertainty.cqr import MIN_CALIBRATION_SAMPLES, CQRIntervalModel

__all__ = [
    "ActiveAssessor",
    "AssessmentResult",
    "BetaPosterior",
    "CQRIntervalModel",
    "INTERVAL_METHODS",
    "MIN_CALIBRATION_SAMPLES",
    "SELECTION_METHODS",
    "beta_quantile",
    "conformal_quantile",
    "conformal_rank",
    "normal_quantile",
    "regularized_incomplete_beta",
]
